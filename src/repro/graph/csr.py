"""Compressed-sparse-row storage for undirected weighted graphs.

The whole library operates on :class:`Graph`, an immutable CSR structure
holding, for each vertex ``p`` in ``0..n-1``, a sorted array of neighbor ids
and the matching edge weights.  Both directions of every undirected edge are
stored, so ``degree(p) == len(neighbors(p))`` and the arrays support the
sort-merge similarity join used by all SCAN variants (Definition 1 of the
paper is evaluated in ``O(|N_p| + |N_q|)``).

Vertices are dense integers; loaders that accept arbitrary labels
(:mod:`repro.graph.io`) relabel on the way in and keep the mapping.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.errors import GraphError

__all__ = ["Graph"]


class Graph:
    """An immutable undirected weighted graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; neighbors of vertex ``p`` live
        in ``indices[indptr[p]:indptr[p + 1]]``.
    indices:
        ``int64`` array of neighbor ids, sorted ascending within each vertex.
    weights:
        ``float64`` array parallel to ``indices``; ``weights[k]`` is the
        weight of the edge to ``indices[k]``.  For unweighted graphs all
        entries are ``1.0``.

    Use :class:`repro.graph.builder.GraphBuilder` or the generator /
    loader helpers instead of constructing the arrays by hand.
    """

    __slots__ = ("_indptr", "_indices", "_weights", "_num_edges")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        self._indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self._indices = np.ascontiguousarray(indices, dtype=np.int64)
        self._weights = np.ascontiguousarray(weights, dtype=np.float64)
        if validate:
            self._validate()
        self._num_edges = int(self._indices.shape[0]) // 2

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        indptr, indices, weights = self._indptr, self._indices, self._weights
        if indptr.ndim != 1 or indices.ndim != 1 or weights.ndim != 1:
            raise GraphError("CSR arrays must be one-dimensional")
        if indptr.shape[0] == 0:
            raise GraphError("indptr must have at least one entry")
        if indptr[0] != 0 or indptr[-1] != indices.shape[0]:
            raise GraphError(
                "indptr must start at 0 and end at len(indices) "
                f"(got {indptr[0]}..{indptr[-1]} for {indices.shape[0]} entries)"
            )
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if weights.shape[0] != indices.shape[0]:
            raise GraphError("weights must be parallel to indices")
        n = indptr.shape[0] - 1
        if indices.shape[0] and (indices.min() < 0 or indices.max() >= n):
            raise GraphError("neighbor id out of range")
        if indices.shape[0] % 2 != 0:
            raise GraphError(
                "undirected CSR must store both edge directions; "
                "odd number of directed entries found"
            )
        if indices.shape[0]:
            owners = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
            same_row = owners[1:] == owners[:-1]
            unsorted = same_row & (np.diff(indices) <= 0)
            self_loops = indices == owners
            # Report the lowest-numbered offending vertex, and prefer the
            # sortedness error when both occur on the same vertex (matching
            # the order of the historical per-row checks).
            bad_sort = int(owners[1:][unsorted].min()) if unsorted.any() else n
            bad_loop = int(owners[self_loops].min()) if self_loops.any() else n
            if bad_sort <= bad_loop and bad_sort < n:
                raise GraphError(
                    f"neighbors of vertex {bad_sort} must be strictly "
                    "increasing (sorted, no parallel edges)"
                )
            if bad_loop < n:
                raise GraphError(
                    f"self-loop on vertex {bad_loop} is not allowed"
                )
        if np.any(weights < 0):
            raise GraphError("edge weights must be non-negative")

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Sequence[Tuple[int, int]] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
    ) -> "Graph":
        """Build a graph from an iterable of undirected ``(u, v)`` pairs.

        Duplicate edges and self-loops raise :class:`GraphError`; use the
        :class:`~repro.graph.builder.GraphBuilder` for tolerant accumulation.
        """
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder(num_vertices)
        if weights is None:
            for u, v in edges:
                builder.add_edge(int(u), int(v))
        else:
            if len(weights) != len(edges):
                raise GraphError("weights must be parallel to edges")
            for (u, v), w in zip(edges, weights):
                builder.add_edge(int(u), int(v), float(w))
        return builder.build(dedup="error")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return int(self._indptr.shape[0] - 1)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._num_edges

    @property
    def indptr(self) -> np.ndarray:
        """Read-only CSR row-pointer array (length ``n + 1``)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Read-only CSR neighbor array (length ``2|E|``)."""
        return self._indices

    @property
    def weights(self) -> np.ndarray:
        """Read-only CSR weight array, parallel to :attr:`indices`."""
        return self._weights

    def degree(self, p: int) -> int:
        """Number of neighbors ``|N_p|`` of vertex ``p``."""
        self._check_vertex(p)
        return int(self._indptr[p + 1] - self._indptr[p])

    @property
    def degrees(self) -> np.ndarray:
        """Vector of all vertex degrees."""
        return np.diff(self._indptr)

    def neighbors(self, p: int) -> np.ndarray:
        """Sorted neighbor ids ``N_p`` of vertex ``p`` (read-only view)."""
        self._check_vertex(p)
        return self._indices[self._indptr[p] : self._indptr[p + 1]]

    def neighbor_weights(self, p: int) -> np.ndarray:
        """Edge weights parallel to :meth:`neighbors` (read-only view)."""
        self._check_vertex(p)
        return self._weights[self._indptr[p] : self._indptr[p + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return False
        row = self.neighbors(u)
        pos = int(np.searchsorted(row, v))
        return pos < row.shape[0] and int(row[pos]) == v

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``; raises :class:`GraphError` if absent."""
        row = self.neighbors(u)
        pos = int(np.searchsorted(row, v))
        if pos >= row.shape[0] or int(row[pos]) != v:
            raise GraphError(f"no edge ({u}, {v})")
        return float(self.neighbor_weights(u)[pos])

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate each undirected edge once as ``(u, v, w)`` with ``u < v``."""
        owners = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64),
            np.diff(self._indptr),
        )
        mask = owners < self._indices
        us = owners[mask].tolist()
        vs = self._indices[mask].tolist()
        ws = self._weights[mask].tolist()
        yield from zip(us, vs, ws)

    @property
    def is_weighted(self) -> bool:
        """``True`` when any edge weight differs from 1.0."""
        return bool(self._weights.shape[0]) and not np.all(self._weights == 1.0)

    @property
    def total_weight(self) -> float:
        """Sum of undirected edge weights."""
        return float(self._weights.sum()) / 2.0

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def with_unit_weights(self) -> "Graph":
        """Return the same topology with every weight set to 1.0."""
        return Graph(
            self._indptr.copy(),
            self._indices.copy(),
            np.ones_like(self._weights),
            validate=False,
        )

    def subgraph(self, vertices: Sequence[int]) -> "Graph":
        """Induced subgraph on ``vertices``, relabeled to ``0..k-1``.

        The relabeling follows the order of ``vertices``.
        """
        keep = np.asarray(sorted(set(int(v) for v in vertices)), dtype=np.int64)
        if keep.shape[0] and (keep[0] < 0 or keep[-1] >= self.num_vertices):
            raise GraphError("subgraph vertex out of range")
        remap = -np.ones(self.num_vertices, dtype=np.int64)
        remap[keep] = np.arange(keep.shape[0])
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder(keep.shape[0])
        for u in keep:
            row = self.neighbors(int(u))
            wts = self.neighbor_weights(int(u))
            for v, w in zip(row, wts):
                if u < v and remap[v] >= 0:
                    builder.add_edge(int(remap[u]), int(remap[v]), float(w))
        return builder.build(dedup="error")

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "weighted" if self.is_weighted else "unweighted"
        return (
            f"Graph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, {kind})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
            and np.array_equal(self._weights, other._weights)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.num_vertices,
                self.num_edges,
                self._indices.tobytes(),
                self._weights.tobytes(),
            )
        )

    def _check_vertex(self, p: int) -> None:
        if not 0 <= p < self.num_vertices:
            raise GraphError(
                f"vertex {p} out of range [0, {self.num_vertices})"
            )
