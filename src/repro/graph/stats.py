"""Graph statistics used in the paper's dataset tables.

Tables I and II characterize every dataset by the average vertex degree
``d̄`` and the average (local) clustering coefficient ``c``.  Both are
implemented here, along with degree-distribution summaries used by the
dataset registry to verify that synthetic analogs sit in the same regime as
the paper's graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import Graph

__all__ = [
    "average_degree",
    "local_clustering",
    "average_clustering",
    "triangle_count",
    "degree_histogram",
    "GraphSummary",
    "summarize",
]


def average_degree(graph: Graph) -> float:
    """Average vertex degree ``d̄ = 2|E| / |V|``."""
    if graph.num_vertices == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_vertices


def local_clustering(graph: Graph, p: int) -> float:
    """Local clustering coefficient of vertex ``p``.

    The fraction of pairs of neighbors of ``p`` that are themselves
    adjacent; 0 for degree < 2.  Edge weights are ignored (the paper's
    tables report topological coefficients).
    """
    neighbors = graph.neighbors(p)
    k = neighbors.shape[0]
    if k < 2:
        return 0.0
    links = 0
    neighbor_set = set(int(v) for v in neighbors)
    for v in neighbors:
        # Count each triangle edge once by only looking at w > v.
        row = graph.neighbors(int(v))
        start = int(np.searchsorted(row, int(v) + 1))
        for w in row[start:]:
            if int(w) in neighbor_set:
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(
    graph: Graph,
    *,
    sample: int | None = None,
    seed: int = 0,
) -> float:
    """Average local clustering coefficient ``c``.

    Parameters
    ----------
    sample:
        When given, estimate over a uniform sample of this many vertices
        (used for the larger benchmark analogs); otherwise exact.
    seed:
        RNG seed for the sampled estimate.
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0
    if sample is not None and sample < n:
        rng = np.random.default_rng(seed)
        vertices = rng.choice(n, size=sample, replace=False)
    else:
        vertices = np.arange(n)
    total = 0.0
    for p in vertices:
        total += local_clustering(graph, int(p))
    return total / len(vertices)


def triangle_count(graph: Graph) -> int:
    """Total number of triangles in the graph."""
    total = 0
    for u in range(graph.num_vertices):
        row_u = graph.neighbors(u)
        start_u = int(np.searchsorted(row_u, u + 1))
        higher = row_u[start_u:]
        higher_set = set(int(v) for v in higher)
        for v in higher:
            row_v = graph.neighbors(int(v))
            start_v = int(np.searchsorted(row_v, int(v) + 1))
            for w in row_v[start_v:]:
                if int(w) in higher_set:
                    total += 1
    return total


def degree_histogram(graph: Graph) -> np.ndarray:
    """Array ``h`` where ``h[k]`` is the number of vertices of degree ``k``."""
    degrees = graph.degrees
    if degrees.shape[0] == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees.astype(np.int64))


@dataclass(frozen=True)
class GraphSummary:
    """The Table I / Table II row for one graph."""

    num_vertices: int
    num_edges: int
    average_degree: float
    average_clustering: float
    max_degree: int
    weighted: bool

    def row(self, name: str) -> str:
        """Render as a fixed-width table row matching the paper's columns."""
        return (
            f"{name:<10s} {self.num_vertices:>10,d} {self.num_edges:>12,d} "
            f"{self.average_degree:>8.2f} {self.average_clustering:>8.4f}"
        )


def summarize(
    graph: Graph,
    *,
    clustering_sample: int | None = None,
    seed: int = 0,
) -> GraphSummary:
    """Compute the dataset-table row for ``graph``."""
    degrees = graph.degrees
    return GraphSummary(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_degree=average_degree(graph),
        average_clustering=average_clustering(
            graph, sample=clustering_sample, seed=seed
        ),
        max_degree=int(degrees.max()) if degrees.shape[0] else 0,
        weighted=graph.is_weighted,
    )
