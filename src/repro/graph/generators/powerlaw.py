"""Power-law degree sequences and the configuration model.

The LFR benchmark (Table II of the paper) draws vertex degrees from a
truncated power law and wires stubs with a configuration model; both pieces
live here so they can be tested independently and reused by other
generators.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeneratorError
from repro.graph.builder import GraphBuilder
from repro.graph.csr import Graph

__all__ = ["powerlaw_degree_sequence", "configuration_model_graph"]


def powerlaw_degree_sequence(
    n: int,
    exponent: float,
    min_degree: int,
    max_degree: int,
    *,
    average_degree: float | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Draw ``n`` degrees from a truncated power law ``P(k) ~ k^-exponent``.

    When ``average_degree`` is given, the minimum degree bound is adjusted
    (by mixing two adjacent integer minimums) so the expected mean matches;
    this mirrors how the LFR reference implementation hits its target
    average degree.  The returned sequence always has an even sum so it is
    realizable by a configuration model.
    """
    if n <= 0:
        raise GeneratorError("n must be positive")
    if exponent <= 1.0:
        raise GeneratorError("power-law exponent must be > 1")
    if not 1 <= min_degree <= max_degree:
        raise GeneratorError("need 1 <= min_degree <= max_degree")
    if max_degree >= n:
        raise GeneratorError("max_degree must be < n for a simple graph")
    rng = np.random.default_rng(seed)

    def mean_for(kmin: int) -> float:
        ks = np.arange(kmin, max_degree + 1, dtype=np.float64)
        probs = ks ** (-exponent)
        probs /= probs.sum()
        return float((ks * probs).sum())

    kmin = min_degree
    if average_degree is not None:
        if not mean_for(min_degree) <= average_degree <= mean_for(max_degree):
            # Clamp to the feasible range rather than fail: the bench
            # harness sweeps averages near the edges.
            average_degree = min(
                max(average_degree, mean_for(min_degree)), float(max_degree)
            )
        while kmin < max_degree and mean_for(kmin + 1) <= average_degree:
            kmin += 1

    ks = np.arange(kmin, max_degree + 1, dtype=np.float64)
    probs = ks ** (-exponent)
    probs /= probs.sum()
    degrees = rng.choice(
        np.arange(kmin, max_degree + 1), size=n, p=probs
    ).astype(np.int64)

    if average_degree is not None:
        # Nudge random entries up/down (within bounds) toward the target.
        target_total = int(round(average_degree * n))
        for _ in range(20 * n):
            diff = int(degrees.sum()) - target_total
            if abs(diff) <= 1:
                break
            i = int(rng.integers(0, n))
            if diff > 0 and degrees[i] > kmin:
                degrees[i] -= 1
            elif diff < 0 and degrees[i] < max_degree:
                degrees[i] += 1

    if int(degrees.sum()) % 2 == 1:
        # Make the stub count even by bumping one feasible vertex.
        for i in range(n):
            if degrees[i] < max_degree:
                degrees[i] += 1
                break
        else:
            degrees[0] -= 1
    return degrees


def configuration_model_graph(
    degrees: np.ndarray,
    *,
    seed: int = 0,
    max_rewire_rounds: int = 50,
) -> Graph:
    """Simple graph realizing (approximately) the given degree sequence.

    Stubs are matched uniformly at random; self-loops and parallel edges
    are then repaired by edge-swap rewiring.  Pairs that cannot be repaired
    within ``max_rewire_rounds`` sweeps are dropped, so very skewed
    sequences may lose a small fraction of their stubs (the LFR reference
    implementation behaves the same way).
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if np.any(degrees < 0):
        raise GeneratorError("degrees must be non-negative")
    if int(degrees.sum()) % 2 != 0:
        raise GeneratorError("degree sum must be even")
    n = degrees.shape[0]
    rng = np.random.default_rng(seed)
    stubs = np.repeat(np.arange(n), degrees)
    rng.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)

    edge_set: set = set()
    bad: list = []
    for u, v in pairs:
        u, v = int(u), int(v)
        if u == v:
            bad.append((u, v))
            continue
        key = (min(u, v), max(u, v))
        if key in edge_set:
            bad.append((u, v))
        else:
            edge_set.add(key)

    # Repair offending pairs by swapping endpoints with random good edges.
    edges = list(edge_set)
    for _ in range(max_rewire_rounds):
        if not bad or not edges:
            break
        still_bad: list = []
        for u, v in bad:
            repaired = False
            for _ in range(20):
                j = int(rng.integers(0, len(edges)))
                a, b = edges[j]
                # Swap (u,v),(a,b) -> (u,a),(v,b)
                cand1 = (min(u, a), max(u, a))
                cand2 = (min(v, b), max(v, b))
                if (
                    u != a
                    and v != b
                    and cand1 != cand2
                    and cand1 not in edge_set
                    and cand2 not in edge_set
                ):
                    edge_set.discard((min(a, b), max(a, b)))
                    edge_set.add(cand1)
                    edge_set.add(cand2)
                    edges[j] = cand1
                    edges.append(cand2)
                    repaired = True
                    break
            if not repaired:
                still_bad.append((u, v))
        bad = still_bad

    builder = GraphBuilder(n)
    for u, v in sorted(edge_set):
        builder.add_edge(u, v)
    return builder.build(dedup="error")
