"""R-MAT / stochastic Kronecker graph generator.

GR05 in the paper is ``kron_g500-logn21``, a Graph500 stochastic Kronecker
graph.  R-MAT with the Graph500 probabilities (a=0.57, b=0.19, c=0.19,
d=0.05) generates the same family: recursively descend a 2^scale × 2^scale
adjacency matrix, picking one of four quadrants per level according to the
(noise-perturbed) probabilities.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeneratorError
from repro.graph.builder import GraphBuilder
from repro.graph.csr import Graph

__all__ = ["rmat_graph"]


def rmat_graph(
    scale: int,
    edge_factor: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    noise: float = 0.1,
    compact: bool = True,
) -> Graph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the number of vertices.
    edge_factor:
        Number of edge samples per vertex (Graph500 uses 16); duplicates
        and self-loops are discarded, so the realized edge count is lower.
    a, b, c:
        Quadrant probabilities; ``d = 1 - a - b - c`` must be positive.
    noise:
        Multiplicative jitter applied to the probabilities at each level,
        which avoids the artificial staircase degree distribution.
    compact:
        Relabel vertices so that isolated ids are removed (Kronecker
        generators leave many degree-0 slots).
    """
    if scale <= 0 or scale > 24:
        raise GeneratorError("scale must be in [1, 24] for an in-memory graph")
    if edge_factor <= 0:
        raise GeneratorError("edge_factor must be positive")
    d = 1.0 - a - b - c
    if min(a, b, c, d) <= 0.0:
        raise GeneratorError("quadrant probabilities must be positive")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    num_samples = n * edge_factor

    us = np.zeros(num_samples, dtype=np.int64)
    vs = np.zeros(num_samples, dtype=np.int64)
    for level in range(scale):
        # Jitter the quadrant probabilities per level, per sample.
        if noise > 0.0:
            jitter = 1.0 + noise * (2.0 * rng.random(num_samples) - 1.0)
        else:
            jitter = np.ones(num_samples)
        ab = (a + b) * jitter
        ab = np.clip(ab, 0.0, 1.0)
        pick_right = rng.random(num_samples)
        pick_down = rng.random(num_samples)
        # Conditional probabilities of the right column within each row.
        top_right = b / (a + b)
        bottom_right = d / (c + d)
        go_down = pick_down >= ab
        go_right = np.where(
            go_down,
            pick_right < bottom_right,
            pick_right < top_right,
        )
        bit = 1 << (scale - 1 - level)
        us += bit * go_down.astype(np.int64)
        vs += bit * go_right.astype(np.int64)

    builder = GraphBuilder(n)
    seen: set = set()
    for u, v in zip(us, vs):
        u, v = int(u), int(v)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        builder.add_edge(*key)
    graph = builder.build(dedup="error")

    if compact:
        alive = np.flatnonzero(graph.degrees > 0)
        if alive.shape[0] < graph.num_vertices:
            graph = graph.subgraph(alive.tolist())
    return graph
