"""LFR benchmark graphs (Lancichinetti–Fortunato–Radicchi, 2008).

The paper's Table II sweeps LFR graphs by average degree and by average
clustering coefficient.  This module implements the generator from scratch:

1. vertex degrees from a truncated power law (exponent ``tau1``),
2. community sizes from a truncated power law (exponent ``tau2``),
3. vertex→community assignment honoring the internal-degree constraint
   ``(1 - mixing) * degree <= community size - 1``,
4. intra-community wiring per community and inter-community wiring via
   configuration models with swap-based repair,
5. an optional degree-preserving triangle-tuning pass
   (:func:`tune_clustering`) that moves the average clustering coefficient
   toward a target, which is how the c-sweep of Table II is realized.

Community ids are returned alongside the graph so NMI against ground truth
can be computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import GeneratorError
from repro.graph.builder import GraphBuilder
from repro.graph.csr import Graph
from repro.graph.generators.powerlaw import powerlaw_degree_sequence
from repro.graph.stats import average_clustering

__all__ = ["LFRParams", "lfr_graph", "tune_clustering"]


@dataclass(frozen=True)
class LFRParams:
    """Knobs of the LFR benchmark.

    Attributes
    ----------
    n: number of vertices.
    average_degree: target mean degree d̄.
    max_degree: degree-distribution cutoff.
    mixing: fraction of each vertex's edges that leave its community (μ_mix).
    tau1: degree power-law exponent (reference implementation default 2).
    tau2: community-size power-law exponent (default 1).
    min_community / max_community: community-size bounds; defaults derive
        from the degree bounds so every vertex fits somewhere.
    seed: RNG seed; generation is fully deterministic given the params.
    """

    n: int
    average_degree: float
    max_degree: int
    mixing: float = 0.3
    tau1: float = 2.0
    tau2: float = 1.0
    min_community: int = 0  # 0 -> derived
    max_community: int = 0  # 0 -> derived
    seed: int = 0
    min_degree: int = field(default=2)

    def validate(self) -> None:
        if self.n <= 0:
            raise GeneratorError("n must be positive")
        if not 0.0 <= self.mixing < 1.0:
            raise GeneratorError("mixing must be in [0, 1)")
        if self.max_degree >= self.n:
            raise GeneratorError("max_degree must be < n")
        if self.average_degree < 1:
            raise GeneratorError("average_degree must be >= 1")

    def resolved_community_bounds(self) -> Tuple[int, int]:
        """Community-size bounds, deriving defaults from the degrees."""
        # A vertex of internal degree k needs a community of size >= k + 1.
        # The lower bound tracks the *average* internal degree: smaller
        # communities could not be filled because most vertices would not
        # fit them (Hall's condition on the assignment).
        avg_internal = int(
            np.ceil((1.0 - self.mixing) * self.average_degree)
        )
        max_internal = int(np.ceil((1.0 - self.mixing) * self.max_degree)) + 1
        lo = self.min_community or max(avg_internal + 1, 8)
        # Twice the largest internal degree: enough headroom that the
        # high-degree tail does not all compete for one maximal community.
        hi = self.max_community or max(2 * max_internal, lo + 1, self.n // 10)
        hi = min(hi, self.n)
        if lo > hi:
            raise GeneratorError(
                f"infeasible community bounds [{lo}, {hi}] for the degree range"
            )
        return lo, hi


def _community_sizes(params: LFRParams, rng: np.random.Generator) -> List[int]:
    """Draw power-law community sizes covering exactly ``n`` vertices."""
    lo, hi = params.resolved_community_bounds()
    ks = np.arange(lo, hi + 1, dtype=np.float64)
    probs = ks ** (-params.tau2)
    probs /= probs.sum()
    sizes: List[int] = []
    total = 0
    while total < params.n:
        size = int(rng.choice(np.arange(lo, hi + 1), p=probs))
        sizes.append(size)
        total += size
    # Trim the overshoot off the largest communities so every vertex is used.
    overshoot = total - params.n
    sizes.sort(reverse=True)
    i = 0
    while overshoot > 0:
        if sizes[i] > lo:
            take = min(overshoot, sizes[i] - lo)
            sizes[i] -= take
            overshoot -= take
        i = (i + 1) % len(sizes)
        if i == 0 and overshoot > 0 and all(s <= lo for s in sizes):
            # Everything is at the minimum; drop a community and retry trim.
            drop = sizes.pop()
            overshoot -= drop
            if overshoot < 0:
                sizes.append(-overshoot)
                overshoot = 0
    return [s for s in sizes if s > 0]


def _ensure_feasible_sizes(sizes: List[int], max_internal: int) -> None:
    """Guarantee the largest community can host the largest internal degree.

    The overshoot trim in :func:`_community_sizes` can shave every
    community below ``max_internal + 1``; move capacity from the smallest
    communities into the largest until the constraint holds (total vertex
    count is preserved).
    """
    if not sizes:
        return
    sizes.sort(reverse=True)
    need = max_internal + 1 - sizes[0]
    i = len(sizes) - 1
    while need > 0 and i > 0:
        take = min(need, sizes[i] - 1)
        if take > 0:
            sizes[i] -= take
            sizes[0] += take
            need -= take
        i -= 1
    # Drop communities emptied to a single vertex only if another can
    # absorb them (keep the total constant).
    while len(sizes) > 1 and sizes[-1] <= 0:
        sizes.pop()


def _assign_communities(
    degrees: np.ndarray,
    internal_degrees: np.ndarray,
    sizes: List[int],
    rng: np.random.Generator,
) -> np.ndarray:
    """LFR assignment: random placement with the size constraint.

    Repeatedly place each vertex into a random community with free room
    whose size can host its internal degree; kick out a random member when
    a suitable community is full (the reference implementation's strategy).
    """
    n = degrees.shape[0]
    num_comms = len(sizes)
    capacity = np.asarray(sizes, dtype=np.int64)
    members: List[List[int]] = [[] for _ in range(num_comms)]
    assignment = -np.ones(n, dtype=np.int64)
    # Process high-internal-degree vertices first (hardest to place):
    # list.pop() takes from the end, so store ascending.
    order = np.argsort(internal_degrees, kind="stable")
    homeless = list(order)
    max_rounds = 100 * n
    rounds = 0
    while homeless and rounds < max_rounds:
        rounds += 1
        v = homeless.pop()
        feasible = np.flatnonzero(capacity > internal_degrees[v])
        if feasible.shape[0] == 0:
            raise GeneratorError(
                f"vertex with internal degree {int(internal_degrees[v])} "
                "fits no community; raise max_community or mixing"
            )
        # Prefer feasible communities with free room; evict only when all
        # feasible communities are full (keeps the loop converging).
        with_room = [
            int(c) for c in feasible if len(members[int(c)]) < capacity[int(c)]
        ]
        if with_room:
            c = int(rng.choice(np.asarray(with_room)))
        else:
            c = int(rng.choice(feasible))
        if len(members[c]) < capacity[c]:
            members[c].append(int(v))
            assignment[v] = c
        else:
            # Community full: evict a random member, take its slot.
            j = int(rng.integers(0, len(members[c])))
            evicted = members[c][j]
            members[c][j] = int(v)
            assignment[v] = c
            assignment[evicted] = -1
            homeless.append(evicted)
    if homeless:
        raise GeneratorError("community assignment did not converge")
    return assignment


def _wire_within(
    vertices: List[int],
    stub_counts: np.ndarray,
    rng: np.random.Generator,
) -> List[Tuple[int, int]]:
    """Configuration-model wiring among ``vertices`` with given stubs."""
    stubs: List[int] = []
    for v in vertices:
        stubs.extend([v] * int(stub_counts[v]))
    if len(stubs) % 2 == 1:
        stubs.pop(int(rng.integers(0, len(stubs))))
    arr = np.asarray(stubs, dtype=np.int64)
    rng.shuffle(arr)
    edges: set = set()
    leftovers: List[int] = []
    for i in range(0, arr.shape[0] - 1, 2):
        u, v = int(arr[i]), int(arr[i + 1])
        if u == v:
            leftovers.extend([u, v])
            continue
        key = (min(u, v), max(u, v))
        if key in edges:
            leftovers.extend([u, v])
        else:
            edges.add(key)
    # One cheap repair pass over leftover stubs.
    rng.shuffle(np.asarray(leftovers))
    for i in range(0, len(leftovers) - 1, 2):
        u, v = leftovers[i], leftovers[i + 1]
        key = (min(u, v), max(u, v))
        if u != v and key not in edges:
            edges.add(key)
    return sorted(edges)


def lfr_graph(params: LFRParams) -> Tuple[Graph, np.ndarray]:
    """Generate an LFR benchmark graph.

    Returns
    -------
    (graph, membership):
        The graph and the planted community id of every vertex.
    """
    params.validate()
    rng = np.random.default_rng(params.seed)
    degrees = powerlaw_degree_sequence(
        params.n,
        params.tau1,
        params.min_degree,
        params.max_degree,
        average_degree=params.average_degree,
        seed=params.seed + 1,
    )
    internal = np.round((1.0 - params.mixing) * degrees).astype(np.int64)
    internal = np.minimum(internal, degrees)
    sizes = _community_sizes(params, rng)
    _ensure_feasible_sizes(sizes, int(internal.max(initial=0)))
    membership = _assign_communities(degrees, internal, sizes, rng)

    edge_set: set = set()
    # Intra-community edges.
    for c in range(len(sizes)):
        vertices = [int(v) for v in np.flatnonzero(membership == c)]
        if len(vertices) < 2:
            continue
        for u, v in _wire_within(vertices, internal, rng):
            edge_set.add((u, v))
    # Inter-community edges from the external stubs.
    external = degrees - internal
    stubs: List[int] = []
    for v in range(params.n):
        stubs.extend([v] * int(external[v]))
    arr = np.asarray(stubs, dtype=np.int64)
    rng.shuffle(arr)
    if arr.shape[0] % 2 == 1:
        arr = arr[:-1]
    for i in range(0, arr.shape[0] - 1, 2):
        u, v = int(arr[i]), int(arr[i + 1])
        if u == v or membership[u] == membership[v]:
            continue  # keep mixing approximately honest; drop bad pairs
        key = (min(u, v), max(u, v))
        edge_set.add(key)

    builder = GraphBuilder(params.n)
    for u, v in sorted(edge_set):
        builder.add_edge(u, v)
    return builder.build(dedup="error"), membership


def tune_clustering(
    graph: Graph,
    target: float,
    *,
    seed: int = 0,
    max_swaps: int | None = None,
    sample: int | None = 400,
) -> Graph:
    """Degree-preserving rewiring toward a target clustering coefficient.

    Random double-edge swaps ``(a,b),(c,d) -> (a,c),(b,d)`` are proposed;
    a swap is kept when it moves the triangle count in the desired
    direction.  Degrees are exactly preserved, so the degree-driven cost
    profile of the clustering algorithms is unchanged — only the triadic
    structure (and hence σ values) moves.
    """
    if not 0.0 <= target <= 1.0:
        raise GeneratorError("target clustering must be in [0, 1]")
    rng = np.random.default_rng(seed)
    edges = [(u, v) for u, v, _ in graph.edges()]
    edge_set = set(edges)
    adjacency: List[set] = [set() for _ in range(graph.num_vertices)]
    for u, v in edges:
        adjacency[u].add(v)
        adjacency[v].add(u)

    def triangles_through(u: int, v: int) -> int:
        a, b = adjacency[u], adjacency[v]
        if len(a) > len(b):
            a, b = b, a
        return sum(1 for w in a if w in b)

    current = average_clustering(graph, sample=sample, seed=seed)
    want_up = current < target
    budget = max_swaps if max_swaps is not None else 20 * len(edges)
    swaps_done = 0
    # Check convergence often enough that the greedy walk cannot
    # dramatically overshoot the target between checks.
    check_every = max(min(len(edges) // 20, 400), 20)
    edge_index = {edge: k for k, edge in enumerate(edges)}
    for step in range(budget):
        if len(edges) < 2:
            break
        i = int(rng.integers(0, len(edges)))
        a, b = edges[i]
        if want_up:
            # Biased proposal: pull the second edge from a's two-hop
            # neighborhood so the rewired pair (a, c) closes triangles;
            # uniform proposals almost never do on sparse graphs.
            candidates = list(adjacency[a])
            if not candidates:
                continue
            mid = candidates[int(rng.integers(0, len(candidates)))]
            seconds = list(adjacency[mid])
            c = seconds[int(rng.integers(0, len(seconds)))]
            if c == a or c in adjacency[a]:
                continue
            thirds = list(adjacency[c])
            d = thirds[int(rng.integers(0, len(thirds)))]
            key = (c, d) if c < d else (d, c)
            j = edge_index.get(key)
            if j is None or j == i:
                continue
            # Keep the two-hop vertex in the position paired with a.
            if edges[j][0] != c:
                c, d = edges[j][1], edges[j][0]
            else:
                c, d = edges[j]
        else:
            j = int(rng.integers(0, len(edges)))
            if i == j:
                continue
            c, d = edges[j]
        if len({a, b, c, d}) < 4:
            continue
        new1 = (min(a, c), max(a, c))
        new2 = (min(b, d), max(b, d))
        if new1 in edge_set or new2 in edge_set:
            continue
        delta = (
            triangles_through(*new1)
            + triangles_through(*new2)
            - triangles_through(a, b)
            - triangles_through(c, d)
        )
        accept = delta > 0 if want_up else delta < 0
        if not accept:
            continue
        old1 = (min(a, b), max(a, b))
        old2 = (min(c, d), max(c, d))
        for old in (old1, old2):
            edge_set.discard(old)
            edge_index.pop(old, None)
            adjacency[old[0]].discard(old[1])
            adjacency[old[1]].discard(old[0])
        for new in (new1, new2):
            edge_set.add(new)
            adjacency[new[0]].add(new[1])
            adjacency[new[1]].add(new[0])
        edges[int(i)] = new1
        edges[int(j)] = new2
        edge_index[new1] = int(i)
        edge_index[new2] = int(j)
        swaps_done += 1
        if swaps_done % check_every == 0:
            builder = GraphBuilder(graph.num_vertices)
            for u, v in sorted(edge_set):
                builder.add_edge(u, v)
            snapshot = builder.build(dedup="error")
            current = average_clustering(snapshot, sample=sample, seed=seed)
            if (want_up and current >= target) or (
                not want_up and current <= target
            ):
                return snapshot
    builder = GraphBuilder(graph.num_vertices)
    for u, v in sorted(edge_set):
        builder.add_edge(u, v)
    return builder.build(dedup="error")
