"""Random-graph generators used as dataset substitutes.

The paper evaluates on SNAP/UF/LAW graphs and LFR benchmarks; neither is
available offline, so :mod:`repro.bench.datasets` generates analogs with
these generators, matched on average degree and clustering coefficient
(see DESIGN.md §3).
"""

from repro.graph.generators.random_graphs import (
    gnm_random_graph,
    planted_membership,
    planted_partition_graph,
    relaxed_caveman_graph,
    watts_strogatz_graph,
)
from repro.graph.generators.powerlaw import (
    configuration_model_graph,
    powerlaw_degree_sequence,
)
from repro.graph.generators.rmat import rmat_graph
from repro.graph.generators.lfr import LFRParams, lfr_graph, tune_clustering
from repro.graph.generators.weights import (
    assign_community_weights,
    assign_random_weights,
    assign_triadic_weights,
)

__all__ = [
    "gnm_random_graph",
    "watts_strogatz_graph",
    "relaxed_caveman_graph",
    "planted_partition_graph",
    "planted_membership",
    "powerlaw_degree_sequence",
    "configuration_model_graph",
    "rmat_graph",
    "LFRParams",
    "lfr_graph",
    "tune_clustering",
    "assign_random_weights",
    "assign_community_weights",
    "assign_triadic_weights",
]
