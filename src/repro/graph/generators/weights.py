"""Edge-weighting schemes for the weighted-graph extension.

The paper extends SCAN to weighted graphs (Definition 1) but evaluates on
graphs whose native weights are not distributed; these schemes produce
plausible weight structure for the analogs:

* :func:`assign_random_weights` — i.i.d. uniform weights, the null model.
* :func:`assign_community_weights` — heavier weights inside communities
  (the regime where weighted σ actually changes the clustering).
* :func:`assign_triadic_weights` — weight grows with the number of
  triangles the edge participates in (Jaccard-flavored strength, the usual
  proxy for tie strength in social networks).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GeneratorError
from repro.graph.csr import Graph

__all__ = [
    "assign_random_weights",
    "assign_community_weights",
    "assign_triadic_weights",
]


def _rebuild_with(graph: Graph, weight_of) -> Graph:
    """Return a copy of ``graph`` with weights from ``weight_of(u, v)``."""
    weights = graph.weights.copy()
    indptr, indices = graph.indptr, graph.indices
    for u in range(graph.num_vertices):
        for k in range(int(indptr[u]), int(indptr[u + 1])):
            v = int(indices[k])
            if u < v:
                w = float(weight_of(u, v))
                if w < 0:
                    raise GeneratorError("weight scheme produced negative weight")
                weights[k] = w
                # Mirror into v's row.
                row = indices[indptr[v] : indptr[v + 1]]
                pos = int(np.searchsorted(row, u))
                weights[int(indptr[v]) + pos] = w
    return Graph(graph.indptr.copy(), graph.indices.copy(), weights, validate=False)


def assign_random_weights(
    graph: Graph,
    *,
    low: float = 0.5,
    high: float = 1.5,
    seed: int = 0,
) -> Graph:
    """Uniform random weights in ``[low, high]`` per undirected edge."""
    if not 0 <= low <= high:
        raise GeneratorError("need 0 <= low <= high")
    rng = np.random.default_rng(seed)
    draws = {}

    def weight_of(u: int, v: int) -> float:
        key = (u, v)
        if key not in draws:
            draws[key] = float(rng.uniform(low, high))
        return draws[key]

    return _rebuild_with(graph, weight_of)


def assign_community_weights(
    graph: Graph,
    membership: Sequence[int],
    *,
    intra: float = 1.0,
    inter: float = 0.3,
    jitter: float = 0.1,
    seed: int = 0,
) -> Graph:
    """Weights keyed on whether an edge stays inside its community."""
    if len(membership) != graph.num_vertices:
        raise GeneratorError("membership must cover every vertex")
    if intra <= 0 or inter <= 0:
        raise GeneratorError("base weights must be positive")
    rng = np.random.default_rng(seed)
    member = np.asarray(membership)

    def weight_of(u: int, v: int) -> float:
        base = intra if member[u] == member[v] else inter
        if jitter > 0:
            base *= 1.0 + jitter * (2.0 * rng.random() - 1.0)
        return max(base, 1e-9)

    return _rebuild_with(graph, weight_of)


def assign_triadic_weights(
    graph: Graph,
    *,
    base: float = 0.5,
    per_triangle: float = 0.25,
    cap: float = 4.0,
) -> Graph:
    """Weight each edge by the triangles it closes: ``base + t * per_triangle``.

    Deterministic, so repeated calls agree; capped at ``cap`` to keep the
    Lemma 5 bound ``max(w_p, w_q)`` meaningful.
    """
    if base <= 0 or per_triangle < 0:
        raise GeneratorError("base must be positive, per_triangle non-negative")

    neighbor_sets = [
        set(int(v) for v in graph.neighbors(u)) for u in range(graph.num_vertices)
    ]

    def weight_of(u: int, v: int) -> float:
        a, b = neighbor_sets[u], neighbor_sets[v]
        if len(a) > len(b):
            a, b = b, a
        triangles = sum(1 for w in a if w in b)
        return min(base + per_triangle * triangles, cap)

    return _rebuild_with(graph, weight_of)
