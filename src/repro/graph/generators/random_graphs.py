"""Classic random-graph models.

These provide the building blocks for the dataset analogs: Erdős–Rényi
``G(n, m)`` for unstructured background edges, Watts–Strogatz for tunable
clustering coefficient, relaxed caveman and planted partition for graphs
with ground-truth community structure of controllable strength.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import GeneratorError
from repro.graph.builder import GraphBuilder
from repro.graph.csr import Graph

__all__ = [
    "gnm_random_graph",
    "watts_strogatz_graph",
    "relaxed_caveman_graph",
    "planted_partition_graph",
]


def _max_edges(n: int) -> int:
    return n * (n - 1) // 2


def gnm_random_graph(n: int, m: int, *, seed: int = 0) -> Graph:
    """Uniform random graph with exactly ``n`` vertices and ``m`` edges."""
    if n < 0:
        raise GeneratorError("n must be non-negative")
    if m < 0 or m > _max_edges(n):
        raise GeneratorError(f"m={m} is not feasible for n={n}")
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(n)
    chosen: set = set()
    while len(chosen) < m:
        # Draw in batches; rejection is cheap while the graph is sparse.
        batch = max(m - len(chosen), 1)
        us = rng.integers(0, n, size=batch)
        vs = rng.integers(0, n, size=batch)
        for u, v in zip(us, vs):
            if u == v or len(chosen) >= m:
                continue
            key = (min(int(u), int(v)), max(int(u), int(v)))
            if key in chosen:
                continue
            chosen.add(key)
    for u, v in sorted(chosen):
        builder.add_edge(u, v)
    return builder.build(dedup="error")


def watts_strogatz_graph(n: int, k: int, p: float, *, seed: int = 0) -> Graph:
    """Watts–Strogatz small-world graph.

    Each vertex starts connected to its ``k`` nearest ring neighbors
    (``k`` must be even) and each edge is rewired with probability ``p``.
    Low ``p`` keeps the lattice's high clustering coefficient; high ``p``
    approaches ``G(n, m)``.
    """
    if k % 2 != 0:
        raise GeneratorError("k must be even")
    if not 0.0 <= p <= 1.0:
        raise GeneratorError("p must be in [0, 1]")
    if k >= n:
        raise GeneratorError("k must be smaller than n")
    rng = np.random.default_rng(seed)
    edges: set = set()
    for u in range(n):
        for j in range(1, k // 2 + 1):
            v = (u + j) % n
            edges.add((min(u, v), max(u, v)))
    edge_list = sorted(edges)
    result: set = set(edge_list)
    for u, v in edge_list:
        if rng.random() < p:
            result.discard((u, v))
            # Rewire u's end to a uniform random non-neighbor.
            for _ in range(8 * n):
                w = int(rng.integers(0, n))
                key = (min(u, w), max(u, w))
                if w != u and key not in result:
                    result.add(key)
                    break
            else:
                result.add((u, v))  # give up, keep the lattice edge
    builder = GraphBuilder(n)
    for u, v in sorted(result):
        builder.add_edge(u, v)
    return builder.build(dedup="error")


def relaxed_caveman_graph(
    num_cliques: int,
    clique_size: int,
    rewire_p: float,
    *,
    seed: int = 0,
) -> Graph:
    """Connected cliques with a fraction of edges rewired across cliques.

    This is the go-to model for very high clustering coefficients (the
    GR01 / ego-Gplus regime with c ≈ 0.49).
    """
    if num_cliques <= 0 or clique_size <= 1:
        raise GeneratorError("need at least one clique of size >= 2")
    if not 0.0 <= rewire_p <= 1.0:
        raise GeneratorError("rewire_p must be in [0, 1]")
    n = num_cliques * clique_size
    rng = np.random.default_rng(seed)
    edges: set = set()
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.add((base + i, base + j))
    rewired: set = set()
    for u, v in sorted(edges):
        if rng.random() < rewire_p:
            for _ in range(8 * n):
                w = int(rng.integers(0, n))
                key = (min(u, w), max(u, w))
                if w != u and key not in edges and key not in rewired:
                    rewired.add(key)
                    break
            else:
                rewired.add((u, v))
        else:
            rewired.add((u, v))
    builder = GraphBuilder(n)
    for u, v in sorted(rewired):
        builder.add_edge(u, v)
    return builder.build(dedup="error")


def planted_partition_graph(
    community_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    *,
    seed: int = 0,
) -> Graph:
    """Stochastic block model with given community sizes.

    Vertices in the same community connect with probability ``p_in``,
    across communities with ``p_out``.  Returns the graph; the planted
    assignment is recoverable as contiguous blocks of ``community_sizes``.
    """
    if any(s <= 0 for s in community_sizes):
        raise GeneratorError("community sizes must be positive")
    for name, p in (("p_in", p_in), ("p_out", p_out)):
        if not 0.0 <= p <= 1.0:
            raise GeneratorError(f"{name} must be in [0, 1]")
    sizes = [int(s) for s in community_sizes]
    n = sum(sizes)
    rng = np.random.default_rng(seed)
    membership = np.repeat(np.arange(len(sizes)), sizes)
    builder = GraphBuilder(n)
    # Intra-community edges: dense sampling per block.
    offset = 0
    for size in sizes:
        if p_in > 0 and size > 1:
            block = rng.random((size, size)) < p_in
            us, vs = np.nonzero(np.triu(block, k=1))
            for u, v in zip(us, vs):
                builder.add_edge(offset + int(u), offset + int(v))
        offset += size
    # Inter-community edges: sample the expected count then place them.
    if p_out > 0:
        starts = np.cumsum([0] + sizes)
        for a in range(len(sizes)):
            for b in range(a + 1, len(sizes)):
                pairs = sizes[a] * sizes[b]
                count = rng.binomial(pairs, p_out)
                if count == 0:
                    continue
                chosen: set = set()
                while len(chosen) < count:
                    u = int(rng.integers(starts[a], starts[a + 1]))
                    v = int(rng.integers(starts[b], starts[b + 1]))
                    chosen.add((u, v))
                for u, v in sorted(chosen):
                    builder.add_edge(u, v)
    graph = builder.build(dedup="ignore")
    del membership  # assignment is implicit in block layout
    return graph


def planted_membership(community_sizes: Sequence[int]) -> List[int]:
    """Ground-truth community id per vertex for a planted-partition graph."""
    out: List[int] = []
    for cid, size in enumerate(community_sizes):
        out.extend([cid] * int(size))
    return out
