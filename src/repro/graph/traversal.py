"""Graph traversal utilities: BFS, connected components, distances.

Substrate helpers the generators, tests, and examples share: LFR
validation checks community connectivity, the dataset registry verifies
analogs are (mostly) connected, and the SCAN++ DTAR expansion concept is
exactly "two-hop neighbors" (:func:`k_hop_neighbors`).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, List

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import Graph

__all__ = [
    "bfs_order",
    "bfs_distances",
    "connected_components",
    "largest_component",
    "k_hop_neighbors",
    "frontier_expand",
]


def bfs_order(graph: Graph, source: int) -> np.ndarray:
    """Vertices reachable from ``source`` in BFS visit order."""
    if not 0 <= source < graph.num_vertices:
        raise GraphError(f"source {source} out of range")
    seen = np.zeros(graph.num_vertices, dtype=bool)
    order: List[int] = []
    queue = deque([source])
    seen[source] = True
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in graph.neighbors(u):
            v = int(v)
            if not seen[v]:
                seen[v] = True
                queue.append(v)
    return np.asarray(order, dtype=np.int64)


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Hop distance from ``source`` to every vertex (-1 if unreachable)."""
    if not 0 <= source < graph.num_vertices:
        raise GraphError(f"source {source} out of range")
    dist = -np.ones(graph.num_vertices, dtype=np.int64)
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            v = int(v)
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def connected_components(graph: Graph) -> np.ndarray:
    """Component id (0-based, by discovery order) per vertex."""
    comp = -np.ones(graph.num_vertices, dtype=np.int64)
    next_id = 0
    for start in range(graph.num_vertices):
        if comp[start] >= 0:
            continue
        comp[start] = next_id
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                v = int(v)
                if comp[v] < 0:
                    comp[v] = next_id
                    queue.append(v)
        next_id += 1
    return comp


def largest_component(graph: Graph) -> np.ndarray:
    """Vertex ids of the largest connected component."""
    comp = connected_components(graph)
    if comp.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    counts = np.bincount(comp)
    return np.flatnonzero(comp == int(np.argmax(counts)))


def frontier_expand(
    sources: Iterable[int],
    successors: Callable[[int], Iterable[int]],
) -> List[int]:
    """BFS visit order over an *implicit* adjacency.

    The generic form of :func:`bfs_order`: expand a frontier from
    ``sources``, calling ``successors(u)`` for the vertices reachable in
    one step from ``u``.  Seeded local clustering (:mod:`repro.local`)
    drives this with a σ-filtered successor function so the traversal
    touches only qualifying edges; ``successors`` may carry side effects
    (e.g. recording rejected neighbors as border candidates).
    """
    seen = set()
    order: List[int] = []
    queue: deque = deque()
    for s in sources:
        s = int(s)
        if s not in seen:
            seen.add(s)
            queue.append(s)
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in successors(u):
            v = int(v)
            if v not in seen:
                seen.add(v)
                queue.append(v)
    return order


def k_hop_neighbors(graph: Graph, source: int, k: int) -> np.ndarray:
    """Vertices at hop distance exactly ``k`` from ``source``.

    ``k_hop_neighbors(g, p, 2)`` is SCAN++'s DTAR frontier for pivot p.
    """
    if k < 0:
        raise GraphError("k must be non-negative")
    dist = bfs_distances(graph, source)
    return np.flatnonzero(dist == k)
