"""Command-line interface: cluster an edge-list file with anySCAN.

Examples::

    anyscan graph.txt --mu 5 --epsilon 0.5
    anyscan graph.txt --weighted --algorithm pscan --output labels.txt
    anyscan graph.txt --budget-work 1e6        # anytime: stop early
    repro serve --port 8421 --graph web=graph.txt   # clustering server
    repro serve --processes 4 --graph web=graph.txt # sharded fleet (§11)
    python -m repro ...                        # same entry point
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.anytime import AnytimeRunner
from repro.baselines import pscan, scan, scan_b, scanpp
from repro.core import AnySCAN, AnyScanConfig, parallel_scan
from repro.errors import ConfigError
from repro.graph.io import load_edge_list
from repro.parallel.backends import (
    BACKEND_NAMES,
    backend_kind,
    close_backend,
    create_backend,
)
from repro.result import HUB, Clustering
from repro.similarity.gsindex import DEFAULT_MU_CAP, ClusteringIndex
from repro.similarity.index import EdgeSimilarityIndex, IndexedOracle

__all__ = ["main"]

_BATCH = {"scan": scan, "scan-b": scan_b, "pscan": pscan, "scanpp": scanpp}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="anyscan",
        description="Structural graph clustering (SCAN family, anySCAN).",
    )
    parser.add_argument("graph", help="edge-list file (u v [w] per line)")
    parser.add_argument("--mu", type=int, default=5, help="core threshold μ")
    parser.add_argument(
        "--epsilon", type=float, default=0.5, help="similarity threshold ε"
    )
    parser.add_argument(
        "--algorithm",
        choices=["anyscan"] + sorted(_BATCH),
        default="anyscan",
    )
    parser.add_argument(
        "--weighted",
        action="store_true",
        help="read the third column as edge weight",
    )
    parser.add_argument("--alpha", type=int, default=8192, help="block size α")
    parser.add_argument("--beta", type=int, default=8192, help="block size β")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--budget-work",
        type=float,
        default=None,
        help="anytime: stop after this many work units (approximate result)",
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="anytime: stop after this many compute seconds",
    )
    parser.add_argument(
        "--backend",
        choices=["sequential"] + list(BACKEND_NAMES),
        default="sequential",
        help="execution backend; thread/process/auto run the σ phase on a "
        "real pool (exact SCAN only, requires --algorithm scan)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool width for --backend thread/process/auto",
    )
    parser.add_argument(
        "--similarity-index",
        choices=["off", "build", "use"],
        default="off",
        help="edge-similarity index: 'build' computes σ for every edge "
        "(on --backend when parallel) and saves it next to the graph; "
        "'use' loads a previously built index so re-clustering at a new "
        "(ε, μ) performs no σ evaluations",
    )
    parser.add_argument(
        "--index-path",
        default=None,
        help="where the similarity index lives (default: GRAPH.sigma.npz)",
    )
    parser.add_argument(
        "--cluster-index",
        choices=["off", "build", "use"],
        default="off",
        help="GS*-style clustering index: σ-sorted neighbor lists plus a "
        "core order, so any (ε, μ) query is answered by binary search + "
        "union-find with zero σ evaluations; 'build' saves it next to "
        "the graph, 'use' loads a previously built one (requires "
        "--algorithm scan)",
    )
    parser.add_argument(
        "--cluster-index-path",
        default=None,
        help="where the clustering index lives (default: GRAPH.gsindex.npz)",
    )
    parser.add_argument(
        "--mu-cap",
        type=int,
        default=DEFAULT_MU_CAP,
        help="largest μ the clustering index answers by binary search "
        "(larger μ still works via an O(n) gather, still zero σ)",
    )
    parser.add_argument(
        "--output", default=None, help="write 'vertex label' lines here"
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a line per anytime iteration",
    )
    return parser


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["serve"]:
        # Subcommand: the interactive clustering server (DESIGN.md §8;
        # --processes N runs the sharded fleet of §11).
        # Imported lazily so plain clustering runs don't pay for it.
        from repro.service.server import serve_main

        return serve_main(argv[1:])
    if argv[:1] == ["local-cluster"]:
        # Subcommand: seeded local clustering — the seed vertex's exact
        # cluster at output-proportional cost (DESIGN.md §12).
        return _local_cluster_main(argv[1:])
    args = _build_parser().parse_args(argv)
    started = time.perf_counter()
    graph, labels_map = load_edge_list(args.graph, weighted=args.weighted)
    print(
        f"loaded {graph.num_vertices:,d} vertices, "
        f"{graph.num_edges:,d} edges in "
        f"{time.perf_counter() - started:.2f}s",
        file=sys.stderr,
    )

    try:
        index = _prepare_index(graph, args)
        cluster_index = _prepare_cluster_index(graph, args)
    except ConfigError as exc:
        print(f"similarity index error: {exc}", file=sys.stderr)
        return 2

    if cluster_index is not None:
        if args.algorithm != "scan":
            print(
                "--cluster-index answers exact SCAN queries; pass "
                f"--algorithm scan (got {args.algorithm!r})",
                file=sys.stderr,
            )
            return 2
        if args.budget_work or args.budget_seconds:
            print(
                "budgets need the sequential anytime engine; drop "
                "--cluster-index or the --budget-* flags",
                file=sys.stderr,
            )
            return 2
        started = time.perf_counter()
        clustering = parallel_scan(
            graph,
            args.mu,
            args.epsilon,
            index=cluster_index,
            seed=args.seed,
        )
        print(
            f"query answered from the clustering index in "
            f"{time.perf_counter() - started:.3f}s "
            f"(σ evaluations: "
            f"{cluster_index.last_query['sigma_evaluations']})",
            file=sys.stderr,
        )
    elif args.backend != "sequential":
        if args.budget_work or args.budget_seconds:
            print(
                "budgets need the sequential anytime engine; drop "
                "--backend or the --budget-* flags",
                file=sys.stderr,
            )
            return 2
        if args.algorithm != "scan":
            print(
                "--backend parallelizes exact SCAN; pass --algorithm scan "
                f"(got {args.algorithm!r})",
                file=sys.stderr,
            )
            return 2
        clustering = _run_parallel(graph, args, index=index)
    elif args.algorithm == "anyscan":
        clustering = _run_anyscan(graph, args, index=index)
    else:
        if args.budget_work or args.budget_seconds:
            print(
                "budgets require --algorithm anyscan (batch algorithms "
                "cannot be interrupted)",
                file=sys.stderr,
            )
            return 2
        oracle = IndexedOracle(index) if index is not None else None
        clustering = _BATCH[args.algorithm](
            graph, args.mu, args.epsilon, oracle=oracle
        )

    print(clustering.summary())
    if args.output:
        _write_labels(clustering, labels_map, args.output)
        print(f"labels written to {args.output}", file=sys.stderr)
    return 0


def _prepare_index(graph, args) -> EdgeSimilarityIndex | None:
    """Build or load the edge-similarity index the flags ask for."""
    if args.similarity_index == "off":
        return None
    path = args.index_path or (args.graph + ".sigma.npz")
    if args.similarity_index == "build":
        started = time.perf_counter()
        backend = args.backend if args.backend != "sequential" else None
        index = EdgeSimilarityIndex.build(
            graph, backend=backend, workers=args.workers
        )
        index.save(path)
        print(
            f"similarity index built ({index.sigmas.shape[0]:,d} edge "
            f"slots) in {time.perf_counter() - started:.2f}s, "
            f"saved to {path}",
            file=sys.stderr,
        )
        return index
    backend = args.backend if args.backend != "sequential" else None
    index, recovered = EdgeSimilarityIndex.load_or_rebuild(
        path, graph, backend=backend, workers=args.workers
    )
    if recovered:
        print(
            f"similarity index at {path} was damaged; quarantined to "
            f"{path}.quarantined and rebuilt",
            file=sys.stderr,
        )
    else:
        print(f"similarity index loaded from {path}", file=sys.stderr)
    return index


def _prepare_cluster_index(graph, args) -> ClusteringIndex | None:
    """Build or load the GS*-style clustering index the flags ask for."""
    if args.cluster_index == "off":
        return None
    path = args.cluster_index_path or (args.graph + ".gsindex.npz")
    backend = args.backend if args.backend != "sequential" else None
    if args.cluster_index == "build":
        started = time.perf_counter()
        cluster_index = ClusteringIndex.build(
            graph, mu_cap=args.mu_cap, backend=backend, workers=args.workers
        )
        cluster_index.save(path)
        print(
            f"clustering index built (μ ≤ {cluster_index.mu_cap} by "
            f"binary search) in {time.perf_counter() - started:.2f}s, "
            f"saved to {path}",
            file=sys.stderr,
        )
        return cluster_index
    cluster_index, recovered = ClusteringIndex.load_or_rebuild(
        path,
        graph,
        mu_cap=args.mu_cap,
        backend=backend,
        workers=args.workers,
    )
    if recovered:
        print(
            f"clustering index at {path} was damaged; quarantined to "
            f"{path}.quarantined and rebuilt",
            file=sys.stderr,
        )
    else:
        print(f"clustering index loaded from {path}", file=sys.stderr)
    return cluster_index


def _build_local_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro local-cluster",
        description="Seeded local structural clustering: the seed "
        "vertex's exact cluster under scan(μ, ε) semantics, at "
        "output-proportional cost.",
    )
    parser.add_argument("graph", help="edge-list file (u v [w] per line)")
    parser.add_argument(
        "--seed", type=int, required=True, help="query vertex id"
    )
    parser.add_argument("--mu", type=int, default=5, help="core threshold μ")
    parser.add_argument(
        "--epsilon", type=float, default=0.5, help="similarity threshold ε"
    )
    parser.add_argument(
        "--weighted",
        action="store_true",
        help="read the third column as edge weight",
    )
    parser.add_argument(
        "--order-seed",
        type=int,
        default=0,
        help="reference visit-order shuffle seed (contested borders "
        "follow the first cluster of this order)",
    )
    parser.add_argument(
        "--similarity-index",
        choices=["off", "build", "use"],
        default="off",
        help="edge-similarity σ tier (see the main command)",
    )
    parser.add_argument("--index-path", default=None)
    parser.add_argument(
        "--cluster-index",
        choices=["off", "build", "use"],
        default="off",
        help="GS*-style σ tier: core checks and ε-neighborhoods by "
        "binary search, zero σ evaluations per query",
    )
    parser.add_argument("--cluster-index-path", default=None)
    parser.add_argument("--mu-cap", type=int, default=DEFAULT_MU_CAP)
    parser.add_argument(
        "--backend",
        choices=["sequential"] + list(BACKEND_NAMES),
        default="sequential",
        help="backend for --similarity-index/--cluster-index build",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--no-boundary",
        action="store_true",
        help="skip classifying the cluster's boundary vertices",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the full result as JSON on stdout",
    )
    return parser


def _local_cluster_main(argv) -> int:
    """``repro local-cluster``: one seeded query from the command line."""
    from repro.local import local_cluster

    args = _build_local_parser().parse_args(argv)
    started = time.perf_counter()
    graph, _ = load_edge_list(args.graph, weighted=args.weighted)
    print(
        f"loaded {graph.num_vertices:,d} vertices, "
        f"{graph.num_edges:,d} edges in "
        f"{time.perf_counter() - started:.2f}s",
        file=sys.stderr,
    )
    try:
        index = _prepare_index(graph, args)
        cluster_index = _prepare_cluster_index(graph, args)
        started = time.perf_counter()
        result = local_cluster(
            graph,
            args.seed,
            args.epsilon,
            args.mu,
            cluster_index=cluster_index,
            edge_index=index,
            order_seed=args.order_seed,
            classify_boundary=not args.no_boundary,
        )
    except ConfigError as exc:
        print(f"local-cluster error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    stats = result.stats
    print(
        f"seed {result.seed} is {result.seed_role.name.lower()}; "
        f"cluster size {result.cluster_size} "
        f"({result.core_members.shape[0]} cores, "
        f"{result.border_members.shape[0]} borders), "
        f"boundary {len(result.boundary)}",
        # With --json, stdout carries only the machine payload.
        file=sys.stderr if args.json else sys.stdout,
    )
    print(
        f"answered by the {stats.tier} tier in {elapsed:.4f}s: "
        f"{stats.touched_edges} touched edges, "
        f"{stats.sigma_evaluations} σ evaluations, "
        f"{stats.touched_vertices} touched vertices, "
        f"{stats.components_expanded} components expanded",
        file=sys.stderr,
    )
    if args.json:
        import json

        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    elif result.cluster_size:
        print("members:", " ".join(str(v) for v in result.members.tolist()))
    return 0


def _run_parallel(graph, args, *, index=None) -> Clustering:
    if index is not None:
        # Every σ comes from the index; no pool to spin up.
        return parallel_scan(
            graph, args.mu, args.epsilon, index=index, seed=args.seed
        )
    backend = create_backend(args.backend, workers=args.workers)
    try:
        result = parallel_scan(
            graph, args.mu, args.epsilon, backend=backend, seed=args.seed
        )
        # Report after the run: a lazy fallback (no shared memory, dead
        # pool) only shows up in the backend's kind once it has executed.
        print(
            f"backend {args.backend} resolved to {backend_kind(backend)} "
            f"(workers={args.workers or 'auto'})",
            file=sys.stderr,
        )
        return result
    finally:
        close_backend(backend)


def _run_anyscan(graph, args, *, index=None) -> Clustering:
    config = AnyScanConfig(
        mu=args.mu,
        epsilon=args.epsilon,
        alpha=args.alpha,
        beta=args.beta,
        seed=args.seed,
        record_costs=False,
    )
    oracle = IndexedOracle(index) if index is not None else None
    algo = AnySCAN(graph, config, oracle=oracle)
    runner = AnytimeRunner(algo)
    if args.budget_work is None and args.budget_seconds is None:
        if args.progress:
            while True:
                snap = runner.step()
                if snap is None:
                    break
                print(
                    f"iter {snap.iteration:4d} [{snap.step:12s}] "
                    f"clusters={snap.num_clusters:5d} "
                    f"assigned={snap.assigned_fraction:6.1%} "
                    f"work={snap.work_units:,.0f}",
                    file=sys.stderr,
                )
            return algo.result()
        return algo.run()

    snap = runner.run_until(
        max_work_units=args.budget_work, max_seconds=args.budget_seconds
    )
    if algo.finished:
        return algo.result()
    assert snap is not None
    print(
        f"stopped early at iteration {snap.iteration} "
        f"({snap.assigned_fraction:.1%} of vertices assigned); "
        "result is approximate",
        file=sys.stderr,
    )
    return snap.clustering()


def _write_labels(clustering: Clustering, labels_map, path: str) -> None:
    reverse = {v: k for k, v in labels_map.items()}
    with open(path, "w") as handle:
        handle.write("# vertex label  (negative: -1 hub, -2 outlier)\n")
        for v in range(clustering.num_vertices):
            name = reverse.get(v, str(v))
            handle.write(f"{name} {int(clustering.labels[v])}\n")


if __name__ == "__main__":
    raise SystemExit(main())
