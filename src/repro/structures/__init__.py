"""Shared data structures: disjoint set, vertex states, super-nodes."""

from repro.structures.disjoint_set import DisjointSet
from repro.structures.state import ALLOWED_TRANSITIONS, StateMachine, VertexState
from repro.structures.supernode import SuperNode, SuperNodeIndex

__all__ = [
    "DisjointSet",
    "VertexState",
    "StateMachine",
    "ALLOWED_TRANSITIONS",
    "SuperNode",
    "SuperNodeIndex",
]
