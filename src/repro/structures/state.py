"""Vertex state machine of anySCAN (Figure 3 / Theorem 1).

Every vertex carries one of seven states.  The paper's Theorem 1 asserts
that during execution states only move along the Figure 3 schema — e.g. a
*processed* vertex never becomes *unprocessed* and a border never becomes a
core.  :class:`StateMachine` enforces exactly those transitions, so a bug
in the algorithm that would violate the theorem raises
:class:`~repro.errors.StateTransitionError` instead of silently corrupting
the clustering.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, FrozenSet

import numpy as np

from repro.errors import StateTransitionError

__all__ = ["VertexState", "StateMachine", "ALLOWED_TRANSITIONS"]


class VertexState(IntEnum):
    """The seven vertex states of Figure 3."""

    UNTOUCHED = 0
    UNPROCESSED_NOISE = 1
    UNPROCESSED_BORDER = 2
    UNPROCESSED_CORE = 3
    PROCESSED_NOISE = 4
    PROCESSED_BORDER = 5
    PROCESSED_CORE = 6


_S = VertexState

#: Transition schema of Figure 3.  Key: current state; value: reachable states.
ALLOWED_TRANSITIONS: Dict[VertexState, FrozenSet[VertexState]] = {
    _S.UNTOUCHED: frozenset(
        {
            _S.UNPROCESSED_NOISE,   # degree < μ discovered without a query
            _S.UNPROCESSED_BORDER,  # became a neighbor of a core
            _S.UNPROCESSED_CORE,    # nei(q) reached μ without a query
            _S.PROCESSED_NOISE,     # range query said noise
            _S.PROCESSED_CORE,      # range query said core
        }
    ),
    _S.UNPROCESSED_NOISE: frozenset(
        {
            _S.PROCESSED_BORDER,  # a neighbor turned out to be core
            _S.PROCESSED_NOISE,   # no neighbor is core
        }
    ),
    _S.UNPROCESSED_BORDER: frozenset(
        {
            _S.UNPROCESSED_CORE,  # nei(q) reached μ without examination
            _S.PROCESSED_CORE,    # core check succeeded
            _S.PROCESSED_BORDER,  # core check failed (still in a cluster)
        }
    ),
    _S.UNPROCESSED_CORE: frozenset({_S.PROCESSED_CORE}),
    _S.PROCESSED_NOISE: frozenset({_S.PROCESSED_BORDER}),  # Step 4 promotion
    _S.PROCESSED_BORDER: frozenset(),  # terminal: border never becomes core
    _S.PROCESSED_CORE: frozenset(),    # terminal
}

_PROCESSED = frozenset(
    {_S.PROCESSED_NOISE, _S.PROCESSED_BORDER, _S.PROCESSED_CORE}
)
_CORE_KNOWN = frozenset({_S.UNPROCESSED_CORE, _S.PROCESSED_CORE})


class StateMachine:
    """State array for all vertices with transition validation."""

    def __init__(self, num_vertices: int, *, validate: bool = True) -> None:
        self._states = np.full(num_vertices, int(_S.UNTOUCHED), dtype=np.int8)
        self._validate = validate

    def __len__(self) -> int:
        return int(self._states.shape[0])

    def get(self, v: int) -> VertexState:
        """Current state of vertex ``v``."""
        return VertexState(int(self._states[v]))

    def set(self, v: int, new: VertexState) -> None:
        """Transition vertex ``v`` to ``new``, enforcing Figure 3."""
        old = VertexState(int(self._states[v]))
        if old == new:
            return
        if self._validate and new not in ALLOWED_TRANSITIONS[old]:
            raise StateTransitionError(
                f"vertex {v}: illegal transition {old.name} -> {new.name}"
            )
        self._states[v] = int(new)

    def try_set(self, v: int, new: VertexState) -> bool:
        """Transition if legal; returns whether the state changed.

        Used where the algorithm races benignly (e.g. marking a neighbor
        *unprocessed-border* that another block already promoted to core).
        """
        old = VertexState(int(self._states[v]))
        if old == new:
            return False
        if new in ALLOWED_TRANSITIONS[old]:
            self._states[v] = int(new)
            return True
        return False

    # ------------------------------------------------------------------
    # predicates used throughout the algorithm
    # ------------------------------------------------------------------
    def is_untouched(self, v: int) -> bool:
        return self._states[v] == int(_S.UNTOUCHED)

    def is_processed(self, v: int) -> bool:
        return VertexState(int(self._states[v])) in _PROCESSED

    def is_core(self, v: int) -> bool:
        """Whether ``v`` is already known to be a core (Definition 3)."""
        return VertexState(int(self._states[v])) in _CORE_KNOWN

    def untouched_vertices(self) -> np.ndarray:
        """Ids of all vertices still in the UNTOUCHED state."""
        return np.flatnonzero(self._states == int(_S.UNTOUCHED))

    def vertices_in(self, *states: VertexState) -> np.ndarray:
        """Ids of vertices currently in any of ``states``."""
        mask = np.zeros(len(self), dtype=bool)
        for state in states:
            mask |= self._states == int(state)
        return np.flatnonzero(mask)

    def counts(self) -> Dict[VertexState, int]:
        """Histogram of states (the Figure 7 right-panel composition)."""
        values, freqs = np.unique(self._states, return_counts=True)
        out = {state: 0 for state in VertexState}
        for value, freq in zip(values, freqs):
            out[VertexState(int(value))] = int(freq)
        return out

    @property
    def raw(self) -> np.ndarray:
        """Read-only view of the underlying int8 array."""
        return self._states
