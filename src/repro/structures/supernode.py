"""Super-nodes: the summaries anySCAN builds clusters from.

Step 1 of anySCAN summarizes each examined core vertex ``p`` into a
super-node ``sn(p)`` holding its structural neighborhood ``N_p^ε`` (plus
``p`` itself — Lemma 1 guarantees all of them share a cluster).  Cluster
labels are tracked per *super-node* in a disjoint set, which is why the
label-propagation work is so much smaller than SCAN's per-vertex labeling.

:class:`SuperNodeIndex` also maintains the inverted membership index
``vertex -> [super-node ids]`` that Steps 2–4 need: strongly-related
super-nodes are exactly those sharing a member (Definition 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.errors import ReproError
from repro.structures.disjoint_set import DisjointSet

__all__ = ["SuperNode", "SuperNodeIndex"]


@dataclass(frozen=True)
class SuperNode:
    """One super-node ``sn(p)``: representative plus member vertices."""

    sid: int
    representative: int
    members: np.ndarray  # includes the representative

    def __contains__(self, vertex: int) -> bool:
        pos = int(np.searchsorted(self.members, vertex))
        return pos < self.members.shape[0] and int(self.members[pos]) == vertex

    def __len__(self) -> int:
        return int(self.members.shape[0])


class SuperNodeIndex:
    """The super-node list ``SN`` with membership index and cluster labels."""

    def __init__(self, num_vertices: int) -> None:
        self._num_vertices = num_vertices
        self._nodes: List[SuperNode] = []
        self._memberships: Dict[int, List[int]] = {}
        self._labels = DisjointSet(0)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, representative: int, neighborhood: Sequence[int]) -> SuperNode:
        """Create ``sn(representative)`` from its ε-neighborhood.

        The representative is folded into the member set; members are kept
        sorted for fast containment tests.
        """
        members = np.unique(
            np.concatenate(
                [
                    np.asarray(neighborhood, dtype=np.int64).ravel(),
                    np.asarray([representative], dtype=np.int64),
                ]
            )
        )
        if members.shape[0] and (
            members[0] < 0 or members[-1] >= self._num_vertices
        ):
            raise ReproError("super-node member out of range")
        sid = len(self._nodes)
        node = SuperNode(sid=sid, representative=representative, members=members)
        self._nodes.append(node)
        self._labels.grow(1)
        for v in members:
            self._memberships.setdefault(int(v), []).append(sid)
        return node

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[SuperNode]:
        return iter(self._nodes)

    def node(self, sid: int) -> SuperNode:
        """Super-node by id."""
        return self._nodes[sid]

    def supernodes_of(self, vertex: int) -> List[int]:
        """Ids of all super-nodes containing ``vertex`` (``SN_v``)."""
        return self._memberships.get(int(vertex), [])

    def membership_count(self, vertex: int) -> int:
        """``|SN_v|`` — how many super-nodes contain ``vertex``."""
        return len(self._memberships.get(int(vertex), ()))

    def covered(self, vertex: int) -> bool:
        """Whether ``vertex`` belongs to at least one super-node."""
        return int(vertex) in self._memberships

    @property
    def labels(self) -> DisjointSet:
        """Disjoint set over super-node ids (cluster labels)."""
        return self._labels

    # ------------------------------------------------------------------
    # cluster helpers
    # ------------------------------------------------------------------
    def cluster_of_vertex(self, vertex: int) -> int:
        """Cluster root of ``vertex``, or -1 when it has no super-node.

        Vertices in several super-nodes take the cluster of the first; the
        paper notes shared borders may legitimately land in either side.
        """
        sids = self._memberships.get(int(vertex))
        if not sids:
            return -1
        return self._labels.find(sids[0])

    def all_same_cluster(self, vertex: int) -> bool:
        """Whether every super-node of ``vertex`` already shares one label.

        This is the Step 2 pruning test (Figure 2 line 25): such a vertex
        cannot change the clustering and is skipped without a core check.
        """
        sids = self._memberships.get(int(vertex), [])
        if len(sids) <= 1:
            return True
        first = self._labels.find(sids[0])
        return all(self._labels.find(s) == first for s in sids[1:])

    def merge(self, sid_a: int, sid_b: int) -> bool:
        """Union the clusters of two super-nodes; True if they merged."""
        return self._labels.union(sid_a, sid_b)

    def vertex_labels(self) -> np.ndarray:
        """Cluster label per vertex (-1 for vertices outside all super-nodes).

        This is the "label all vertices according to the label of their
        super-nodes" operation that materializes an intermediate result.
        """
        labels = -np.ones(self._num_vertices, dtype=np.int64)
        for vertex, sids in self._memberships.items():
            labels[vertex] = self._labels.find(sids[0])
        return labels

    def representative_cluster_roots(self) -> Dict[int, int]:
        """Map cluster root -> id of one representative super-node."""
        out: Dict[int, int] = {}
        for node in self._nodes:
            root = self._labels.find(node.sid)
            out.setdefault(root, node.sid)
        return out
