"""Instrumented disjoint-set (union–find) structure.

Super-node labels in anySCAN (and cluster-core labels in pSCAN) live in a
disjoint-set forest with union by rank and iterative path compression.
Figure 12 of the paper counts ``Union`` operations — they are the only
synchronization points of the parallel algorithm — so the structure counts
finds, attempted unions, and *effective* unions (those that actually merged
two trees) separately.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import ReproError

__all__ = ["DisjointSet"]


class DisjointSet:
    """Union–find over the integers ``0..n-1``."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ReproError("DisjointSet size must be non-negative")
        self._parent = np.arange(n, dtype=np.int64)
        self._rank = np.zeros(n, dtype=np.int8)
        self.find_calls = 0
        self.union_calls = 0
        self.effective_unions = 0

    def __len__(self) -> int:
        return int(self._parent.shape[0])

    def grow(self, count: int = 1) -> int:
        """Append ``count`` fresh singleton elements; returns the first id."""
        if count < 0:
            raise ReproError("cannot grow by a negative count")
        first = len(self)
        self._parent = np.concatenate(
            [self._parent, np.arange(first, first + count, dtype=np.int64)]
        )
        self._rank = np.concatenate(
            [self._rank, np.zeros(count, dtype=np.int8)]
        )
        return first

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path compression)."""
        parent = self._parent
        if not 0 <= x < parent.shape[0]:
            raise ReproError(f"element {x} out of range")
        self.find_calls += 1
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True when a merge happened."""
        self.union_calls += 1
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        rank = self._rank
        if rank[ra] < rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if rank[ra] == rank[rb]:
            rank[ra] += 1
        self.effective_unions += 1
        return True

    def same(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def components(self) -> np.ndarray:
        """Array mapping each element to its root representative."""
        return np.asarray([self.find(i) for i in range(len(self))], dtype=np.int64)

    def component_lists(self) -> Dict[int, List[int]]:
        """Mapping root -> sorted member list."""
        out: Dict[int, List[int]] = {}
        for i in range(len(self)):
            out.setdefault(self.find(i), []).append(i)
        return out

    def num_components(self) -> int:
        """Number of distinct sets."""
        if len(self) == 0:
            return 0
        return int(np.unique(self.components()).shape[0])

    def reset_counters(self) -> None:
        """Zero the instrumentation counters (structure unchanged)."""
        self.find_calls = 0
        self.union_calls = 0
        self.effective_unions = 0
