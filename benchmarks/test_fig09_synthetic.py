"""Figure 9: pSCAN vs anySCAN on the synthetic LFR sweeps."""

from benchmarks.conftest import run_once
from repro.bench.datasets import load_dataset
from repro.bench.harness import run_algorithm
from repro.graph.stats import average_degree


def test_fig9_degree_sweep(benchmark):
    names = ["LFR01", "LFR03", "LFR05"]

    def kernel():
        out = {}
        for name in names:
            graph = load_dataset(name, "tiny")
            out[name] = {
                "d": average_degree(graph),
                "pSCAN": run_algorithm("pSCAN", graph, 5, 0.5).work_units,
                "anySCAN": run_algorithm("anySCAN", graph, 5, 0.5).work_units,
            }
        return out

    table = run_once(benchmark, kernel)
    # Cost grows with average degree for both algorithms.
    p_costs = [table[n]["pSCAN"] for n in names]
    a_costs = [table[n]["anySCAN"] for n in names]
    assert p_costs == sorted(p_costs)
    assert a_costs == sorted(a_costs)
    # anySCAN's relative standing improves on denser graphs.
    ratios = [table[n]["pSCAN"] / table[n]["anySCAN"] for n in names]
    assert ratios[-1] >= ratios[0] * 0.9
    benchmark.extra_info["ratios_pscan_over_anyscan"] = [
        round(r, 3) for r in ratios
    ]


def test_fig9_clustering_sweep(benchmark):
    names = ["LFR11", "LFR13", "LFR15"]

    def kernel():
        out = {}
        for name in names:
            graph = load_dataset(name, "tiny")
            out[name] = {
                "pSCAN": run_algorithm("pSCAN", graph, 5, 0.5).work_units,
                "anySCAN": run_algorithm("anySCAN", graph, 5, 0.5).work_units,
            }
        return out

    table = run_once(benchmark, kernel)
    # The paper's actionable claim: anySCAN performs (relatively) better
    # than pSCAN as the clustering coefficient grows.
    ratios = [table[n]["pSCAN"] / table[n]["anySCAN"] for n in names]
    assert ratios[-1] >= ratios[0]
    benchmark.extra_info["ratios_pscan_over_anyscan"] = [
        round(r, 3) for r in ratios
    ]
    benchmark.extra_info["anyscan_work"] = [
        round(table[n]["anySCAN"]) for n in names
    ]
