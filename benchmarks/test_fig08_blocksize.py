"""Figure 8: parameter effects on anytime quality and block-size stability."""

import pytest

from benchmarks.conftest import run_once
from repro.anytime import AnytimeRunner
from repro.bench.harness import run_algorithm
from repro.core import AnySCAN, AnyScanConfig


def test_fig8_mu_effect_on_early_quality(benchmark, gr01):
    """Lower μ discovers more cores per iteration, so intermediate
    results approach the final one earlier (paper, Figure 8 analysis)."""
    def trace_for(mu):
        reference = run_algorithm("SCAN", gr01, mu, 0.5)
        algo = AnySCAN(
            gr01,
            AnyScanConfig(mu=mu, epsilon=0.5, alpha=48, beta=48,
                          record_costs=False),
        )
        return AnytimeRunner(algo).trace_against(reference.clustering.labels)

    def kernel():
        return {mu: trace_for(mu) for mu in (2, 10)}

    traces = run_once(benchmark, kernel)
    early = {
        mu: trace.quality_at_work(0.5 * trace.total_work)
        for mu, trace in traces.items()
    }
    assert traces[2].final_quality == pytest.approx(1.0)
    assert traces[10].final_quality == pytest.approx(1.0)
    benchmark.extra_info["nmi_at_half_budget"] = {
        str(mu): round(q, 3) for mu, q in early.items()
    }


def test_fig8_block_size_stability(benchmark, gr01):
    """Total cost is stable w.r.t. α=β (paper: 'very stable')."""
    def cost_for(size):
        algo = AnySCAN(
            gr01,
            AnyScanConfig(mu=5, epsilon=0.5, alpha=size, beta=size,
                          record_costs=False),
        )
        algo.run()
        return float(algo.statistics()["work_units"])

    def kernel():
        # Sizes relative to |V|, as in the paper (α=8192 vs millions of
        # vertices); a block comparable to |V| degenerates Step 1.
        n = gr01.num_vertices
        return {
            size: cost_for(size)
            for size in (max(n // 16, 8), max(n // 8, 16), max(n // 4, 32))
        }

    costs = run_once(benchmark, kernel)
    values = list(costs.values())
    assert max(values) <= 2.0 * min(values)
    benchmark.extra_info["work_by_blocksize"] = {
        str(k): round(v) for k, v in costs.items()
    }
