"""Table II: LFR analog statistics (degree sweep + clustering sweep)."""

from benchmarks.conftest import run_once
from repro.bench.experiments import run_experiment


def test_tab2_lfr_sweeps(benchmark):
    results = run_once(benchmark, run_experiment, "tab2", quick=True)
    table = results[0]
    names = table.column("Id")
    degrees = dict(zip(names, table.column("d̄")))
    clustering = dict(zip(names, table.column("c")))
    # LFR01..05 sweep average degree upward at ~fixed mixing.
    degree_series = [degrees[f"LFR0{i}"] for i in range(1, 6)]
    assert degree_series == sorted(degree_series)
    # LFR11..15 sweep the clustering coefficient upward at ~fixed degree.
    cc_series = [clustering[f"LFR1{i}"] for i in range(1, 6)]
    assert cc_series == sorted(cc_series)
    benchmark.extra_info["degree_series"] = degree_series
    benchmark.extra_info["cc_series"] = cc_series
