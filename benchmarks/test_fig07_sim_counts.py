"""Figure 7: σ-evaluation counts per algorithm + vertex composition."""

import numpy as np

from benchmarks.conftest import run_once
from repro.bench.harness import ALGORITHMS, run_algorithm
from repro.result import VertexRole


def test_fig7_sigma_evaluation_counts(benchmark, gr02):
    def kernel():
        return {
            name: run_algorithm(name, gr02, 5, 0.5)
            for name in ALGORITHMS
        }

    runs = run_once(benchmark, kernel)
    evals = {name: run.sigma_evaluations for name, run in runs.items()}
    # Paper's left panel: pSCAN and anySCAN need far fewer evaluations
    # than SCAN; anySCAN is in pSCAN's league.
    assert evals["pSCAN"] < evals["SCAN"]
    assert evals["anySCAN"] < evals["SCAN"]
    assert evals["anySCAN"] <= 2.5 * max(evals["pSCAN"], 1)
    # SCAN++'s split is reported and sums to its total.
    pp = runs["SCAN++"]
    assert (
        pp.extra["true_evaluations"] + pp.extra["sharing_evaluations"]
        >= pp.sigma_evaluations * 0.99
    )
    benchmark.extra_info["evaluations"] = evals


def test_fig7_vertex_composition(benchmark, gr01):
    def kernel():
        return run_algorithm("SCAN", gr01, 5, 0.5).clustering

    clustering = run_once(benchmark, kernel)
    roles = clustering.roles
    cores = int(np.sum(roles == int(VertexRole.CORE)))
    borders = int(np.sum(roles == int(VertexRole.BORDER)))
    rest = clustering.num_vertices - cores - borders
    assert cores + borders + rest == clustering.num_vertices
    # GR01's analog is the dense-community regime: mostly cores.
    assert cores > rest
    benchmark.extra_info["composition"] = {
        "cores": cores, "borders": borders, "hubs+outliers": rest
    }
