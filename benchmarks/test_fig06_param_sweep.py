"""Figure 6: final runtimes vs ε and μ for all five algorithms."""

import pytest

from benchmarks.conftest import run_once
from repro.bench.harness import ALGORITHMS, run_algorithm


def test_fig6_epsilon_sweep(benchmark, gr01):
    epsilons = [0.3, 0.5, 0.7]

    def kernel():
        return {
            eps: {
                name: run_algorithm(name, gr01, 5, eps).work_units
                for name in ALGORITHMS
            }
            for eps in epsilons
        }

    table = run_once(benchmark, kernel)
    for eps, row in table.items():
        # SCAN is never beaten on total work by the pruned variants.
        assert row["anySCAN"] <= row["SCAN"]
        # SCAN-B is SCAN plus the Lemma 5 optimizations: at equal ε it
        # cannot do substantially more work than plain SCAN.
        assert row["SCAN-B"] <= row["SCAN"] * 1.05
    benchmark.extra_info["work"] = {
        str(eps): {k: round(v) for k, v in row.items()}
        for eps, row in table.items()
    }


def test_fig6_mu_sweep(benchmark, gr02):
    mus = [2, 5, 10]

    def kernel():
        return {
            mu: {
                name: run_algorithm(name, gr02, mu, 0.5).work_units
                for name in ALGORITHMS
            }
            for mu in mus
        }

    table = run_once(benchmark, kernel)
    for mu, row in table.items():
        assert row["anySCAN"] <= row["SCAN"]
        assert row["pSCAN"] <= row["SCAN"]
    benchmark.extra_info["work"] = {
        str(mu): {k: round(v) for k, v in row.items()}
        for mu, row in table.items()
    }
