"""Ablations: pruning, candidate sorting, scheduling policy."""

from benchmarks.conftest import run_once
from repro.core import AnySCAN, AnyScanConfig
from repro.core.parallel import ParallelAnySCAN
from repro.parallel.simulator import MachineSpec
from repro.similarity.weighted import SimilarityConfig


def test_ablation_lemma5_pruning(benchmark, gr01):
    def run_with(pruning):
        algo = AnySCAN(
            gr01,
            AnyScanConfig(
                mu=5, epsilon=0.5, alpha=128, beta=128, record_costs=False,
                similarity=SimilarityConfig(pruning=pruning),
            ),
        )
        algo.run()
        return float(algo.statistics()["work_units"])

    def kernel():
        return {"on": run_with(True), "off": run_with(False)}

    work = run_once(benchmark, kernel)
    assert work["on"] <= work["off"] * 1.05
    benchmark.extra_info["work_units"] = {
        k: round(v) for k, v in work.items()
    }


def test_ablation_candidate_sorting(benchmark, gr04):
    def run_with(sort):
        algo = AnySCAN(
            gr04,
            AnyScanConfig(
                mu=5, epsilon=0.5, alpha=96, beta=96,
                sort_candidates=sort, record_costs=False,
            ),
        )
        algo.run()
        return float(algo.statistics()["sigma_evaluations"])

    def kernel():
        return {"on": run_with(True), "off": run_with(False)}

    evals = run_once(benchmark, kernel)
    # Sorting is a heuristic: it should not cost extra evaluations.
    assert evals["on"] <= evals["off"] * 1.15
    benchmark.extra_info["sigma_evals"] = {
        k: int(v) for k, v in evals.items()
    }


def test_ablation_dynamic_vs_static_schedule(benchmark, gr05):
    def run_with(schedule):
        block = max(gr05.num_vertices // 8, 64)
        par = ParallelAnySCAN(
            gr05,
            AnyScanConfig(mu=5, epsilon=0.5, alpha=block, beta=block),
            machine=MachineSpec(threads=1, schedule=schedule),
        )
        par.run()
        return par.speedups([16])[16]

    def kernel():
        return {
            "dynamic": run_with("dynamic"),
            "static": run_with("static"),
        }

    s = run_once(benchmark, kernel)
    # The heavy-tailed graph is where schedule(dynamic) earns its keep.
    assert s["dynamic"] >= s["static"] * 0.98
    benchmark.extra_info["speedup16"] = {
        k: round(v, 2) for k, v in s.items()
    }
