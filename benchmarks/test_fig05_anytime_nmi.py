"""Figure 5: anytime NMI curves vs. batch baselines.

The paper's headline anytime result: NMI climbs toward 1.0 over the
iterations, good approximations arrive well before the final (exact)
result, and the final cumulative cost is in the same league as the
fastest batch algorithm.
"""

import pytest

from benchmarks.conftest import run_once
from repro.anytime import AnytimeRunner
from repro.bench.harness import run_algorithm
from repro.core import AnySCAN, AnyScanConfig


@pytest.mark.parametrize("epsilon", [0.5, 0.6])
def test_fig5_anytime_quality_curve(benchmark, gr01, epsilon):
    reference = run_algorithm("SCAN", gr01, 5, epsilon)

    def kernel():
        algo = AnySCAN(
            gr01,
            AnyScanConfig(
                mu=5, epsilon=epsilon,
                alpha=max(gr01.num_vertices // 12, 32),
                beta=max(gr01.num_vertices // 12, 32),
                record_costs=False,
            ),
        )
        return AnytimeRunner(algo).trace_against(reference.clustering.labels)

    trace = run_once(benchmark, kernel)
    qualities = [p.quality for p in trace]
    # Converges to SCAN's exact result.
    assert trace.final_quality == pytest.approx(1.0)
    # Quality trends upward (small dips allowed, as in the paper's plots).
    assert trace.is_monotone(tolerance=0.3)
    # A good approximation (NMI >= 0.5) is available before the full cost.
    half = trace.first_reaching(0.5)
    assert half is not None
    assert half.work_units <= trace.total_work
    benchmark.extra_info["iterations"] = len(trace)
    benchmark.extra_info["nmi_curve_head"] = [round(q, 3) for q in qualities[:5]]


def test_fig5_final_cost_competitive_with_batch(benchmark, gr02):
    """anySCAN run to the end is work-competitive with pSCAN (the paper:
    'its final cumulative runtimes are slightly faster than pSCAN in most
    cases')."""
    def kernel():
        return {
            name: run_algorithm(name, gr02, 5, 0.5).work_units
            for name in ("SCAN", "pSCAN", "anySCAN")
        }

    work = run_once(benchmark, kernel)
    assert work["anySCAN"] < work["SCAN"]
    assert work["anySCAN"] < 2.0 * work["pSCAN"]
    benchmark.extra_info["work_units"] = {
        k: round(v) for k, v in work.items()
    }
