"""Extension experiments: parameter explorer and dynamic maintenance."""

from benchmarks.conftest import run_once
from repro.bench.experiments import run_experiment


def test_ext_explorer_beats_per_setting_reruns(benchmark):
    results = run_once(benchmark, run_experiment, "ext_explorer", quick=True)
    panel = results[0]
    rows = {row[0]: row for row in panel.rows}
    explorer = rows["ParameterExplorer"]
    pscan = rows["pSCAN per setting"]
    assert explorer[1] < pscan[1]  # σ evaluations
    assert explorer[2] < pscan[2]  # work units
    benchmark.extra_info["sigma_evals"] = {
        "explorer": int(explorer[1]), "pscan_grid": int(pscan[1])
    }


def test_ext_dynamic_much_cheaper_than_fresh_batches(benchmark):
    results = run_once(benchmark, run_experiment, "ext_dynamic", quick=True)
    panel = results[0]
    rows = {row[0]: row for row in panel.rows}
    incremental = rows["incremental (fresh after every edge)"]
    per_edge = rows["batch SCAN per edge (equivalent freshness)"]
    assert incremental[1] < per_edge[1] / 50  # orders of magnitude cheaper
    # Both end at the same clustering.
    assert incremental[2] == per_edge[2]
    benchmark.extra_info["sigma_evals"] = {
        "incremental": int(incremental[1]),
        "batch_per_edge": int(per_edge[1]),
    }
