"""Table I: real-graph analog statistics."""

from benchmarks.conftest import run_once
from repro.bench.experiments import run_experiment


def test_tab1_dataset_statistics(benchmark):
    results = run_once(benchmark, run_experiment, "tab1", quick=True)
    table = results[0]
    names = table.column("Id")
    assert names == ["GR01", "GR02", "GR03", "GR04", "GR05"]
    measured_d = dict(zip(names, table.column("d̄")))
    measured_c = dict(zip(names, table.column("c")))
    # Regime ordering from Table I: GR01 is the densest/most clustered
    # analog; GR03 has the lowest clustering coefficient.
    assert measured_d["GR01"] > measured_d["GR02"]
    assert measured_c["GR01"] == max(measured_c.values())
    assert measured_c["GR03"] == min(measured_c.values())
    benchmark.extra_info["rows"] = len(table.rows)
