"""Figure 10: cumulative runtime per iteration and final speedups."""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core import AnyScanConfig
from repro.core.parallel import ParallelAnySCAN

THREADS = [1, 2, 4, 8, 16]


def _parallel(graph):
    block = max(graph.num_vertices // 8, 64)
    par = ParallelAnySCAN(
        graph, AnyScanConfig(mu=5, epsilon=0.5, alpha=block, beta=block)
    )
    par.run()
    return par


def test_fig10_cumulative_times_per_thread_count(benchmark, gr01):
    par = run_once(benchmark, _parallel, gr01)
    reports = {t: par.report(t) for t in THREADS}
    for t in THREADS:
        assert np.all(np.diff(reports[t].cumulative_times) >= 0)
    # More threads -> every iteration lands earlier.
    for a, b in zip(THREADS, THREADS[1:]):
        assert np.all(
            reports[b].cumulative_times <= reports[a].cumulative_times + 1e-9
        )
    benchmark.extra_info["iterations"] = len(par.cost_log)


def test_fig10_final_speedups(benchmark, gr04):
    par = run_once(benchmark, _parallel, gr04)
    speedups = par.speedups(THREADS)
    assert speedups[1] == pytest.approx(1.0)
    assert speedups[2] > 1.7
    assert speedups[16] > 7.0  # near-linear regime of the paper
    # The anytime property survives parallelism: early iterations scale too.
    per_iter = par.speedups_per_iteration([16])[16]
    assert np.nanmin(per_iter[: max(len(per_iter) // 2, 1)]) > 4.0
    benchmark.extra_info["speedups"] = {
        str(t): round(s, 2) for t, s in speedups.items()
    }


def test_fig10_skewed_graph_scales_worse(benchmark, gr05, gr04):
    def kernel():
        return _parallel(gr05).speedups([16]), _parallel(gr04).speedups([16])

    skewed, regular = run_once(benchmark, kernel)
    # GR05's analog (R-MAT, heavy-tailed degrees) scales worse than
    # GR04's (LFR, bounded degrees) — the paper's load-imbalance
    # observation on graphs whose degrees "vary significantly".
    assert skewed[16] <= regular[16] + 0.5
    benchmark.extra_info["skewed_vs_regular"] = (
        round(skewed[16], 2), round(regular[16], 2)
    )
