"""Shared benchmark fixtures.

Every module here regenerates one table or figure of the paper.  The
pytest-benchmark fixture measures the end-to-end experiment kernel once
(rounds=1: the experiments are deterministic and heavy), stores the
headline numbers in ``benchmark.extra_info``, and asserts the paper's
qualitative shape.  ``python -m repro.bench <exp-id>`` prints the full
tables.
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import load_dataset


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a deterministic heavy kernel exactly once."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def gr01():
    return load_dataset("GR01", "tiny")


@pytest.fixture(scope="session")
def gr02():
    return load_dataset("GR02", "tiny")


@pytest.fixture(scope="session")
def gr03():
    return load_dataset("GR03", "tiny")


@pytest.fixture(scope="session")
def gr04():
    return load_dataset("GR04", "tiny")


@pytest.fixture(scope="session")
def gr05():
    return load_dataset("GR05", "tiny")
