"""Figure 14: parallel scalability across the LFR sweeps."""

from benchmarks.conftest import run_once
from repro.bench.datasets import load_dataset
from repro.core import AnyScanConfig
from repro.core.parallel import ParallelAnySCAN


def _speedup16(graph):
    block = max(graph.num_vertices // 8, 64)
    par = ParallelAnySCAN(
        graph, AnyScanConfig(mu=5, epsilon=0.5, alpha=block, beta=block)
    )
    par.run()
    return par.speedups([16])[16]


def test_fig14_degree_sweep_scalability(benchmark):
    def kernel():
        return {
            name: _speedup16(load_dataset(name, "tiny"))
            for name in ("LFR01", "LFR05")
        }

    s = run_once(benchmark, kernel)
    # Denser graphs carry more work per task: scalability improves (or at
    # worst stays flat) as the average degree grows.
    assert s["LFR05"] >= s["LFR01"] * 0.9
    benchmark.extra_info["speedup16"] = {
        k: round(v, 2) for k, v in s.items()
    }


def test_fig14_clustering_sweep_scalability(benchmark):
    def kernel():
        return {
            name: _speedup16(load_dataset(name, "tiny"))
            for name in ("LFR11", "LFR15")
        }

    s = run_once(benchmark, kernel)
    # Both regimes stay well above half the thread count is not expected;
    # the claim is only that scalability stays meaningful across c.
    assert min(s.values()) > 3.0
    benchmark.extra_info["speedup16"] = {
        k: round(v, 2) for k, v in s.items()
    }
