"""Figure 13: effect of μ, ε, and block size on parallel scalability."""

from benchmarks.conftest import run_once
from repro.core import AnyScanConfig
from repro.core.parallel import ParallelAnySCAN


def _speedup16(graph, *, mu=5, eps=0.5, block=None):
    block = block or max(graph.num_vertices // 8, 64)
    par = ParallelAnySCAN(
        graph, AnyScanConfig(mu=mu, epsilon=eps, alpha=block, beta=block)
    )
    par.run()
    return par.speedups([16])[16]


def test_fig13_block_size_improves_scalability(benchmark, gr01):
    def kernel():
        n = gr01.num_vertices
        return {
            "small": _speedup16(gr01, block=max(n // 32, 16)),
            "large": _speedup16(gr01, block=max(n // 2, 64)),
        }

    s = run_once(benchmark, kernel)
    # Larger blocks give threads more work between barriers.
    assert s["large"] >= s["small"] * 0.95
    benchmark.extra_info["speedup16"] = {
        k: round(v, 2) for k, v in s.items()
    }


def test_fig13_parameters_shift_scalability(benchmark, gr01):
    def kernel():
        return {
            "mu2": _speedup16(gr01, mu=2),
            "mu10": _speedup16(gr01, mu=10),
            "eps03": _speedup16(gr01, eps=0.3),
            "eps07": _speedup16(gr01, eps=0.7),
        }

    s = run_once(benchmark, kernel)
    # All regimes keep meaningful 16-thread scalability.
    assert min(s.values()) > 3.0
    benchmark.extra_info["speedup16"] = {
        k: round(v, 2) for k, v in s.items()
    }
