"""Figure 11: anySCAN vs the ideal similarity-only parallel algorithm."""

from benchmarks.conftest import run_once
from repro.core import AnyScanConfig
from repro.core.parallel import ParallelAnySCAN, ideal_speedups

THREADS = [2, 4, 8, 16]


def test_fig11_anyscan_tracks_ideal(benchmark, gr01):
    def kernel():
        block = max(gr01.num_vertices // 8, 64)
        par = ParallelAnySCAN(
            gr01, AnyScanConfig(mu=5, epsilon=0.5, alpha=block, beta=block)
        )
        par.run()
        return par.speedups(THREADS), ideal_speedups(gr01, THREADS)

    any_s, ideal_s = run_once(benchmark, kernel)
    for t in THREADS:
        # anySCAN stays close to (and does not implausibly exceed) ideal.
        assert any_s[t] <= ideal_s[t] + 0.5
        assert any_s[t] >= 0.55 * ideal_s[t]
    benchmark.extra_info["anyscan"] = {
        str(t): round(s, 2) for t, s in any_s.items()
    }
    benchmark.extra_info["ideal"] = {
        str(t): round(s, 2) for t, s in ideal_s.items()
    }


def test_fig11_both_degrade_on_skewed_graph(benchmark, gr05):
    def kernel():
        block = max(gr05.num_vertices // 8, 64)
        par = ParallelAnySCAN(
            gr05, AnyScanConfig(mu=5, epsilon=0.5, alpha=block, beta=block)
        )
        par.run()
        return par.speedups([16]), ideal_speedups(gr05, [16])

    any_s, ideal_s = run_once(benchmark, kernel)
    # The heavy-tailed Kronecker analog hurts both the same way
    # (load imbalance), so they end up in the same neighborhood.
    assert abs(any_s[16] - ideal_s[16]) < 8.0
    benchmark.extra_info["gr05_speedups"] = (
        round(any_s[16], 2), round(ideal_s[16], 2)
    )
