"""Figure 12: Union-operation counts (anySCAN per-step vs pSCAN vs |V|)."""

from benchmarks.conftest import run_once
from repro.baselines import pscan
from repro.core import AnySCAN, AnyScanConfig
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle


def test_fig12_union_counts(benchmark, gr02):
    def kernel():
        stats = {}
        pscan(
            gr02, 5, 0.5,
            oracle=SimilarityOracle(gr02, SimilarityConfig()),
            stats=stats,
        )
        algo = AnySCAN(
            gr02,
            AnyScanConfig(
                mu=5, epsilon=0.5,
                alpha=max(gr02.num_vertices // 10, 64),
                beta=max(gr02.num_vertices // 10, 64),
                record_costs=False,
            ),
        )
        algo.run()
        return stats, algo.statistics()

    pscan_stats, any_stats = run_once(benchmark, kernel)
    total_any = int(any_stats["union_calls"])
    # The central scalability claim: far fewer unions than vertices.
    assert total_any < gr02.num_vertices
    # Most anySCAN unions run sequentially in Step 1, leaving few inside
    # critical sections (the paper's 7685/7844-style split).
    by_step = any_stats["union_calls_by_step"]
    critical = by_step.get("step2", 0) + by_step.get("step3", 0)
    assert critical <= total_any
    benchmark.extra_info["pscan_unions"] = int(pscan_stats["union_calls"])
    benchmark.extra_info["anyscan_unions"] = total_any
    benchmark.extra_info["anyscan_by_step"] = dict(by_step)
    benchmark.extra_info["vertices"] = gr02.num_vertices
