"""Quickstart: cluster a small graph with anySCAN.

Run with::

    python examples/quickstart.py
"""

from repro import AnySCAN, AnyScanConfig, Graph, VertexRole

# Two tightly-knit groups joined through a middleman (vertex 4), plus a
# loner (vertex 9).  Think of it as a tiny collaboration network.
EDGES = [
    # group A: a 4-clique
    (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
    # group B: another 4-clique
    (5, 6), (5, 7), (5, 8), (6, 7), (6, 8), (7, 8),
    # the middleman knows one person in each group
    (3, 4), (4, 5),
]


def main() -> None:
    graph = Graph.from_edges(10, EDGES)
    print(f"graph: {graph}")

    # μ=3: a core needs 3 structurally similar neighbors (incl. itself);
    # ε=0.6: neighbors must share ≥60% of their neighborhood structure.
    algo = AnySCAN(graph, AnyScanConfig(mu=3, epsilon=0.6))
    result = algo.run()

    print(f"\nresult: {result.summary()}\n")
    for cid, members in result.clusters().items():
        print(f"cluster {cid}: vertices {sorted(int(v) for v in members)}")

    for v in result.hubs:
        print(f"vertex {int(v)} is a HUB (bridges two clusters)")
    for v in result.outliers:
        print(f"vertex {int(v)} is an OUTLIER")

    roles = {r: [] for r in VertexRole}
    for v in range(graph.num_vertices):
        roles[VertexRole(int(result.roles[v]))].append(v)
    print(f"\ncores: {roles[VertexRole.CORE]}")
    print(f"borders: {roles[VertexRole.BORDER]}")

    stats = algo.statistics()
    print(
        f"\nwork: {stats['sigma_evaluations']} similarity evaluations, "
        f"{stats['num_supernodes']} super-nodes, "
        f"{stats['union_calls']} union operations"
    )


if __name__ == "__main__":
    main()
