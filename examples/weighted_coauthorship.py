"""Weighted graphs matter: a synthetic co-authorship network.

Definition 1 of the paper extends SCAN's structural similarity to edge
weights.  This example builds a co-authorship-style network where the tie
strength grows with repeated collaboration (modeled by triadic weights:
an edge inside a research group closes many triangles), then shows how
the weighted similarity recovers research groups that the unweighted
similarity misses at the same (μ, ε).

Run with::

    python examples/weighted_coauthorship.py
"""

import numpy as np

from repro import AnySCAN, AnyScanConfig, nmi
from repro.graph.generators import assign_triadic_weights
from repro.graph.generators.random_graphs import (
    planted_partition_graph,
    planted_membership,
)

GROUPS = [25, 25, 20, 20, 15]
MU, EPSILON = 4, 0.55


def cluster(graph):
    return AnySCAN(
        graph, AnyScanConfig(mu=MU, epsilon=EPSILON, record_costs=False)
    ).run()


def main() -> None:
    # Research groups collaborate internally a lot, externally a little.
    graph = planted_partition_graph(GROUPS, p_in=0.35, p_out=0.03, seed=11)
    truth = np.asarray(planted_membership(GROUPS))
    print(f"co-authorship network: {graph}")

    # Unweighted clustering.
    plain = cluster(graph)

    # Weighted: collaboration strength from shared co-authors.  Edges
    # inside groups close many triangles and get weights up to 4x the
    # cross-group edges.
    weighted_graph = assign_triadic_weights(
        graph, base=0.4, per_triangle=0.35, cap=4.0
    )
    weighted = cluster(weighted_graph)

    print(f"\nunweighted σ: {plain.summary()}")
    print(f"weighted σ:   {weighted.summary()}\n")

    for name, result in (("unweighted", plain), ("weighted", weighted)):
        members = result.clustered_vertices
        coverage = members.shape[0] / graph.num_vertices
        score = nmi(truth, result.labels)
        print(
            f"{name:<10s} coverage {coverage:5.1%}  "
            f"NMI vs research groups {score:.3f}"
        )

    gain = nmi(truth, weighted.labels) - nmi(truth, plain.labels)
    print(
        f"\nweighting the ties changed NMI by {gain:+.3f} at the same "
        f"(μ={MU}, ε={EPSILON}) — the weighted extension is not cosmetic."
    )

    # Show the strongest and weakest ties for intuition.
    weights = [
        (w, u, v) for u, v, w in weighted_graph.edges()
    ]
    weights.sort(reverse=True)
    strongest = weights[0]
    weakest = weights[-1]
    print(
        f"strongest tie: {strongest[1]}–{strongest[2]} "
        f"(weight {strongest[0]:.2f}, same group: "
        f"{truth[strongest[1]] == truth[strongest[2]]})"
    )
    print(
        f"weakest tie:   {weakest[1]}–{weakest[2]} "
        f"(weight {weakest[0]:.2f}, same group: "
        f"{truth[weakest[1]] == truth[weakest[2]]})"
    )


if __name__ == "__main__":
    main()
