"""Interactive parameter exploration: finding (μ, ε) without re-running.

SCAN's parameters are notoriously hard to pick.  The
:class:`~repro.core.explorer.ParameterExplorer` pays the O(|E|)
similarity cost once and then answers any (μ, ε) query in milliseconds —
the workflow a practitioner would wrap in an ε slider.

Run with::

    python examples/parameter_exploration.py
"""

import time

from repro import ParameterExplorer, quality_report
from repro.graph.generators import LFRParams, lfr_graph


def main() -> None:
    graph, _ = lfr_graph(
        LFRParams(
            n=2000, average_degree=14, max_degree=60, mixing=0.2, seed=17
        )
    )
    print(f"graph: {graph}\n")

    started = time.perf_counter()
    explorer = ParameterExplorer(graph)
    print(
        f"one-time σ table: {graph.num_edges:,d} evaluations in "
        f"{time.perf_counter() - started:.2f}s "
        f"({explorer.precompute_cost:,.0f} work units)\n"
    )

    # The ε slider stops for μ=5: where does the core population change?
    candidates = explorer.epsilon_candidates(5)
    print(f"μ=5 has {len(candidates)} distinct ε thresholds; a sample:")
    step = max(len(candidates) // 8, 1)
    for eps, cores in candidates[::step][:8]:
        print(f"  ε ≤ {eps:.3f}: {cores:5d} cores")

    suggestion = explorer.suggest_epsilon(5, min_cores=50)
    print(f"\nsuggested ε (modularity-maximizing probe): {suggestion:.3f}\n")

    # Sweep a grid and score each clustering intrinsically.
    print(f"{'μ':>3s} {'ε':>5s} {'clusters':>9s} {'coverage':>9s} "
          f"{'modularity':>11s} {'ms/query':>9s}")
    for mu in (3, 5, 8):
        for eps in (0.3, 0.45, suggestion, 0.7):
            started = time.perf_counter()
            result = explorer.clustering_at(mu, eps)
            elapsed_ms = 1000 * (time.perf_counter() - started)
            report = quality_report(graph, result)
            print(
                f"{mu:3d} {eps:5.2f} {result.num_clusters:9d} "
                f"{report['clustered_fraction']:9.1%} "
                f"{report['modularity']:11.3f} {elapsed_ms:9.1f}"
            )

    print(
        "\nevery query above reused the σ table — zero additional "
        "similarity evaluations "
        f"(still {explorer.oracle.counters.sigma_evaluations:,d})."
    )

    # The whole ε axis at once: the dendrogram view.
    from repro import EpsilonHierarchy

    hierarchy = EpsilonHierarchy(graph, mu=5, explorer=explorer)
    print(
        f"\nε-dendrogram: {hierarchy.num_nodes:,d} cluster nodes across "
        f"{hierarchy.levels().shape[0]:,d} change levels"
    )
    print("most persistent clusters (birth ε, persistence, size):")
    for node_id, birth, persistence, size in hierarchy.persistence_table(
        min_size=10
    )[:5]:
        print(
            f"  node {node_id:5d}: born at ε={birth:.3f}, persists "
            f"{persistence:.3f}, {size} cores"
        )
    stable_eps = hierarchy.suggest_cut(min_clusters=5)
    print(
        f"stability-plateau cut: ε={stable_eps:.3f} → "
        f"{hierarchy.cut(stable_eps).num_clusters} clusters"
    )


if __name__ == "__main__":
    main()
