"""Clustering a growing graph: incremental SCAN over an edge stream.

Social networks change continuously (the DENGRAPH motivation the paper
cites); re-clustering from scratch after every edge is wasteful.
:class:`~repro.dynamic.scan.DynamicSCAN` repairs only the σ values an
update touches — O(deg(u) + deg(v)) per edge — and relabels on demand.

Run with::

    python examples/dynamic_stream.py
"""

import numpy as np

from repro import AdjacencyGraph, DynamicSCAN, scan
from repro.graph.generators import LFRParams, lfr_graph

MU, EPSILON = 3, 0.5


def main() -> None:
    # The "future" network whose edges arrive one by one.
    final_graph, _ = lfr_graph(
        LFRParams(
            n=800, average_degree=12, max_degree=40, mixing=0.15, seed=23
        )
    )
    edges = list(final_graph.edges())
    rng = np.random.default_rng(23)
    rng.shuffle(edges)
    print(
        f"streaming {len(edges):,d} edges into an empty "
        f"{final_graph.num_vertices}-vertex graph\n"
    )

    dyn = DynamicSCAN(
        AdjacencyGraph(final_graph.num_vertices), MU, EPSILON
    )
    checkpoints = {len(edges) * k // 5 for k in range(1, 6)}
    for i, (u, v, w) in enumerate(edges, start=1):
        dyn.add_edge(u, v, w)
        if i in checkpoints:
            result = dyn.clustering()
            print(
                f"after {i:6,d} edges: {result.num_clusters:4d} clusters, "
                f"{result.clustered_vertices.shape[0]:4d} members, "
                f"σ recomputations so far: {dyn.sigma_recomputations:,d}"
            )

    # Costs: incremental vs. re-running batch SCAN at every checkpoint.
    snapshot = dyn.graph.to_csr()
    batch = scan(snapshot, MU, EPSILON)
    incremental = dyn.clustering()
    print(f"\nfinal incremental: {incremental.summary()}")
    print(f"final batch SCAN : {batch.summary()}")
    print(
        f"\nincremental σ work for the whole stream: "
        f"{dyn.sigma_recomputations:,d} evaluations"
    )
    per_batch = 2 * snapshot.num_edges
    print(
        f"one batch run evaluates ≈ {per_batch:,d}; the incremental "
        "structure kept an up-to-date clustering available after EVERY "
        f"edge — re-running batch SCAN {len(edges):,d} times would cost "
        f"≈ {len(edges) * per_batch:,d} evaluations "
        f"({len(edges) * per_batch / max(dyn.sigma_recomputations, 1):,.0f}x "
        "more)."
    )

    # A burst of departures: remove the 100 most recent edges again.
    for u, v, _ in edges[-100:]:
        dyn.remove_edge(u, v)
    result = dyn.clustering()
    print(f"\nafter 100 removals: {result.summary()}")


if __name__ == "__main__":
    main()
