"""Community detection in a synthetic social network.

Builds a planted-partition "friend graph" with weighted ties (stronger
inside communities — the weighted-similarity extension of Definition 1),
clusters it with every algorithm in the repository, verifies they agree,
and interprets the hubs and outliers SCAN is famous for.

Run with::

    python examples/social_communities.py
"""

import numpy as np

from repro import (
    AnySCAN,
    AnyScanConfig,
    SimilarityConfig,
    SimilarityOracle,
    equivalent_clusterings,
    nmi,
    pscan,
    scan,
    scan_b,
    scanpp,
)
from repro.graph.generators import assign_community_weights
from repro.graph.generators.random_graphs import (
    planted_partition_graph,
    planted_membership,
)

COMMUNITY_SIZES = [60, 45, 45, 30]
MU, EPSILON = 4, 0.5


def main() -> None:
    # Four friend groups; ties inside a group are common (p=0.25), across
    # groups rare (p=0.01).
    graph = planted_partition_graph(
        COMMUNITY_SIZES, p_in=0.4, p_out=0.01, seed=7
    )
    truth = np.asarray(planted_membership(COMMUNITY_SIZES))
    # Tie strength: close friends (same community) get weight ~1.0,
    # acquaintances ~0.3.
    graph = assign_community_weights(
        graph, truth, intra=1.0, inter=0.3, jitter=0.1, seed=7
    )
    print(f"social network: {graph}")
    print(f"planted communities: {len(COMMUNITY_SIZES)}\n")

    # Run the full algorithm lineup.
    results = {
        "SCAN": scan(graph, MU, EPSILON, seed=1),
        "SCAN-B": scan_b(graph, MU, EPSILON, seed=2),
        "pSCAN": pscan(graph, MU, EPSILON),
        "SCAN++": scanpp(graph, MU, EPSILON, seed=3),
        "anySCAN": AnySCAN(
            graph,
            AnyScanConfig(mu=MU, epsilon=EPSILON, record_costs=False),
        ).run(),
    }

    oracle = SimilarityOracle(graph, SimilarityConfig())
    reference = results["SCAN"]
    for name, result in results.items():
        same = equivalent_clusterings(
            graph, oracle, reference, result, MU, EPSILON
        )
        score = nmi(truth, result.labels)
        print(
            f"{name:<8s} {result.num_clusters} clusters, "
            f"NMI vs planted truth: {score:.3f}, "
            f"SCAN-equivalent: {same}"
        )

    best = results["anySCAN"]
    print(f"\nanySCAN detail: {best.summary()}")
    for cid, members in sorted(best.clusters().items()):
        planted = np.bincount(truth[members]).argmax()
        purity = float(np.mean(truth[members] == planted))
        print(
            f"  cluster {cid}: {len(members):3d} people, "
            f"{purity:.0%} from planted group {planted}"
        )
    if best.hubs.shape[0]:
        print(
            f"\nhubs (people bridging several groups): "
            f"{[int(v) for v in best.hubs][:10]}"
        )
    if best.outliers.shape[0]:
        print(
            f"outliers (loosely connected people): "
            f"{[int(v) for v in best.outliers][:10]}"
        )


if __name__ == "__main__":
    main()
