"""Interactive anytime clustering: suspend, inspect, resume.

The paper's headline scenario — a graph too expensive to cluster in one
sitting.  We run anySCAN under a small work budget, look at the
best-so-far clusters, then resume until satisfied, and finally compare
the intermediate quality against SCAN's exact result (the Figure 5
curve).

Run with::

    python examples/interactive_anytime.py
"""

from repro import AnySCAN, AnyScanConfig, AnytimeRunner, nmi, scan
from repro.graph.generators import LFRParams, lfr_graph


def main() -> None:
    print("generating an LFR benchmark graph (5,000 vertices)...")
    graph, _ = lfr_graph(
        LFRParams(
            n=5000, average_degree=14, max_degree=80, mixing=0.25, seed=42
        )
    )
    print(f"graph: {graph}\n")

    algo = AnySCAN(
        graph,
        AnyScanConfig(
            mu=5, epsilon=0.5, alpha=400, beta=400, record_costs=False
        ),
    )
    runner = AnytimeRunner(algo)

    # --- phase 1: a quick look under a tight budget -------------------
    snap = runner.run_until(max_iterations=4)
    print(
        f"after {snap.iteration + 1} iterations "
        f"({snap.work_units:,.0f} work units):"
    )
    print(f"  {snap.num_clusters} clusters so far, "
          f"{snap.assigned_fraction:.0%} of vertices assigned")
    print("  ... suspending here: a user could inspect these clusters\n")

    # --- phase 2: resume until the clustering stabilizes --------------
    prev_clusters = snap.num_clusters
    stable_rounds = 0

    def stable(s):
        nonlocal prev_clusters, stable_rounds
        stable_rounds = stable_rounds + 1 if s.num_clusters == prev_clusters else 0
        prev_clusters = s.num_clusters
        return stable_rounds >= 5

    snap = runner.run_until(stop_when=stable)
    print(
        f"resumed; stopping once the cluster count is stable: "
        f"{snap.num_clusters} clusters after {snap.iteration + 1} iterations"
    )

    # --- phase 3: drain to the exact result ---------------------------
    final = runner.finish()
    print(
        f"final (exact) result: {final.num_clusters} clusters after "
        f"{final.iteration + 1} iterations, "
        f"{final.work_units:,.0f} work units\n"
    )

    # --- how good were the intermediate results? ----------------------
    print("scoring intermediate snapshots against SCAN (NMI):")
    reference = scan(graph, 5, 0.5)
    fresh = AnytimeRunner(
        AnySCAN(
            graph,
            AnyScanConfig(
                mu=5, epsilon=0.5, alpha=400, beta=400, record_costs=False
            ),
        )
    )
    trace = fresh.trace_against(reference.labels, score_every=2)
    for point in trace:
        budget = point.work_units / trace.total_work
        bar = "#" * int(40 * point.quality)
        print(
            f"  {point.step:<12s} {budget:6.1%} of work  "
            f"NMI {point.quality:5.3f} {bar}"
        )
    half = trace.first_reaching(0.5)
    if half is not None:
        print(
            f"\nNMI ≥ 0.5 was available after only "
            f"{half.work_units / trace.total_work:.0%} of the total work — "
            "stop there and bank the savings."
        )


if __name__ == "__main__":
    main()
