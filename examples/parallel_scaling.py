"""Multicore scalability: anySCAN vs the ideal parallel algorithm.

Runs anySCAN once (recording per-task costs), replays it on simulated
machines with 1–16 threads, and prints the Figure 10/11 numbers:
cumulative runtime per anytime iteration, final speedups, and the gap to
the ideal similarity-only algorithm.

Run with::

    python examples/parallel_scaling.py
"""

from repro import AnyScanConfig, MachineSpec, ParallelAnySCAN, ideal_speedups
from repro.graph.generators import LFRParams, lfr_graph

THREADS = [1, 2, 4, 8, 16]


def main() -> None:
    print("generating a 4,000-vertex LFR graph...")
    graph, _ = lfr_graph(
        LFRParams(
            n=4000, average_degree=20, max_degree=120, mixing=0.3, seed=3
        )
    )
    print(f"graph: {graph}\n")

    par = ParallelAnySCAN(
        graph,
        AnyScanConfig(mu=5, epsilon=0.5, alpha=500, beta=500),
        machine=MachineSpec(threads=1, cores_per_socket=8, numa_penalty=0.1),
    )
    result = par.run()
    print(f"clustering: {result.summary()}")
    print(
        f"sequential fraction of the work: "
        f"{par.sequential_fraction():.2%} (the paper: negligible)\n"
    )

    # Figure 10 left: cumulative simulated time per anytime iteration.
    reports = {t: par.report(t) for t in THREADS}
    header = "iter  step          " + "".join(f"  t={t:<9d}" for t in THREADS)
    print(header)
    for i, step in enumerate(reports[1].steps):
        cells = "".join(
            f"  {reports[t].time_at_iteration(i):<10,.0f}" for t in THREADS
        )
        print(f"{i:<4d}  {step:<12s}{cells}")

    # Figure 10 right: final speedups.
    speedups = par.speedups(THREADS)
    print("\nfinal speedup over 1 thread:")
    for t in THREADS:
        bar = "#" * int(2 * speedups[t])
        print(f"  {t:2d} threads: {speedups[t]:5.2f}x {bar}")

    # Figure 11: the ideal algorithm as the upper bound.
    ideal = ideal_speedups(graph, THREADS[1:])
    print("\nanySCAN vs the ideal (similarity-only) parallel algorithm:")
    for t in THREADS[1:]:
        print(
            f"  {t:2d} threads: anySCAN {speedups[t]:5.2f}x, "
            f"ideal {ideal[t]:5.2f}x "
            f"({speedups[t] / ideal[t]:.0%} of ideal)"
        )


if __name__ == "__main__":
    main()
