"""Smoke + shape tests for every experiment in the registry (quick mode).

Each experiment must run end-to-end on tiny datasets and exhibit the
paper's qualitative shape where one is asserted cheaply.
"""

import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.errors import ExperimentError

ALL_IDS = sorted(EXPERIMENTS)


class TestRegistry:
    def test_every_table_and_figure_covered(self):
        expected = {"tab1", "tab2"} | {f"fig{i}" for i in range(5, 15)}
        assert expected <= set(EXPERIMENTS)

    def test_ablations_present(self):
        assert {"ablation_pruning", "ablation_sorting",
                "ablation_schedule"} <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")


@pytest.mark.parametrize("exp_id", ALL_IDS)
def test_experiment_runs_quick(exp_id):
    results = run_experiment(exp_id, quick=True)
    assert results, exp_id
    for result in results:
        assert result.rows, f"{exp_id}: empty table {result.title}"
        text = result.render()
        assert result.exp_id in text


class TestShapes:
    @pytest.fixture(scope="class")
    def fig7(self):
        return run_experiment("fig7", quick=True)

    def test_fig7_scan_does_most_work(self, fig7):
        counts = fig7[0]
        for row in counts.rows:
            by_name = dict(zip(counts.headers, row))
            assert by_name["SCAN"] >= by_name["pSCAN"]
            assert by_name["SCAN"] >= by_name["anySCAN"]

    def test_fig12_unions_below_vertices(self):
        panel = run_experiment("fig12", quick=True)[0]
        for row in panel.rows:
            by_name = dict(zip(panel.headers, row))
            assert by_name["anySCAN unions"] <= by_name["|V|"]

    def test_fig10_speedups_monotone(self):
        results = run_experiment("fig10", quick=True)
        final = results[-1]
        for row in final.rows:
            speedups = list(row[1:])
            assert all(
                b >= a - 1e-9 for a, b in zip(speedups, speedups[1:])
            )

    def test_fig11_anyscan_below_ideal_plus_margin(self):
        panel = run_experiment("fig11", quick=True)[0]
        rows = panel.rows
        for i in range(0, len(rows), 2):
            any_row, ideal_row = rows[i], rows[i + 1]
            assert any_row[1] == "anySCAN" and ideal_row[1] == "ideal"
            for a, b in zip(any_row[2:], ideal_row[2:]):
                assert a <= b + 1.0

    def test_ablation_pruning_saves_work(self):
        panel = run_experiment("ablation_pruning", quick=True)[0]
        by_dataset = {}
        for row in panel.rows:
            by_dataset.setdefault(row[0], {})[row[1]] = row[2]
        for name, entry in by_dataset.items():
            assert entry["on"] <= entry["off"] * 1.05, name
