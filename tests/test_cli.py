"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph.io import save_edge_list


@pytest.fixture()
def graph_file(lfr_small, tmp_path):
    path = tmp_path / "graph.txt"
    save_edge_list(lfr_small, path)
    return str(path)


class TestBasicRuns:
    def test_default_anyscan(self, graph_file, capsys):
        assert main([graph_file, "--mu", "4", "--epsilon", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "clusters" in out

    @pytest.mark.parametrize("alg", ["scan", "scan-b", "pscan", "scanpp"])
    def test_batch_algorithms(self, graph_file, capsys, alg):
        assert main(
            [graph_file, "--mu", "4", "--algorithm", alg]
        ) == 0
        assert "clusters" in capsys.readouterr().out

    def test_all_algorithms_same_cluster_count(self, graph_file, capsys):
        counts = []
        for alg in ("anyscan", "scan", "pscan"):
            main([graph_file, "--mu", "4", "--algorithm", alg])
            out = capsys.readouterr().out
            counts.append(int(out.split(" clusters")[0].split()[-1]))
        assert len(set(counts)) == 1


class TestOutput:
    def test_labels_file_written(self, graph_file, tmp_path, capsys):
        out_file = tmp_path / "labels.txt"
        assert main(
            [graph_file, "--mu", "4", "--output", str(out_file)]
        ) == 0
        lines = out_file.read_text().strip().splitlines()
        assert lines[0].startswith("#")
        assert len(lines) == 301  # 300 vertices + header

    def test_progress_lines(self, graph_file, capsys):
        assert main([graph_file, "--mu", "4", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "iter" in err


class TestBudgets:
    def test_work_budget_stops_early(self, graph_file, capsys):
        assert main(
            [graph_file, "--mu", "4", "--budget-work", "100"]
        ) == 0
        err = capsys.readouterr().err
        assert "stopped early" in err or "approximate" in err

    def test_budget_with_batch_algorithm_rejected(self, graph_file, capsys):
        code = main(
            [
                graph_file, "--algorithm", "scan",
                "--budget-work", "100",
            ]
        )
        assert code == 2

    def test_huge_budget_finishes(self, graph_file, capsys):
        assert main(
            [graph_file, "--mu", "4", "--budget-work", "1e12"]
        ) == 0
        err = capsys.readouterr().err
        assert "stopped early" not in err


class TestWeighted:
    def test_weighted_load(self, weighted_triangle, tmp_path, capsys):
        path = tmp_path / "wt.txt"
        save_edge_list(weighted_triangle, path, weighted=True)
        assert main(
            [str(path), "--weighted", "--mu", "2", "--algorithm", "scan"]
        ) == 0
        assert "clusters" in capsys.readouterr().out


class TestBackendFlag:
    def _summary(self, capsys):
        captured = capsys.readouterr()
        return captured.out, captured.err

    def test_sequential_and_parallel_agree(self, graph_file, capsys):
        outputs = []
        for backend in ("sequential", "thread", "process", "auto"):
            args = [graph_file, "--mu", "4", "--algorithm", "scan"]
            if backend != "sequential":
                args += ["--backend", backend, "--workers", "2"]
            assert main(args) == 0
            outputs.append(self._summary(capsys)[0])
        assert len(set(outputs)) == 1, outputs

    def test_resolved_kind_reported(self, graph_file, capsys):
        assert main(
            [graph_file, "--algorithm", "scan", "--backend", "thread"]
        ) == 0
        err = self._summary(capsys)[1]
        assert "resolved to thread" in err

    def test_forced_fallback_path(self, graph_file, capsys, monkeypatch):
        from repro.parallel.processes import FORCE_FALLBACK_ENV

        monkeypatch.setenv(FORCE_FALLBACK_ENV, "1")
        assert main(
            [graph_file, "--mu", "4", "--algorithm", "scan",
             "--backend", "process"]
        ) == 0
        out, err = self._summary(capsys)
        assert "clusters" in out
        assert "resolved to thread" in err  # fallback engaged and reported

    def test_backend_with_non_scan_algorithm_rejected(self, graph_file, capsys):
        assert main([graph_file, "--backend", "process"]) == 2
        assert main(
            [graph_file, "--algorithm", "pscan", "--backend", "thread"]
        ) == 2

    def test_backend_with_budget_rejected(self, graph_file, capsys):
        code = main(
            [graph_file, "--algorithm", "scan", "--backend", "thread",
             "--budget-work", "100"]
        )
        assert code == 2

    def test_labels_written_from_parallel_run(self, graph_file, tmp_path, capsys):
        out_file = tmp_path / "labels.txt"
        assert main(
            [graph_file, "--mu", "4", "--algorithm", "scan",
             "--backend", "process", "--workers", "2",
             "--output", str(out_file)]
        ) == 0
        assert len(out_file.read_text().strip().splitlines()) == 301
