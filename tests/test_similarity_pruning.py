"""Tests for the Lemma 5 pruning bound and early-exit threshold tests."""

import numpy as np
import pytest

from repro.graph.generators.random_graphs import gnm_random_graph
from repro.graph.generators.weights import assign_random_weights
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle


class TestLemma5Bound:
    def _check_soundness(self, graph):
        """The bound must never be below the true numerator."""
        oracle = SimilarityOracle(graph, SimilarityConfig(pruning=False))
        for u, v, _ in graph.edges():
            sigma = oracle.sigma_unrecorded(u, v)
            numerator = sigma * float(
                np.sqrt(oracle.lengths[u] * oracle.lengths[v])
            )
            assert oracle.lemma5_bound(u, v) >= numerator - 1e-9

    def test_sound_on_unweighted(self, karate):
        self._check_soundness(karate)

    def test_sound_on_weighted(self, karate):
        self._check_soundness(assign_random_weights(karate, seed=1))

    def test_sound_with_large_weights(self, karate):
        # Weights > 1 break the paper's literal bound; ours must hold.
        heavy = assign_random_weights(karate, low=1.0, high=5.0, seed=2)
        self._check_soundness(heavy)

    def test_sound_on_random_graphs(self):
        for seed in range(3):
            g = gnm_random_graph(60, 300, seed=seed)
            g = assign_random_weights(g, low=0.1, high=3.0, seed=seed)
            self._check_soundness(g)


class TestSimilarAgreement:
    @pytest.mark.parametrize("epsilon", [0.2, 0.5, 0.8])
    def test_pruned_similar_matches_exact(self, karate, epsilon):
        exact = SimilarityOracle(karate, SimilarityConfig(pruning=False))
        pruned = SimilarityOracle(karate, SimilarityConfig(pruning=True))
        for u, v, _ in karate.edges():
            want = exact.sigma_unrecorded(u, v) >= epsilon
            assert pruned.similar(u, v, epsilon) == want

    def test_pruned_similar_matches_exact_weighted(self, karate):
        heavy = assign_random_weights(karate, low=0.2, high=4.0, seed=3)
        exact = SimilarityOracle(heavy, SimilarityConfig(pruning=False))
        pruned = SimilarityOracle(heavy, SimilarityConfig(pruning=True))
        for u, v, _ in heavy.edges():
            want = exact.sigma_unrecorded(u, v) >= 0.5
            assert pruned.similar(u, v, 0.5) == want

    def test_nonadjacent_pairs(self, karate):
        pruned = SimilarityOracle(karate, SimilarityConfig(pruning=True))
        exact = SimilarityOracle(karate, SimilarityConfig(pruning=False))
        rng = np.random.default_rng(4)
        checked = 0
        while checked < 20:
            u, v = (int(x) for x in rng.integers(0, 34, size=2))
            if u == v or karate.has_edge(u, v):
                continue
            checked += 1
            want = exact.sigma_unrecorded(u, v) >= 0.4
            assert pruned.similar(u, v, 0.4) == want


class TestPruningEffort:
    def test_high_epsilon_prunes_more(self):
        g = gnm_random_graph(150, 700, seed=5)
        low = SimilarityOracle(g, SimilarityConfig(pruning=True))
        high = SimilarityOracle(g, SimilarityConfig(pruning=True))
        for u, v, _ in g.edges():
            low.similar(u, v, 0.1)
            high.similar(u, v, 0.95)
        assert high.counters.pruned_lemma5 >= low.counters.pruned_lemma5

    @pytest.mark.parametrize("epsilon", [0.5, 0.8])
    def test_pruning_never_costs_more_than_exact(self, epsilon):
        g = gnm_random_graph(150, 700, seed=5)
        pruned = SimilarityOracle(g, SimilarityConfig(pruning=True))
        exact = SimilarityOracle(g, SimilarityConfig(pruning=False))
        for u, v, _ in g.edges():
            pruned.similar(u, v, epsilon)
            exact.similar(u, v, epsilon)
        assert pruned.counters.work_units <= exact.counters.work_units

    def test_prunes_cost_one_unit(self, karate):
        oracle = SimilarityOracle(karate, SimilarityConfig(pruning=True))
        # ε=1.0 with l_p ≥ 2 triggers the filter on weak pairs.
        for u, v, _ in karate.edges():
            oracle.similar(u, v, 1.0)
        c = oracle.counters
        assert c.pruned_lemma5 > 0
        # Every pruned test contributed exactly one unit.
        assert c.work_units < karate.num_edges * max(karate.degrees) * 2

    def test_early_exit_recorded(self, caveman):
        oracle = SimilarityOracle(caveman, SimilarityConfig(pruning=True))
        for u, v, _ in caveman.edges():
            oracle.similar(u, v, 0.2)  # low threshold: crossings are early
        assert oracle.counters.early_exits > 0

    def test_disabled_pruning_never_prunes(self, karate):
        oracle = SimilarityOracle(karate, SimilarityConfig(pruning=False))
        for u, v, _ in karate.edges():
            oracle.similar(u, v, 0.9)
        assert oracle.counters.pruned_lemma5 == 0
        assert oracle.counters.early_exits == 0
