"""anySCAN exactness (Lemma 4): final result ≡ SCAN, across everything.

The randomized sweep varies graph family, weights, μ, ε, block sizes,
sorting, and similarity semantics; each run is compared with the
three-part SCAN-equivalence of :mod:`repro.metrics.comparison`.
"""

import numpy as np
import pytest

from repro.baselines import scan
from repro.core import AnySCAN, AnyScanConfig
from repro.graph.generators.lfr import LFRParams, lfr_graph
from repro.graph.generators.random_graphs import (
    gnm_random_graph,
    relaxed_caveman_graph,
    watts_strogatz_graph,
)
from repro.graph.generators.rmat import rmat_graph
from repro.graph.generators.weights import (
    assign_random_weights,
    assign_triadic_weights,
)
from repro.metrics.comparison import explain_difference
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle


def assert_exact(graph, mu, eps, *, alpha=48, beta=33, seed=0,
                 similarity=None, sort_candidates=True):
    similarity = similarity or SimilarityConfig()
    oracle = SimilarityOracle(graph, similarity)
    reference = scan(
        graph, mu, eps,
        oracle=SimilarityOracle(graph, similarity), seed=seed,
    )
    algo = AnySCAN(
        graph,
        AnyScanConfig(
            mu=mu, epsilon=eps, alpha=alpha, beta=beta, seed=seed,
            similarity=similarity, sort_candidates=sort_candidates,
            record_costs=False,
        ),
    )
    result = algo.run()
    problems = explain_difference(graph, oracle, reference, result, mu, eps)
    assert not problems, problems


class TestFixtures:
    @pytest.mark.parametrize(
        "fixture", ["karate", "triangle", "two_triangles_bridge",
                    "path_graph", "star_graph", "caveman",
                    "lfr_small", "random_sparse"]
    )
    def test_fixture_graphs(self, request, fixture):
        graph = request.getfixturevalue(fixture)
        assert_exact(graph, 3, 0.5)

    @pytest.mark.parametrize("mu", [2, 3, 5, 8])
    def test_mu_grid_karate(self, karate, mu):
        assert_exact(karate, mu, 0.5)

    @pytest.mark.parametrize("eps", [0.2, 0.4, 0.6, 0.8, 1.0])
    def test_eps_grid_karate(self, karate, eps):
        assert_exact(karate, 3, eps)


class TestBlockSizes:
    @pytest.mark.parametrize("alpha,beta", [(1, 1), (2, 7), (16, 16),
                                            (1000, 1000)])
    def test_extreme_blocks(self, karate, alpha, beta):
        assert_exact(karate, 3, 0.5, alpha=alpha, beta=beta)

    def test_block_of_one_on_lfr(self, lfr_small):
        assert_exact(lfr_small, 4, 0.5, alpha=1, beta=1)


class TestSortingOff:
    def test_unsorted_still_exact(self, lfr_small):
        assert_exact(lfr_small, 4, 0.5, sort_candidates=False)

    def test_unsorted_caveman(self, caveman):
        assert_exact(caveman, 4, 0.6, sort_candidates=False)


class TestSimilarityModes:
    def test_pruning_off(self, karate):
        assert_exact(
            karate, 3, 0.5, similarity=SimilarityConfig(pruning=False)
        )

    def test_open_neighborhoods(self, karate):
        assert_exact(
            karate, 3, 0.4,
            similarity=SimilarityConfig(closed=False, count_self=False),
        )

    def test_count_self_off(self, karate):
        assert_exact(
            karate, 3, 0.5, similarity=SimilarityConfig(count_self=False)
        )


@pytest.mark.parametrize("seed", range(6))
class TestRandomizedFamilies:
    def test_gnm(self, seed):
        graph = gnm_random_graph(130, 650, seed=seed)
        assert_exact(graph, 4, 0.45, seed=seed)

    def test_lfr(self, seed):
        graph, _ = lfr_graph(
            LFRParams(n=240, average_degree=9, max_degree=26,
                      mixing=0.3, seed=seed)
        )
        assert_exact(graph, 3, 0.5, seed=seed, alpha=29, beta=17)

    def test_watts_strogatz(self, seed):
        graph = watts_strogatz_graph(150, 6, 0.2, seed=seed)
        assert_exact(graph, 3, 0.55, seed=seed)

    def test_rmat(self, seed):
        graph = rmat_graph(7, 6, seed=seed)
        assert_exact(graph, 3, 0.4, seed=seed)

    def test_random_weights(self, seed):
        graph = relaxed_caveman_graph(9, 7, 0.2, seed=seed)
        graph = assign_random_weights(graph, low=0.2, high=3.0, seed=seed)
        assert_exact(graph, 4, 0.5, seed=seed)

    def test_triadic_weights(self, seed):
        graph = gnm_random_graph(100, 500, seed=seed)
        graph = assign_triadic_weights(graph)
        assert_exact(graph, 3, 0.5, seed=seed)


class TestStress:
    @pytest.mark.parametrize("seed", range(3))
    def test_medium_lfr_tight_blocks(self, seed):
        graph, _ = lfr_graph(
            LFRParams(n=500, average_degree=12, max_degree=50,
                      mixing=0.35, seed=100 + seed)
        )
        assert_exact(graph, 5, 0.5, alpha=23, beta=11, seed=seed)

    def test_disconnected_components(self):
        # Two separate caveman worlds in one graph.
        from repro.graph.builder import GraphBuilder

        a = relaxed_caveman_graph(4, 6, 0.1, seed=1)
        builder = GraphBuilder(2 * a.num_vertices)
        for u, v, w in a.edges():
            builder.add_edge(u, v, w)
            builder.add_edge(u + a.num_vertices, v + a.num_vertices, w)
        graph = builder.build()
        assert_exact(graph, 3, 0.6)
