"""Property-based tests (hypothesis) on the core data structures.

Each property pins an invariant the algorithms rely on: union-find
equivalence-relation laws, Figure 3 reachability, σ symmetry/range,
Lemma 5 soundness, NMI metric axioms, builder round-trips, and anySCAN ≡
SCAN on arbitrary small graphs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import scan
from repro.core import AnySCAN, AnyScanConfig
from repro.graph.builder import GraphBuilder
from repro.metrics.comparison import explain_difference
from repro.metrics.nmi import ari, nmi
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.structures.disjoint_set import DisjointSet
from repro.structures.state import ALLOWED_TRANSITIONS, VertexState
from tests.conftest import brute_force_sigma

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

edge_lists = st.lists(
    st.tuples(st.integers(0, 19), st.integers(0, 19)).filter(
        lambda e: e[0] != e[1]
    ),
    min_size=0,
    max_size=60,
)


def build_graph(edges, weights=None):
    builder = GraphBuilder(20)
    for i, (u, v) in enumerate(edges):
        w = 1.0 if weights is None else weights[i % len(weights)]
        builder.add_edge(u, v, w)
    return builder.build(dedup="ignore")


# ----------------------------------------------------------------------
# disjoint set
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=40
    )
)
def test_dsu_is_equivalence_relation(ops):
    dsu = DisjointSet(15)
    merged = {i: {i} for i in range(15)}
    for a, b in ops:
        dsu.union(a, b)
        union = merged[dsu.find(a)] | merged[dsu.find(b)]
        for x in union:
            merged[x] = union
    # find is consistent: same set <-> same root.
    for a in range(15):
        for b in merged[a]:
            assert dsu.same(a, b)
    roots = {dsu.find(i) for i in range(15)}
    assert len(roots) == dsu.num_components()


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=25
    )
)
def test_dsu_effective_unions_count_components(ops):
    dsu = DisjointSet(10)
    for a, b in ops:
        dsu.union(a, b)
    assert dsu.num_components() == 10 - dsu.effective_unions


# ----------------------------------------------------------------------
# state machine schema
# ----------------------------------------------------------------------
def test_schema_is_a_dag():
    # Figure 3 has no cycles: repeated transitions must terminate.
    for start in VertexState:
        seen = {start}
        frontier = {start}
        for _ in range(len(VertexState) + 1):
            frontier = {
                t for s in frontier for t in ALLOWED_TRANSITIONS[s]
            }
            if not frontier:
                break
            assert not (frontier & {start}), f"cycle through {start}"
            seen |= frontier


def test_schema_all_paths_end_terminal():
    terminals = {s for s, ts in ALLOWED_TRANSITIONS.items() if not ts}
    assert terminals == {
        VertexState.PROCESSED_BORDER,
        VertexState.PROCESSED_CORE,
    }
    # Every state reaches a terminal.
    for start in VertexState:
        frontier = {start}
        reached = set(frontier)
        while frontier:
            frontier = {
                t for s in frontier for t in ALLOWED_TRANSITIONS[s]
            } - reached
            reached |= frontier
        assert reached & (terminals | {VertexState.PROCESSED_NOISE})


# ----------------------------------------------------------------------
# similarity
# ----------------------------------------------------------------------
@settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(edges=edge_lists, data=st.data())
def test_sigma_symmetric_bounded_and_correct(edges, data):
    graph = build_graph(edges)
    if graph.num_vertices < 2:
        return
    oracle = SimilarityOracle(graph)
    p = data.draw(st.integers(0, graph.num_vertices - 1))
    q = data.draw(st.integers(0, graph.num_vertices - 1))
    s_pq = oracle.sigma_unrecorded(p, q)
    s_qp = oracle.sigma_unrecorded(q, p)
    assert s_pq == pytest.approx(s_qp)
    assert -1e-9 <= s_pq <= 1.0 + 1e-9
    assert s_pq == pytest.approx(brute_force_sigma(graph, p, q))


@settings(
    max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    edges=edge_lists,
    weights=st.lists(
        st.floats(0.1, 5.0, allow_nan=False), min_size=1, max_size=10
    ),
    epsilon=st.floats(0.05, 0.95),
)
def test_pruned_threshold_test_is_exact(edges, weights, epsilon):
    graph = build_graph(edges, weights)
    pruned = SimilarityOracle(graph, SimilarityConfig(pruning=True))
    exact = SimilarityOracle(graph, SimilarityConfig(pruning=False))
    for u, v, _ in graph.edges():
        assert pruned.similar(u, v, epsilon) == (
            exact.sigma_unrecorded(u, v) >= epsilon
        )


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
label_arrays = st.lists(st.integers(-2, 4), min_size=2, max_size=50)


@settings(max_examples=60, deadline=None)
@given(labels=label_arrays)
def test_nmi_identity_axiom(labels):
    arr = np.asarray(labels)
    assert nmi(arr, arr) == pytest.approx(1.0)
    assert ari(arr, arr) == pytest.approx(1.0)


@settings(max_examples=60, deadline=None)
@given(a=label_arrays, data=st.data())
def test_nmi_symmetry_and_range(a, data):
    b = data.draw(
        st.lists(st.integers(-2, 4), min_size=len(a), max_size=len(a))
    )
    x, y = np.asarray(a), np.asarray(b)
    assert nmi(x, y) == pytest.approx(nmi(y, x))
    assert 0.0 <= nmi(x, y) <= 1.0


@settings(max_examples=60, deadline=None)
@given(a=label_arrays)
def test_nmi_invariant_under_relabeling(a):
    x = np.asarray(a)
    permuted = np.where(x >= 0, x + 100, x)
    assert nmi(x, permuted) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# builder round trip
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(edges=edge_lists)
def test_builder_roundtrip_properties(edges):
    graph = build_graph(edges)
    unique = {(min(u, v), max(u, v)) for u, v in edges}
    assert graph.num_edges == len(unique)
    assert int(graph.degrees.sum()) == 2 * graph.num_edges
    for u, v in unique:
        assert graph.has_edge(u, v)
        assert graph.has_edge(v, u)


# ----------------------------------------------------------------------
# anySCAN ≡ SCAN on arbitrary graphs
# ----------------------------------------------------------------------
@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    edges=edge_lists,
    mu=st.integers(2, 5),
    epsilon=st.sampled_from([0.3, 0.5, 0.7]),
    alpha=st.integers(1, 30),
)
def test_anyscan_equals_scan_on_arbitrary_graphs(edges, mu, epsilon, alpha):
    graph = build_graph(edges)
    oracle = SimilarityOracle(graph, SimilarityConfig())
    reference = scan(graph, mu, epsilon, seed=1)
    result = AnySCAN(
        graph,
        AnyScanConfig(
            mu=mu, epsilon=epsilon, alpha=alpha, beta=alpha,
            record_costs=False,
        ),
    ).run()
    problems = explain_difference(
        graph, oracle, reference, result, mu, epsilon
    )
    assert not problems, problems
