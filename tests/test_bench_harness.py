"""Tests for the experiment harness and algorithm drivers."""

import pytest

from repro.bench.harness import (
    ALGORITHMS,
    ExperimentResult,
    run_algorithm,
)
from repro.errors import ExperimentError


class TestExperimentResult:
    def _result(self):
        r = ExperimentResult(
            exp_id="figX",
            title="demo",
            headers=["name", "value", "count"],
        )
        r.add_row("a", 1.5, 10)
        r.add_row("bb", 0.001, 2_000_000)
        return r

    def test_render_contains_everything(self):
        text = self._result().render()
        assert "figX" in text
        assert "demo" in text
        assert "bb" in text
        assert "2,000,000" in text

    def test_render_empty_rows(self):
        r = ExperimentResult(exp_id="e", title="t", headers=["x"])
        assert "e" in r.render()

    def test_notes_rendered(self):
        r = self._result()
        r.notes.append("something important")
        assert "something important" in r.render()

    def test_column_access(self):
        r = self._result()
        assert r.column("name") == ["a", "bb"]
        assert r.column("count") == [10, 2_000_000]

    def test_column_missing(self):
        with pytest.raises(ExperimentError):
            self._result().column("nope")


class TestAlgorithmDrivers:
    def test_registry_contains_paper_lineup(self):
        assert set(ALGORITHMS) == {
            "SCAN", "SCAN-B", "SCAN++", "pSCAN", "anySCAN"
        }

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_runs_and_instruments(self, karate, name):
        run = run_algorithm(name, karate, 3, 0.5)
        assert run.name == name
        assert run.seconds >= 0
        assert run.work_units > 0
        assert run.clustering.num_vertices == 34

    def test_all_drivers_agree_on_partition(self, lfr_small):
        runs = {
            name: run_algorithm(name, lfr_small, 4, 0.5)
            for name in ALGORITHMS
        }
        reference = runs["SCAN"].clustering
        for name, run in runs.items():
            assert run.clustering.num_clusters == reference.num_clusters, name

    def test_unknown_algorithm(self, karate):
        with pytest.raises(ExperimentError):
            run_algorithm("turboSCAN", karate, 3, 0.5)

    def test_scanpp_extras(self, karate):
        run = run_algorithm("SCAN++", karate, 3, 0.5)
        assert "true_evaluations" in run.extra
        assert "sharing_evaluations" in run.extra

    def test_anyscan_extras(self, karate):
        run = run_algorithm("anySCAN", karate, 3, 0.5)
        assert run.extra["supernodes"] > 0
