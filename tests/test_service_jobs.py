"""End-to-end scheduler acceptance: interleaved anytime slices.

This file carries the issue's E2E criteria at the scheduler layer:

* two concurrent jobs make *interleaved* progress (observable in
  ``slice_log``) and both finish with the exact sequential-scan result;
* a mid-run snapshot reports ``assigned_fraction`` strictly inside
  (0, 1) — the anytime contract, not a before/after artifact;
* pause → export → import into a *fresh* scheduler → resume finishes
  with the exact result (the suspended cursor survives the restart);
* priorities order the queue; failures are contained per-job.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.scan import scan
from repro.core.anyscan import AnySCAN
from repro.core.config import AnyScanConfig
from repro.errors import ConfigError, ReproError
from repro.graph.generators.lfr import LFRParams, lfr_graph
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.service.jobs import JobScheduler, JobState

_POLL = 0.002
_DEADLINE = 60.0


def _algo(graph, mu, epsilon, *, alpha=32, beta=32):
    config = AnyScanConfig(
        mu=mu, epsilon=epsilon, alpha=alpha, beta=beta, record_costs=False
    )
    return AnySCAN(graph, config)


def _canonical(clustering):
    return clustering.canonical().labels


def _poll(predicate, what):
    deadline = time.monotonic() + _DEADLINE
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {what}"
        time.sleep(_POLL)


def test_two_jobs_interleave_and_finish_exact():
    """One worker, two jobs: slices must alternate, results must match
    the sequential baseline exactly (canonical labels)."""
    g1, _ = lfr_graph(LFRParams(n=300, average_degree=8, max_degree=25, seed=1))
    g2 = gnm_random_graph(300, 1400, seed=2)
    with JobScheduler(workers=1, slice_iterations=1) as scheduler:
        job1 = scheduler.submit(_algo(g1, 3, 0.6), graph_name="g1")
        job2 = scheduler.submit(_algo(g2, 3, 0.5), graph_name="g2")
        info1 = scheduler.wait(job1, timeout=_DEADLINE)
        info2 = scheduler.wait(job2, timeout=_DEADLINE)
        assert info1["state"] == "done" and info2["state"] == "done"
        log = list(scheduler.slice_log)
        result1 = scheduler.result(job1)
        result2 = scheduler.result(job2)
    # Interleaving: while both jobs were live the round-robin must have
    # switched jobs between consecutive slices, not run head-of-line.
    first_done = min(len(log) - 1 - log[::-1].index(j) for j in (job1, job2))
    live_prefix = log[:first_done]
    switches = sum(
        1 for a, b in zip(live_prefix, live_prefix[1:]) if a != b
    )
    assert switches >= max(1, len(live_prefix) - 1 - 2), (
        f"slices did not interleave: {live_prefix}"
    )
    assert np.array_equal(_canonical(result1), _canonical(scan(g1, 3, 0.6)))
    assert np.array_equal(_canonical(result2), _canonical(scan(g2, 3, 0.5)))


def test_mid_run_snapshot_fraction_strictly_inside_unit_interval():
    graph, _ = lfr_graph(
        LFRParams(n=800, average_degree=10, max_degree=40, seed=3)
    )
    with JobScheduler(workers=1, slice_iterations=1) as scheduler:
        job = scheduler.submit(_algo(graph, 3, 0.5, alpha=16, beta=16))
        observed = []

        def saw_partial():
            snap = scheduler.snapshot(job)
            if 0.0 < snap.assigned_fraction < 1.0 and not snap.final:
                observed.append(snap)
                return True
            return scheduler.info(job)["finished"]

        _poll(saw_partial, "a mid-run snapshot")
        assert observed, "job finished without a partial snapshot"
        snap = observed[0]
        assert 0.0 < snap.assigned_fraction < 1.0
        assert not snap.final
        assert snap.labels.shape == (graph.num_vertices,)
        # Exercise the pause/resume path on the same live job.
        scheduler.pause(job)
        _poll(
            lambda: scheduler.info(job)["state"] in ("paused", "done"),
            "pause to land",
        )
        if scheduler.info(job)["state"] == "paused":
            scheduler.resume(job)
        assert scheduler.wait(job, timeout=_DEADLINE)["state"] == "done"
        expected = _canonical(scan(graph, 3, 0.5))
        assert np.array_equal(_canonical(scheduler.result(job)), expected)


def test_export_import_across_scheduler_restart():
    """A paused job revives in a fresh scheduler and finishes exactly."""
    graph, _ = lfr_graph(LFRParams(n=400, average_degree=9, max_degree=30, seed=4))
    exported = None
    with JobScheduler(workers=1, slice_iterations=1) as first:
        job = first.submit(
            _algo(graph, 3, 0.55, alpha=16, beta=16), graph_name="g"
        )
        _poll(
            lambda: first.info(job)["iterations"] >= 1
            or first.info(job)["finished"],
            "progress before pause",
        )
        first.pause(job)
        _poll(
            lambda: first.info(job)["state"] in ("paused", "done"),
            "pause to land",
        )
        assert first.info(job)["state"] == "paused"
        exported = first.export_job(job)
        mid_iterations = first.info(job)["iterations"]
    with JobScheduler(workers=2, slice_iterations=4) as second:
        revived = second.import_job(exported)
        info = second.info(revived)
        assert info["state"] == "paused"
        assert info["iterations"] == mid_iterations
        assert info["graph"] == "g"
        second.resume(revived)
        assert second.wait(revived, timeout=_DEADLINE)["state"] == "done"
        got = _canonical(second.result(revived))
    assert np.array_equal(got, _canonical(scan(graph, 3, 0.55)))


def test_import_renames_colliding_job_ids():
    graph = gnm_random_graph(60, 150, seed=5)
    with JobScheduler(workers=1) as scheduler:
        job = scheduler.submit(_algo(graph, 2, 0.5))
        scheduler.wait(job, timeout=_DEADLINE)
        # Build an export blob claiming the same id.
        with JobScheduler(workers=1) as other:
            twin = other.submit(_algo(graph, 2, 0.5))
            other.pause(twin)
            _poll(
                lambda: other.info(twin)["state"] in ("paused", "done"),
                "twin pause",
            )
            if other.info(twin)["state"] != "paused":
                pytest.skip("twin finished before it could be exported")
            blob = other.export_job(twin)
        revived = scheduler.import_job(blob)
        assert revived != twin or twin not in [
            j["job_id"] for j in scheduler.list_jobs()
        ]
        assert scheduler.info(revived)["state"] == "paused"


def test_priority_orders_the_ready_queue():
    """Among pending jobs the higher priority one runs to completion
    first; reprioritize on a paused job takes effect at resume."""
    graphs = [gnm_random_graph(240, 1100, seed=s) for s in (6, 7, 8)]
    with JobScheduler(workers=1, slice_iterations=1) as scheduler:
        blocker = scheduler.submit(_algo(graphs[0], 2, 0.5), priority=0)
        low = scheduler.submit(_algo(graphs[1], 2, 0.5), priority=5)
        high = scheduler.submit(_algo(graphs[2], 2, 0.5), priority=1)
        scheduler.pause(low)
        scheduler.pause(high)
        _poll(
            lambda: scheduler.info(low)["state"] == "paused"
            and scheduler.info(high)["state"] == "paused",
            "both paused",
        )
        # Swap the order while parked: `high` now outranks `low`.
        scheduler.reprioritize(high, 7)
        scheduler.resume(high)
        scheduler.resume(low)
        for job in (blocker, low, high):
            assert scheduler.wait(job, timeout=_DEADLINE)["state"] == "done"
        log = list(scheduler.slice_log)
    high_slices = [i for i, j in enumerate(log) if j == high]
    low_slices = [i for i, j in enumerate(log) if j == low]
    assert high_slices and low_slices
    assert max(high_slices) < min(low_slices), (
        "priority 7 job should finish before the priority 5 job starts"
    )


class _ExplodingAnySCAN(AnySCAN):
    def advance(self):
        raise RuntimeError("deliberate mid-slice failure")


def test_failures_are_contained_per_job():
    graph = gnm_random_graph(50, 120, seed=9)
    done = []
    with JobScheduler(workers=1, on_done=done.append) as scheduler:
        config = AnyScanConfig(mu=2, epsilon=0.5, alpha=8, beta=8)
        bad = scheduler.submit(_ExplodingAnySCAN(graph, config))
        good = scheduler.submit(_algo(graph, 2, 0.5))
        assert scheduler.wait(bad, timeout=_DEADLINE)["state"] == "failed"
        assert scheduler.wait(good, timeout=_DEADLINE)["state"] == "done"
        info = scheduler.info(bad)
        assert "deliberate mid-slice failure" in str(info["error"])
        with pytest.raises(ReproError):
            scheduler.result(bad)
    states = {job.job_id: job.state for job in done}
    assert states[bad] is JobState.FAILED
    assert states[good] is JobState.DONE


def test_cancel_stops_a_running_job():
    graph = gnm_random_graph(800, 4000, seed=10)
    with JobScheduler(workers=1, slice_iterations=1) as scheduler:
        job = scheduler.submit(_algo(graph, 3, 0.5, alpha=16, beta=16))
        _poll(
            lambda: scheduler.info(job)["iterations"] >= 1
            or scheduler.info(job)["finished"],
            "job to start",
        )
        scheduler.cancel(job)
        info = scheduler.wait(job, timeout=_DEADLINE)
        assert info["state"] in ("cancelled", "done")
        if info["state"] == "cancelled":
            with pytest.raises(ReproError):
                scheduler.result(job)
            # Terminal jobs reject further lifecycle transitions.
            with pytest.raises(ReproError):
                scheduler.resume(job)
            with pytest.raises(ReproError):
                scheduler.reprioritize(job, 3)


def test_finished_algorithm_submits_as_done():
    graph = gnm_random_graph(40, 90, seed=11)
    algorithm = _algo(graph, 2, 0.5)
    expected = algorithm.run()
    with JobScheduler(workers=1) as scheduler:
        job = scheduler.submit(algorithm)
        info = scheduler.info(job)
        assert info["state"] == "done"
        assert np.array_equal(
            scheduler.result(job).labels, expected.labels
        )


def test_scheduler_validation_and_shutdown():
    with pytest.raises(ConfigError):
        JobScheduler(workers=0)
    with pytest.raises(ConfigError):
        JobScheduler(slice_iterations=0)
    scheduler = JobScheduler(workers=1)
    with pytest.raises(ReproError):
        scheduler.info("job-404")
    scheduler.close()
    scheduler.close()  # idempotent
    graph = gnm_random_graph(20, 40, seed=12)
    with pytest.raises(ReproError):
        scheduler.submit(_algo(graph, 2, 0.5))
