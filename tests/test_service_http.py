"""E2E acceptance over the wire: one live server, real HTTP clients.

Covers the issue's service-level criteria end to end:

* a served clustering equals the sequential ``scan`` baseline exactly
  (canonical labels — raw ids are scheduler-dependent by design);
* a repeated query is answered from the result cache with **zero** σ
  evaluations, asserted both on the response body and on the
  ``/metrics`` counters;
* a near-miss query (new ε, μ on an indexed graph) runs a fresh job
  that also performs zero σ evaluations — threshold passes over the
  stored σ values;
* ``update-edges`` invalidates exactly the affected cache entries;
* two concurrent jobs run interleaved; a mid-run snapshot reports
  ``assigned_fraction`` strictly inside (0, 1);
* domain errors map to 400/404/409 with JSON bodies.
"""

from __future__ import annotations

import json
import time
import urllib.request

import numpy as np
import pytest

from repro.baselines.scan import scan
from repro.graph.generators.lfr import LFRParams, lfr_graph
from repro.result import Clustering
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.server import ClusteringServer

pytestmark = pytest.mark.timeout(120)

_WAIT = 60.0


@pytest.fixture(scope="module")
def server():
    with ClusteringServer(workers=2, slice_iterations=2) as live:
        yield live


@pytest.fixture()
def client(server):
    return ServiceClient(server.url, timeout=_WAIT)


def _lfr(n, seed):
    graph, _ = lfr_graph(
        LFRParams(n=n, average_degree=8, max_degree=30, seed=seed)
    )
    return graph


def _canonical(labels):
    return Clustering(labels=np.asarray(labels, dtype=np.int64)).canonical()


def test_health_and_graph_listing(client):
    assert client.health()["status"] == "ok"
    graph = _lfr(120, seed=21)
    info = client.load_graph("listing", graph=graph)
    assert info["num_vertices"] == graph.num_vertices
    assert info["num_edges"] == graph.num_edges
    assert "listing" in [g["name"] for g in client.graphs()]
    assert client.graph_info("listing")["fingerprint"] == info["fingerprint"]


def test_load_graph_from_raw_edges(client):
    info = client.load_graph(
        "triangle", edges=[[0, 1], [1, 2], [0, 2], [2, 3, 0.5]]
    )
    assert info["num_vertices"] == 4
    assert info["num_edges"] == 4
    with pytest.raises(ServiceClientError) as excinfo:
        client.load_graph("bad", edges=[[0, 5]], num_vertices=2)
    assert excinfo.value.status == 400


def test_served_result_matches_sequential_scan(client):
    graph = _lfr(300, seed=22)
    client.load_graph("exact", graph=graph)
    body = client.cluster("exact", 3, 0.6, wait=_WAIT)
    assert body["state"] == "done" and body["cached"] is False
    expected = scan(graph, 3, 0.6).canonical()
    got = _canonical(body["labels"])
    assert np.array_equal(got.labels, expected.labels)
    assert body["num_clusters"] == expected.num_clusters


def test_repeat_query_hits_cache_with_zero_sigma_evaluations(client, server):
    graph = _lfr(250, seed=23)
    client.load_graph("warm", graph=graph, build_index=True)
    first = client.cluster("warm", 3, 0.6, wait=_WAIT)
    assert first["state"] == "done" and first["cached"] is False

    before = client.metrics()["counters"]
    second = client.cluster("warm", 3, 0.6, wait=_WAIT)
    after = client.metrics()["counters"]

    assert second["cached"] is True
    assert second["sigma_evaluations"] == 0
    assert second["job_id"] is None
    assert np.array_equal(second["labels"], first["labels"])
    assert after["cache_hits"] - before.get("cache_hits", 0) == 1
    # The zero-σ acceptance check, on the server's own accounting.
    assert after.get("sigma_evaluations", 0) == before.get(
        "sigma_evaluations", 0
    )
    assert after.get("jobs_submitted", 0) == before.get("jobs_submitted", 0)


def test_near_miss_on_indexed_graph_runs_without_sigma_evaluations(client):
    """New (ε, μ) on an indexed graph: fresh job, zero σ evaluations."""
    graph = _lfr(250, seed=24)
    client.load_graph("indexed", graph=graph, build_index=True)
    before = client.metrics()["counters"]
    body = client.cluster("indexed", 4, 0.55, wait=_WAIT)
    after = client.metrics()["counters"]
    assert body["state"] == "done" and body["cached"] is False
    assert body["sigma_evaluations"] == 0
    assert after.get("sigma_evaluations", 0) == before.get(
        "sigma_evaluations", 0
    )
    assert after.get("jobs_completed", 0) > before.get("jobs_completed", 0)
    expected = scan(graph, 4, 0.55).canonical().labels
    assert np.array_equal(_canonical(body["labels"]).labels, expected)


def test_two_concurrent_jobs_interleave(client, server):
    # Large enough that neither job can run to completion inside the
    # submission gap (one HTTP round-trip, which can stretch to tens
    # of milliseconds late in a long suite run) — the interleaving
    # assertions below need the jobs' lifetimes to actually overlap.
    g1 = _lfr(2000, seed=25)
    g2 = _lfr(2000, seed=26)
    client.load_graph("conc-a", graph=g1)
    client.load_graph("conc-b", graph=g2)
    job_a = client.cluster("conc-a", 3, 0.6, alpha=16, beta=16)["job_id"]
    job_b = client.cluster("conc-b", 3, 0.6, alpha=16, beta=16)["job_id"]
    assert job_a and job_b and job_a != job_b
    body_a = client.result(job_a, wait=_WAIT)
    body_b = client.result(job_b, wait=_WAIT)
    assert body_a["state"] == "done" and body_b["state"] == "done"
    for graph, body in ((g1, body_a), (g2, body_b)):
        expected = scan(graph, 3, 0.6).canonical().labels
        assert np.array_equal(_canonical(body["labels"]).labels, expected)
    # Both jobs took multiple slices through the shared worker pool.
    jobs = {j["job_id"]: j for j in client.jobs()}
    assert jobs[job_a]["slices"] >= 2 and jobs[job_b]["slices"] >= 2
    log = server.service.scheduler.slice_log
    positions_a = [i for i, j in enumerate(log) if j == job_a]
    positions_b = [i for i, j in enumerate(log) if j == job_b]
    # Interleaved: job B got a slice before job A finished (and vice
    # versa) rather than running head-of-line.
    assert min(positions_b) < max(positions_a)
    assert min(positions_a) < max(positions_b)


def test_mid_run_snapshot_over_http(client):
    graph = _lfr(800, seed=27)
    client.load_graph("big", graph=graph)
    job_id = client.cluster("big", 3, 0.5, alpha=16, beta=16)["job_id"]
    observed = None
    deadline = time.monotonic() + _WAIT
    while time.monotonic() < deadline:
        snap = client.snapshot(job_id)
        if 0.0 < snap["assigned_fraction"] < 1.0 and not snap["final"]:
            observed = snap
            break
        if client.status(job_id)["finished"]:
            break
    assert observed is not None, "job finished without a partial snapshot"
    assert len(observed["labels"]) == graph.num_vertices
    assert observed["num_clusters"] >= 0
    body = client.result(job_id, wait=_WAIT, labels=False)
    assert body["state"] == "done"
    assert "labels" not in body  # labels=false suppresses the payload


def test_update_edges_invalidates_exactly_affected_entries(client):
    ga = _lfr(150, seed=28)
    gb = _lfr(150, seed=29)
    client.load_graph("upd-a", graph=ga, build_index=True)
    client.load_graph("upd-b", graph=gb, build_index=True)
    for epsilon in (0.5, 0.6):
        assert client.cluster("upd-a", 3, epsilon, wait=_WAIT)["state"] == "done"
    assert client.cluster("upd-b", 3, 0.5, wait=_WAIT)["state"] == "done"
    assert client.cluster("upd-b", 3, 0.5)["cached"] is True

    # Connect a brand-new vertex: guaranteed not already an edge.
    outcome = client.update_edges(
        "upd-a", insert=[[ga.num_vertices, 0]], add_vertices=1
    )
    assert outcome["cache_entries_invalidated"] == 2
    assert outcome["inserted"] == 1
    assert outcome["fingerprint"] != outcome["previous_fingerprint"]
    assert outcome["sigma_recomputations"] >= 1

    # The other graph's entries survived; upd-a's are gone.
    assert client.cluster("upd-b", 3, 0.5)["cached"] is True
    fresh = client.cluster("upd-a", 3, 0.5, wait=_WAIT)
    assert fresh["cached"] is False and fresh["state"] == "done"
    assert client.graph_info("upd-a")["updates_applied"] == 1


def test_pause_resume_priority_cancel_endpoints(client):
    graph = _lfr(700, seed=30)
    client.load_graph("ctl", graph=graph)
    job_id = client.cluster("ctl", 3, 0.5, alpha=16, beta=16)["job_id"]
    paused = client.pause(job_id)
    assert paused["state"] in ("paused", "running", "done")
    deadline = time.monotonic() + _WAIT
    while client.status(job_id)["state"] not in ("paused", "done"):
        assert time.monotonic() < deadline
    status = client.status(job_id)
    if status["state"] == "paused":
        # A paused job's result is a 409, not an error page.
        with pytest.raises(ServiceClientError) as excinfo:
            client.result(job_id)
        assert excinfo.value.status == 409
        assert client.set_priority(job_id, 9)["priority"] == 9
        assert client.resume(job_id)["state"] in ("pending", "running")
    assert client.result(job_id, wait=_WAIT)["state"] == "done"

    victim = client.cluster("ctl", 4, 0.45, alpha=16, beta=16)["job_id"]
    cancelled = client.cancel(victim)
    assert cancelled["state"] in ("cancelled", "running", "done")
    deadline = time.monotonic() + _WAIT
    while not client.status(victim)["finished"]:
        assert time.monotonic() < deadline


def test_error_statuses(client, server):
    with pytest.raises(ServiceClientError) as excinfo:
        client.cluster("no-such-graph", 3, 0.5)
    assert excinfo.value.status == 400
    with pytest.raises(ServiceClientError) as excinfo:
        client.status("job-404000")
    assert excinfo.value.status == 400
    with pytest.raises(ServiceClientError) as excinfo:
        client._request("GET", "/no/such/route")
    assert excinfo.value.status == 404

    # Malformed JSON body → 400 with a JSON error payload.
    request = urllib.request.Request(
        server.url + "/cluster",
        data=b"{not json",
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as http_error:
        urllib.request.urlopen(request, timeout=_WAIT)
    assert http_error.value.code == 400
    body = json.loads(http_error.value.read().decode("utf-8"))
    assert "invalid JSON body" in body["error"]


def test_metrics_report_latency_histograms(client):
    client.health()
    snapshot = client.metrics()
    assert snapshot["latency"]["health"]["count"] >= 1
    assert snapshot["latency"]["health"]["p99_s"] >= 0.0
    assert "jobs" in snapshot["gauges"]
    assert "cache" in snapshot["gauges"]
    assert snapshot["counters"]["requests_total"] >= 1


def test_shutdown_endpoint_sets_the_event(client, server):
    assert not server.service.shutdown_event.is_set()
    assert client.shutdown()["status"] == "shutting-down"
    assert server.service.shutdown_event.is_set()
