"""White-box tests of anySCAN's four steps (Figure 2 fidelity).

Each test builds a small graph engineered to exercise one mechanism of
the pseudocode: super-node creation, the Step 1 strong unions, the Step 2
prune and shared-core merge (Lemma 2), the Step 3 weak merge (Lemma 3),
and the Step 4 border promotion.
"""

import numpy as np
import pytest

from repro.core import AnySCAN, AnyScanConfig
from repro.graph.builder import GraphBuilder
from repro.structures.state import VertexState as S


def clique_edges(vertices):
    return [
        (a, b)
        for i, a in enumerate(vertices)
        for b in vertices[i + 1 :]
    ]


def run(graph, mu, eps, *, alpha=100, beta=100, seed=0):
    algo = AnySCAN(
        graph,
        AnyScanConfig(
            mu=mu, epsilon=eps, alpha=alpha, beta=beta, seed=seed,
            record_costs=False,
        ),
    )
    result = algo.run()
    return algo, result


class TestStep1Summarization:
    def test_no_untouched_vertices_remain(self, lfr_small):
        algo, _ = run(lfr_small, 4, 0.5, alpha=24, beta=24)
        assert algo.states.untouched_vertices().shape[0] == 0

    def test_supernode_reps_are_processed_cores(self, caveman):
        algo, _ = run(caveman, 3, 0.5)
        for node in algo.supernodes:
            assert algo.states.get(node.representative) == S.PROCESSED_CORE

    def test_supernode_members_are_eps_neighbors(self, caveman):
        algo, _ = run(caveman, 3, 0.5)
        for node in algo.supernodes:
            rep = node.representative
            hood = set(
                int(q)
                for q in algo.oracle.eps_neighborhood(rep, 0.5)
            ) | {rep}
            assert set(int(v) for v in node.members) == hood

    def test_noise_list_holds_noise_or_promoted_borders(self):
        # A sparse star: the center has degree 6 but weak σ to leaves.
        builder = GraphBuilder(7)
        for leaf in range(1, 7):
            builder.add_edge(0, leaf)
        graph = builder.build()
        algo, result = run(graph, 3, 0.9)
        assert result.num_clusters == 0
        # The center was range-queried and found noise; leaves never
        # needed a query (degree below μ-1).
        assert algo.states.get(0) == S.PROCESSED_NOISE
        for leaf in range(1, 7):
            assert algo.states.get(leaf) == S.PROCESSED_NOISE

    def test_shared_core_merges_in_step1(self):
        # Two K4s sharing one vertex (3): the shared vertex is a core of
        # both neighborhoods, so their super-nodes must merge (footnote 2
        # of the paper: cores are handled in Step 1).
        edges = clique_edges([0, 1, 2, 3]) + clique_edges([3, 4, 5, 6])
        graph = GraphBuilder(7)
        for u, v in edges:
            graph.add_edge(u, v)
        algo, result = run(graph.build(), 3, 0.5)
        assert result.num_clusters == 1
        total_unions = algo.statistics()["union_calls_by_step"]
        assert sum(total_unions.values()) >= 1


class TestStep2StrongMerge:
    def test_strongly_related_cliques_merge(self):
        # Two K5s overlapping in two non-adjacent... simpler: overlapping
        # in two vertices (3, 4) — the shared vertices sit in both
        # ε-neighborhoods, so the super-nodes are strongly related.
        left = [0, 1, 2, 3, 4]
        right = [3, 4, 5, 6, 7]
        builder = GraphBuilder(8)
        seen = set()
        for u, v in clique_edges(left) + clique_edges(right):
            key = (min(u, v), max(u, v))
            if key not in seen:
                seen.add(key)
                builder.add_edge(u, v)
        algo, result = run(builder.build(), 3, 0.55)
        assert result.num_clusters == 1

    def test_prune_skips_same_cluster_vertices(self, caveman):
        # After a run, every multi-super-node vertex must see all its
        # super-nodes in one cluster (otherwise Step 2 failed to merge).
        algo, _ = run(caveman, 3, 0.5)
        for v in range(caveman.num_vertices):
            if algo.supernodes.membership_count(v) >= 2:
                assert algo.supernodes.all_same_cluster(v)


class TestStep3WeakMerge:
    def test_adjacent_cliques_merge_when_sigma_passes(self):
        # Two K5s joined by a dense K2,2 bridge: the bridge endpoints
        # share two common neighbors across the gap, so σ(0, 5) ≈ 0.57
        # passes ε=0.5 — yet the cliques share no vertex (weakly related
        # only; this is exactly the sn(a)/sn(c) case of Figure 1).
        left = [0, 1, 2, 3, 4]
        right = [5, 6, 7, 8, 9]
        builder = GraphBuilder(10)
        for u, v in clique_edges(left) + clique_edges(right):
            builder.add_edge(u, v)
        for u, v in [(0, 5), (0, 6), (1, 5), (1, 6)]:
            builder.add_edge(u, v)
        algo, result = run(builder.build(), 3, 0.5)
        # At ε=0.5 the bridge σ values pass: one merged cluster.
        assert result.num_clusters == 1
        assert algo.statistics()["union_calls_by_step"].get(
            "step3", 0
        ) + algo.statistics()["union_calls_by_step"].get(
            "step1", 0
        ) + algo.statistics()["union_calls_by_step"].get("step2", 0) >= 1

    def test_adjacent_cliques_stay_apart_when_sigma_fails(self):
        # One thin bridge edge: σ across it is low, clusters stay apart.
        left = [0, 1, 2, 3, 4]
        right = [5, 6, 7, 8, 9]
        builder = GraphBuilder(10)
        for u, v in clique_edges(left) + clique_edges(right):
            builder.add_edge(u, v)
        builder.add_edge(0, 5)
        _, result = run(builder.build(), 3, 0.7)
        assert result.num_clusters == 2
        # The bridge endpoints are still members of their own cliques.
        assert result.labels[0] >= 0
        assert result.labels[5] >= 0
        assert result.labels[0] != result.labels[5]


class TestStep4Borders:
    def test_pendant_of_core_becomes_border(self):
        # K5 plus one pendant vertex attached to two clique members:
        # the pendant has degree 2 < μ-1 → unprocessed-noise → Step 4
        # must promote it via its ε-similar core neighbor (if σ passes).
        builder = GraphBuilder(6)
        for u, v in clique_edges([0, 1, 2, 3, 4]):
            builder.add_edge(u, v)
        builder.add_edge(5, 0)
        builder.add_edge(5, 1)
        algo, result = run(builder.build(), 4, 0.5)
        assert int(result.labels[5]) == int(result.labels[0])
        assert algo.states.get(5) == S.PROCESSED_BORDER

    def test_true_outlier_stays_noise(self):
        builder = GraphBuilder(7)
        for u, v in clique_edges([0, 1, 2, 3, 4]):
            builder.add_edge(u, v)
        builder.add_edge(5, 6)  # an isolated dyad
        _, result = run(builder.build(), 3, 0.5)
        assert int(result.labels[5]) == -2
        assert int(result.labels[6]) == -2

    def test_hub_between_two_clusters(self):
        # Vertex 10 touches both cliques but belongs to neither.
        builder = GraphBuilder(11)
        for u, v in clique_edges([0, 1, 2, 3, 4]):
            builder.add_edge(u, v)
        for u, v in clique_edges([5, 6, 7, 8, 9]):
            builder.add_edge(u, v)
        builder.add_edge(10, 0)
        builder.add_edge(10, 5)
        _, result = run(builder.build(), 3, 0.6)
        assert result.num_clusters == 2
        assert int(result.labels[10]) == -1  # HUB


class TestBlockBoundaries:
    @pytest.mark.parametrize("alpha", [1, 2, 3, 5, 50])
    def test_any_alpha_gives_same_partition(self, alpha):
        builder = GraphBuilder(10)
        for u, v in clique_edges([0, 1, 2, 3, 4]):
            builder.add_edge(u, v)
        for u, v in clique_edges([5, 6, 7, 8, 9]):
            builder.add_edge(u, v)
        builder.add_edge(4, 5)
        graph = builder.build()
        _, baseline = run(graph, 3, 0.6, alpha=100, beta=100)
        _, result = run(graph, 3, 0.6, alpha=alpha, beta=alpha)
        assert baseline.same_partition(result)
