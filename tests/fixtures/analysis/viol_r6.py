"""R6 fixture: seeded interprocedural races and their guarded twins.

The worker roots here never write shared state directly (that is R1's
fixture); every write happens one or two calls down the graph, which is
exactly what the per-module rules cannot see.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

COUNTS = {}
TOTALS = [0] * 16
SAFE_COUNTS = {}
_TABLE_LOCK = threading.Lock()


def _bump(key):
    # Reached from two concurrent roots with no lock held: a race.
    COUNTS[key] = COUNTS.get(key, 0) + 1


def _tally(index, amount):
    _accumulate(index, amount)


def _accumulate(index, amount):
    # Two calls deep from the worker root, still unguarded.
    TOTALS[index] += amount


def _bump_safe(key):
    with _TABLE_LOCK:
        SAFE_COUNTS[key] = SAFE_COUNTS.get(key, 0) + 1


def worker(item):
    _bump(item)
    _tally(item % 16, 1)
    _bump_safe(item)


def other_worker(item):
    _bump(item)
    _bump_safe(item)


def local_worker(item):
    # Purely local state: nothing shared, nothing to flag.
    cache = {}
    cache[item] = item * 2
    return cache


def run(items):
    with ThreadPoolExecutor(max_workers=4) as pool:
        list(pool.map(worker, items))
        list(pool.map(other_worker, items))
        list(pool.map(local_worker, items))
