"""Seeded R5 violations: silent ``except`` handlers in a guarded module."""


def swallow_into_fallback(work, fallback):
    """R5: the failure is replaced by a default with no trace."""
    try:
        result = work()
    except ValueError:
        result = fallback
    return result


def swallow_with_pass(work):
    """R5: the failure vanishes entirely."""
    try:
        work()
    except OSError:
        pass


def reraise_translated(work):
    try:
        return work()
    except ValueError as exc:
        raise RuntimeError("translated") from exc


def return_on_failure(work):
    try:
        return work()
    except ValueError:
        return None


def witnessed_by_metrics(work, metrics):
    try:
        work()
    except ValueError:
        metrics.increment("failures")


def sanctioned_swallow(work):
    try:
        work()
    # Best-effort probe; justified in the module docstring.  # repro: allow[swallow]
    except ValueError:
        pass
