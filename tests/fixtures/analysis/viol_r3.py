"""Seeded R3 violation: Python loops over CSR arrays in a kernel."""

import numpy as np


def degree_sums(graph):
    total = 0.0
    for p in range(graph.num_vertices):  # R3: loop sized by |V|
        for q in graph.neighbors(p):  # R3: loop over a CSR row
            total += q
    return total


def row_scan(indptr, indices):
    hits = 0
    for k in indices:  # R3: loop over the CSR index array
        hits += int(k)
    return hits


def allowed_scan(indices):
    hits = 0
    # Justified: charging per-item instrumentation.  # repro: allow[R3]
    for k in indices:
        hits += int(k)
    return hits
