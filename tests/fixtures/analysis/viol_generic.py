"""Seeded G1/G2/G3 violations: generic hygiene."""

from dataclasses import dataclass


def collect(items, into=[]):  # G1: mutable default argument
    into.extend(items)
    return into


def swallow(fn):
    try:
        return fn()
    except:  # G2: bare except
        return None


@dataclass(frozen=True)
class Frozen:
    value: int

    def __post_init__(self):
        object.__setattr__(self, "value", int(self.value))  # legitimate

    def bump(self):
        object.__setattr__(self, "value", self.value + 1)  # G3
