"""R7 fixture: a seeded ABBA lock-order cycle plus a consistent pair.

``first_worker`` takes A then B (via a helper); ``second_worker`` takes
B then A — a classic ABBA deadlock.  The C/D pair below is always
acquired in the same order and must stay silent.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()
LOCK_C = threading.Lock()
LOCK_D = threading.Lock()

STATE = {}


def _update_under_b():
    with LOCK_B:
        STATE["b"] = 1


def first_worker(item):
    with LOCK_A:
        _update_under_b()


def second_worker(item):
    with LOCK_B:
        with LOCK_A:
            STATE["a"] = item


def consistent_worker(item):
    with LOCK_C:
        with LOCK_D:
            STATE["cd"] = item


def also_consistent(item):
    with LOCK_C:
        with LOCK_D:
            STATE["cd2"] = item


def run(items):
    with ThreadPoolExecutor(max_workers=4) as pool:
        list(pool.map(first_worker, items))
        list(pool.map(second_worker, items))
        list(pool.map(consistent_worker, items))
        list(pool.map(also_consistent, items))
