"""Seeded R4 violation: public eps/mu entry point without validation."""

from repro.validation import check_eps_mu


def cluster(graph, mu, epsilon):
    """R4: neither parameter is range-checked before use."""
    return [v for v in range(graph.num_vertices) if mu and epsilon]


def cluster_checked(graph, mu, epsilon):
    check_eps_mu(mu=mu, epsilon=epsilon)
    return [v for v in range(graph.num_vertices)]


def cluster_inline(graph, mu, epsilon):
    if mu < 1:
        raise ValueError("mu must be a positive integer")
    if not 0.0 < epsilon <= 1.0:
        raise ValueError("epsilon must be in (0, 1]")
    return []


def _private(graph, mu, epsilon):
    return None  # private helpers are out of scope for R4
