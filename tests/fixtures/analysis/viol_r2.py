"""Seeded R2 violation: banned imports in library code."""

import networkx as nx  # R2: networkx must not leak into src/repro
from pytest import approx  # R2: test-only dependency


def shortest_path(graph, source, target):
    return nx.shortest_path(graph, source, target)


def close_enough(a, b):
    return a == approx(b)
