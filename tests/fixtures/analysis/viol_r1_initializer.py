"""Seeded R1 violation: unguarded shared write inside a pool initializer."""

from concurrent.futures import ProcessPoolExecutor

_CACHE = {}


def bad_init(handle):
    global _CACHE
    _CACHE = {"handle": handle}  # R1: raw write to module global


def good_init(handle):
    local = {"handle": handle}
    return local


def worker(task):
    return _CACHE.get("handle"), task


def run_bad(handle, tasks):
    with ProcessPoolExecutor(
        max_workers=2, initializer=bad_init, initargs=(handle,)
    ) as pool:
        return list(pool.map(worker, tasks))


def run_good(handle, tasks):
    with ProcessPoolExecutor(
        max_workers=2, initializer=good_init, initargs=(handle,)
    ) as pool:
        return list(pool.map(worker, tasks))
