"""Seeded R1 violation: unguarded shared writes inside a pool worker."""

import numpy as np

from repro.parallel.sync import atomic_add, critical
from repro.parallel.threads import ThreadBackend


def tally_unguarded(graph, vertices, counts, dsu):
    """Every write here breaks the one-atomic/one-critical budget."""
    backend = ThreadBackend(threads=4)
    processed = 0

    def worker(v):
        nonlocal processed
        counts[v] += 1          # R1: raw indexed write to shared array
        processed += 1          # R1: raw write to closure counter
        dsu.union(v, 0)         # R1: Union outside a critical section
        return v

    return backend.map(worker, vertices)


def tally_guarded(graph, vertices, counts, dsu, lock):
    """The compliant version of the same workload (no findings)."""
    backend = ThreadBackend(threads=4)

    def worker(v):
        atomic_add(counts, v, 1)
        with critical(lock):
            dsu.union(v, 0)
        local = np.zeros(4)
        local[0] = 1.0          # worker-local: not a shared write
        return v

    return backend.map(worker, vertices)
