"""R8 fixture: seeded shared-memory segment leaks and clean lifecycles."""

from multiprocessing import shared_memory
from multiprocessing.shared_memory import SharedMemory


def leaky_fallthrough():
    shm = SharedMemory(create=True, size=64)
    return shm.name  # the handle itself never reaches close/unlink


def leaky_exception_edge(fill):
    shm = SharedMemory(create=True, size=64)
    fill(shm.buf)  # if this raises, the segment is stranded
    shm.close()
    shm.unlink()
    return True


def clean_try_finally(fill):
    shm = SharedMemory(create=True, size=64)
    try:
        fill(shm.buf)
    finally:
        shm.close()
        shm.unlink()
    return True


def clean_escape_to_registry(registry):
    shm = shared_memory.SharedMemory(create=True, size=64)
    registry.append(shm)  # ownership transferred to the registry
    return shm


def clean_factory():
    return SharedMemory(create=True, size=64)  # caller owns it


def clean_attach_only(name):
    shm = SharedMemory(name=name)  # attach, not create: no obligation
    value = bytes(shm.buf[:8])
    return value
