"""A module every rule should accept untouched."""

import numpy as np

from repro.parallel.sync import atomic_add
from repro.parallel.threads import ThreadBackend
from repro.validation import check_eps_mu


def histogram(backend, counts, items):
    def worker(item):
        atomic_add(counts, item, 1)
        return item

    return backend.map(worker, items)


def threshold(graph, mu, epsilon):
    check_eps_mu(mu=mu, epsilon=epsilon)
    return np.asarray(graph.degrees) >= mu


def doubled(values, out=None):
    if out is None:
        out = []
    for value in values:
        out.append(2 * value)
    return out
