"""Crash-recovery chaos battery (DESIGN.md §13).

Four batteries around the durability plane:

* **A** — in-process fault plans at the new durability fault sites
  (``wal.append``, ``wal.fsync``, ``checkpoint.write``): acked batches
  survive recovery, faulted batches are cleanly absent, and the
  recovered store answers byte-identically to a fresh sequential build
  over the acked stream.
* **B** — ``recovery.replay`` faults: a faulted recovery fails
  structurally (never hangs, never half-applies silently) and a clean
  retry rebuilds the exact store.
* **C** — a real ``repro serve --data-dir`` subprocess SIGKILLed mid
  update-stream: restart with ``--recover``, keyed retries apply
  exactly once, final graph and clustering answers byte-identical to an
  uninterrupted build.
* **D** — the HA fleet: SIGKILL the durable writer mid-service, a
  shard is promoted via WAL replay, readers keep answering and keyed
  replay still dedupes across the failover.

Seeds come from ``REPRO_CHAOS_SEEDS`` (comma-separated) so CI shards
the battery; when ``REPRO_CHAOS_DIR`` is set every battery leaves its
fault plan (and battery C its WAL/data directory) there so a failing
run ships the exact evidence.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.scan import scan
from repro.errors import ReproError
from repro.faults import FaultPlan, armed
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.parallel.processes import shared_memory_available
from repro.result import Clustering
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.durability import DurabilityManager
from repro.service.fleet import ServiceSupervisor
from repro.service.metrics import ServiceMetrics
from repro.service.store import GraphStore
from repro.similarity.weighted import SimilarityConfig

pytestmark = [pytest.mark.chaos, pytest.mark.timeout(300)]

REPO = Path(__file__).resolve().parents[1]

#: Structured failures a faulted run may legitimately surface.
_STRUCTURED = (ReproError, OSError, MemoryError, ValueError, TimeoutError)

_DURABILITY_SITES = ["wal.append", "wal.fsync", "checkpoint.write"]


def _seeds():
    raw = os.environ.get("REPRO_CHAOS_SEEDS", "0,1,2,3")
    return [int(part) for part in raw.split(",") if part.strip()]


def _chaos_dir():
    directory = os.environ.get("REPRO_CHAOS_DIR")
    if directory:
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        return path
    return None


def _dump_plan(plan, battery):
    directory = _chaos_dir()
    if directory is not None:
        (directory / f"plan_{battery}_{plan.seed}.json").write_text(
            plan.to_json()
        )


def _planned_inserts(graph, count, per_batch, seed):
    """``count`` batches of fresh, pairwise-distinct non-edges."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    existing = set()
    for u in range(n):
        for v in graph.indices[graph.indptr[u]:graph.indptr[u + 1]]:
            existing.add((min(u, int(v)), max(u, int(v))))
    batches = []
    while len(batches) < count:
        batch = []
        while len(batch) < per_batch:
            u, v = int(rng.integers(n)), int(rng.integers(n))
            key = (min(u, v), max(u, v))
            if u == v or key in existing:
                continue
            existing.add(key)
            batch.append([key[0], key[1], 1.0])
        batches.append(batch)
    return batches


def _reference_store(graph, batches):
    """Fresh sequential build: the base graph plus every batch, once."""
    store = GraphStore()
    store.add("g", graph, similarity=SimilarityConfig(), build_index=True)
    for batch in batches:
        store.update_edges("g", insert=batch)
    return store


def _canonical(labels):
    return Clustering(
        labels=np.asarray(labels, dtype=np.int64)
    ).canonical().labels


# ----------------------------------------------------------------------
# battery A: in-process durability fault sites
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", _seeds())
def test_durability_sites_never_lose_an_acked_batch(seed, tmp_path):
    graph = gnm_random_graph(70, 180, seed=23)
    batches = _planned_inserts(graph, count=12, per_batch=3, seed=seed)
    plan = FaultPlan.random(seed, sites=_DURABILITY_SITES)
    _dump_plan(plan, "durability")

    manager = DurabilityManager(
        tmp_path, checkpoint_every=4, metrics=ServiceMetrics()
    )
    store = manager.recover().store
    store.attach_journal(manager)
    store.add(
        "g", graph, similarity=SimilarityConfig(), build_index=True
    )
    acked = []

    def _snapshot():
        entries, wal_seq = store.checkpoint_snapshot()
        return {
            "entries": entries,
            "wal_seq": wal_seq,
            "job_blobs": (),
            "update_keys": [("g", key) for key, _ in acked],
        }

    with armed(plan):
        for position, batch in enumerate(batches):
            key = f"batch-{position}"
            try:
                store.update_edges("g", insert=batch, idempotency_key=key)
            except _STRUCTURED:
                continue  # rolled back before apply: cleanly absent
            acked.append((key, batch))
            manager.note_applied(_snapshot)
    live_fingerprint = store.get("g").fingerprint
    manager.close()

    recovered = DurabilityManager(tmp_path, metrics=ServiceMetrics())
    try:
        state = recovered.recover()
        assert state.failed_records == 0, plan.to_json()
        # Acked batches all survive; unacked ones are absent — the
        # recovered store equals the live one at crash time, which
        # equals a fresh sequential build over exactly the acked stream.
        assert state.store.get("g").fingerprint == live_fingerprint
        reference = _reference_store(
            graph, [batch for _, batch in acked]
        )
        entry = reference.get("g")
        assert state.store.get("g").fingerprint == entry.fingerprint
        assert sorted(state.update_keys) == sorted(
            ("g", key) for key, _ in acked
        )
        expected = scan(entry.graph, 2, 0.5).canonical().labels
        got = scan(state.store.get("g").graph, 2, 0.5).canonical().labels
        np.testing.assert_array_equal(got, expected)
    finally:
        recovered.close()


# ----------------------------------------------------------------------
# battery B: faults during replay itself
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", _seeds())
def test_faulted_recovery_fails_structurally_then_retries_clean(
    seed, tmp_path
):
    graph = gnm_random_graph(60, 150, seed=29)
    batches = _planned_inserts(graph, count=6, per_batch=2, seed=seed)
    manager = DurabilityManager(tmp_path, checkpoint_every=1000)
    store = manager.recover().store
    store.attach_journal(manager)
    store.add("g", graph, similarity=SimilarityConfig())
    for batch in batches:
        store.update_edges("g", insert=batch)
    fingerprint = store.get("g").fingerprint
    manager.close()

    plan = FaultPlan.random(seed, sites=["recovery.replay"])
    _dump_plan(plan, "replay")
    again = DurabilityManager(tmp_path)
    try:
        with armed(plan):
            try:
                state = again.recover()
            except _STRUCTURED:
                state = None  # structured failure: allowed, retry below
        if state is None or plan.fired_total() == 0:
            state = again.recover()
        assert state.store.get("g").fingerprint == fingerprint
    finally:
        again.close()


# ----------------------------------------------------------------------
# battery C: SIGKILL a real durable server mid-stream
# ----------------------------------------------------------------------
def _spawn_serve(args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src"), env.get("PYTHONPATH", "")]
    )
    code = (
        "import sys; from repro.cli import main; "
        "sys.exit(main(['serve'] + sys.argv[1:]))"
    )
    return subprocess.Popen(
        [sys.executable, "-c", code, *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def _read_url(proc):
    line = proc.stdout.readline().strip()
    assert line.startswith("serving on http://"), (
        line or proc.stderr.read()
    )
    return line.removeprefix("serving on ")


def _reap(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=30)
    proc.stdout.close()
    proc.stderr.close()


@pytest.mark.parametrize("seed", _seeds())
def test_sigkill_mid_stream_recovers_exactly_once(seed, tmp_path):
    graph = gnm_random_graph(70, 180, seed=37)
    batches = _planned_inserts(graph, count=14, per_batch=3, seed=seed)
    chaos = _chaos_dir()
    data_dir = (
        chaos / f"sigkill-data-{seed}" if chaos is not None
        else tmp_path / "data"
    )
    rng = np.random.default_rng(seed)
    kill_after = float(rng.uniform(0.05, 1.5))
    if chaos is not None:
        (chaos / f"plan_sigkill_{seed}.json").write_text(
            json.dumps({"seed": seed, "kill_after_seconds": kill_after})
        )

    proc = _spawn_serve(
        ["--port", "0", "--workers", "1",
         "--data-dir", str(data_dir), "--checkpoint-every", "5"]
    )
    acked = set()
    try:
        url = _read_url(proc)
        client = ServiceClient(url, timeout=30.0, max_retries=0)
        client.load_graph("g", graph=graph, build_index=True)
        timer = threading.Timer(
            kill_after, lambda: proc.send_signal(signal.SIGKILL)
        )
        timer.start()
        try:
            for position, batch in enumerate(batches):
                key = f"batch-{position}"
                try:
                    client.update_edges(
                        "g", insert=batch, idempotency_key=key
                    )
                except ServiceClientError:
                    break  # the server died under us
                acked.add(position)
        finally:
            timer.cancel()
        client.close()
    finally:
        _reap(proc)

    # Cold restart with recovery, then retry EVERY batch by key: acked
    # ones must dedupe (exactly-once across the crash), unacked ones
    # apply now — afterwards the graph equals an uninterrupted build.
    proc = _spawn_serve(
        ["--port", "0", "--workers", "1",
         "--data-dir", str(data_dir), "--recover"]
    )
    try:
        url = _read_url(proc)
        client = ServiceClient(url, timeout=60.0)
        replayed = set()
        for position, batch in enumerate(batches):
            body = client.update_edges(
                "g", insert=batch, idempotency_key=f"batch-{position}"
            )
            if body.get("replayed") or body.get("recovered"):
                replayed.add(position)
        # Every acked batch was already applied; re-sending it must not
        # double-apply.  (The converse is not exact: a batch can have
        # been logged+applied right as the kill hit, before the ack.)
        assert acked <= replayed, f"lost acked batches {acked - replayed}"

        reference = _reference_store(graph, batches).get("g")
        info = client.graph_info("g")
        assert info["fingerprint"] == reference.fingerprint
        body = client.cluster("g", 2, 0.5, wait=60.0)
        assert body["state"] == "done"
        expected = scan(reference.graph, 2, 0.5).canonical().labels
        np.testing.assert_array_equal(
            _canonical(body["labels"]), expected
        )
        client.shutdown()
        assert proc.wait(timeout=60) == 0
    finally:
        _reap(proc)


def test_paused_job_survives_restart(tmp_path):
    """Satellite: pause → clean shutdown → ``--recover`` → resume →
    the exact result an uninterrupted job produces."""
    graph = gnm_random_graph(300, 1200, seed=41)
    data_dir = tmp_path / "data"
    proc = _spawn_serve(
        ["--port", "0", "--workers", "1", "--slice-iterations", "1",
         "--alpha", "16", "--beta", "16", "--data-dir", str(data_dir)]
    )
    job_id = None
    try:
        url = _read_url(proc)
        client = ServiceClient(url, timeout=60.0)
        client.load_graph("g", graph=graph)
        job_id = client.cluster("g", 2, 0.5)["job_id"]
        client.pause(job_id)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            state = client.status(job_id)["state"]
            if state == "paused":
                break
            if state == "done":
                pytest.skip("job finished before the pause landed")
            time.sleep(0.05)
        else:
            pytest.fail("job never paused")
        client.shutdown()  # clean shutdown checkpoints paused jobs
        assert proc.wait(timeout=60) == 0
    finally:
        _reap(proc)

    proc = _spawn_serve(
        ["--port", "0", "--workers", "1", "--slice-iterations", "1",
         "--alpha", "16", "--beta", "16",
         "--data-dir", str(data_dir), "--recover"]
    )
    try:
        url = _read_url(proc)
        client = ServiceClient(url, timeout=60.0)
        jobs = {job["job_id"]: job for job in client.jobs()}
        assert job_id in jobs, f"paused job lost across restart: {jobs}"
        assert jobs[job_id]["state"] == "paused"
        client.resume(job_id)
        body = client.result(job_id, wait=120.0)
        expected = scan(graph, 2, 0.5).canonical().labels
        np.testing.assert_array_equal(
            _canonical(body["labels"]), expected
        )
        client.shutdown()
        assert proc.wait(timeout=60) == 0
    finally:
        _reap(proc)


# ----------------------------------------------------------------------
# battery D: fleet writer failover
# ----------------------------------------------------------------------
def _stray_segments():
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return []
    return sorted(p.name for p in shm.glob("repro_*"))


@pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)
def test_fleet_writer_sigkill_promotes_a_shard(tmp_path):
    graph = gnm_random_graph(100, 300, seed=43)
    batches = _planned_inserts(graph, count=3, per_batch=2, seed=43)
    before_segments = set(_stray_segments())
    supervisor = ServiceSupervisor(
        None,
        processes=2,
        worker_options={"workers": 2, "slice_iterations": 2},
        data_dir=str(tmp_path / "data"),
        checkpoint_every=8,
    )
    try:
        supervisor.start().wait_ready()
        client = ServiceClient(supervisor.url, timeout=60.0)
        client.load_graph("g", graph=graph, build_index=True)
        reference = client.cluster("g", 2, 0.5, wait=60.0)
        assert reference["state"] == "done"
        client.update_edges(
            "g", insert=batches[0], idempotency_key="pre-kill"
        )

        supervisor._writer_proc.send_signal(signal.SIGKILL)
        deadline = time.monotonic() + 60
        while (
            time.monotonic() < deadline
            and supervisor._writer_index is None
        ):
            time.sleep(0.1)
        assert supervisor._writer_index is not None, "no shard promoted"

        # Reads survive the failover and stay byte-identical.
        again = client.cluster("g", 2, 0.5, wait=60.0)
        assert again["state"] == "done"

        # Mutations continue against the promoted writer, and a keyed
        # retry from before the crash still dedupes (exactly once).
        client.update_edges(
            "g", insert=batches[1], idempotency_key="post-kill"
        )
        replay = client.update_edges(
            "g", insert=batches[0], idempotency_key="pre-kill"
        )
        assert replay.get("replayed") or replay.get("recovered")

        reference_store = _reference_store(graph, batches[:2]).get("g")
        assert (
            client.graph_info("g")["fingerprint"]
            == reference_store.fingerprint
        )
        final = client.cluster("g", 2, 0.5, wait=60.0)
        expected = scan(reference_store.graph, 2, 0.5).canonical().labels
        np.testing.assert_array_equal(
            _canonical(final["labels"]), expected
        )

        merged = client.fleet_metrics()
        assert merged["counters"].get("writer_promotions", 0) >= 1
        client.close()
    finally:
        supervisor.close()
    leaked = set(_stray_segments()) - before_segments
    assert leaked == set(), f"leaked shared-memory segments: {leaked}"
