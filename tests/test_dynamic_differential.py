"""Property-based differential tests for the dynamic-update path.

Two claims, each checked against an independent reference:

* **stream ≡ fresh**: any interleaved insert/delete stream applied
  through :class:`~repro.dynamic.scan.DynamicSCAN` yields exactly the
  clustering a from-scratch sequential ``scan`` computes on the final
  graph (and the incremental σ cache matches a full recompute);
* **exact invalidation**: after a service-level ``update-edges``, the
  result cache loses precisely the entries keyed by the pre-update
  fingerprint — never a bystander graph's entries.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.scan import scan
from repro.dynamic.graph import AdjacencyGraph
from repro.dynamic.scan import DynamicSCAN
from repro.graph.builder import GraphBuilder
from repro.service.store import (
    CachedResult,
    GraphStore,
    ResultCache,
    make_cache_key,
)
from repro.similarity.index import graph_fingerprint
from repro.similarity.weighted import SimilarityConfig

_N = 12

# A stream of edge "toggles": present -> delete, absent -> insert.
# Toggling sidesteps duplicate-insert/missing-delete bookkeeping while
# still exercising arbitrary interleavings of both operations.
toggle_streams = st.lists(
    st.tuples(st.integers(0, _N - 1), st.integers(0, _N - 1)).filter(
        lambda e: e[0] != e[1]
    ),
    min_size=1,
    max_size=25,
)

seed_edges = st.lists(
    st.tuples(st.integers(0, _N - 1), st.integers(0, _N - 1)).filter(
        lambda e: e[0] != e[1]
    ),
    max_size=20,
)


def _key(u, v):
    return (u, v) if u < v else (v, u)


def _csr_of(edge_weights):
    builder = GraphBuilder(_N)
    for (u, v), w in sorted(edge_weights.items()):
        builder.add_edge(u, v, w)
    return builder.build(dedup="error")


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=seed_edges, stream=toggle_streams, mu=st.integers(2, 4))
def test_update_stream_equals_fresh_scan(seed, stream, mu):
    model = {}
    for u, v in seed:
        model[_key(u, v)] = 1.0
    dynamic = DynamicSCAN(
        AdjacencyGraph.from_csr(_csr_of(model)), mu=mu, epsilon=0.5
    )
    for u, v in stream:
        if _key(u, v) in model:
            dynamic.remove_edge(u, v)
            del model[_key(u, v)]
        else:
            dynamic.add_edge(u, v)
            model[_key(u, v)] = 1.0
    dynamic.verify_cache()  # incremental σ ≡ from-scratch σ
    fresh = _csr_of(model)
    expected = scan(fresh, mu, 0.5).canonical().labels
    got = dynamic.clustering().canonical().labels
    assert np.array_equal(got, expected)
    assert graph_fingerprint(dynamic.graph.to_csr()) == graph_fingerprint(
        fresh
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=seed_edges, stream=toggle_streams)
def test_update_edges_invalidates_exactly_affected_entries(seed, stream):
    model = {}
    for u, v in seed:
        model[_key(u, v)] = 1.0
    store = GraphStore()
    entry = store.add("target", _csr_of(model))
    cache = ResultCache(capacity=64)
    config = SimilarityConfig()

    target_keys = [
        make_cache_key(entry.fingerprint, config, mu, eps)
        for mu, eps in ((2, 0.4), (3, 0.6))
    ]
    bystander_keys = [
        make_cache_key("other-graph", config, mu, eps)
        for mu, eps in ((2, 0.4), (2, 0.7), (4, 0.5))
    ]
    blank = CachedResult(
        labels=np.zeros(_N, dtype=np.int64),
        num_clusters=0,
        sigma_evaluations=0,
        compute_seconds=0.0,
    )
    for key in target_keys + bystander_keys:
        cache.put(key, blank)

    insert = [[u, v] for u, v in stream if _key(u, v) not in model][:1]
    delete = (
        [list(next(iter(model)))] if model and not insert else []
    )
    if not insert and not delete:
        return  # nothing to mutate this example
    stats = store.update_edges("target", insert=insert, delete=delete)
    assert cache.invalidate_fingerprint(stats.old_fingerprint) == len(
        target_keys
    )
    remaining = cache.keys()
    assert len(remaining) == len(bystander_keys)
    assert all(key.fingerprint == "other-graph" for key in remaining)
    # The refreshed fingerprint keys future queries against the new
    # graph content, distinct from the invalidated generation.
    assert stats.new_fingerprint != stats.old_fingerprint
