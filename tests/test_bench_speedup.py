"""The measured-speedup bench experiment, quick mode (CI smoke)."""

import pytest

from repro.bench.__main__ import main as bench_main
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.core.parallel import MeasuredSpeedup, measured_sigma_speedups
from repro.errors import SimulationError
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.parallel.processes import FORCE_FALLBACK_ENV


class TestRegistry:
    def test_speedup_is_registered(self):
        assert "speedup" in EXPERIMENTS

    def test_quick_run_shape(self):
        tables = run_experiment("speedup", quick=True)
        assert len(tables) == 1
        table = tables[0]
        assert table.headers[0] == "backend"
        assert [h for h in table.headers[1:]] == ["t=1", "t=2"]
        backends = table.column("backend")
        assert any(b.startswith("process") for b in backends)
        assert "thread" in backends
        assert "simulated" in backends
        # Every row is normalized to its own 1-worker baseline.
        for row in table.rows:
            assert row[1] == pytest.approx(1.0)

    def test_quick_run_under_forced_fallback(self, monkeypatch):
        """The shm-off path must still produce a complete table."""
        monkeypatch.setenv(FORCE_FALLBACK_ENV, "1")
        tables = run_experiment("speedup", quick=True)
        backends = tables[0].column("backend")
        # The process row records that it degraded to threads.
        assert any("thread" in b for b in backends if b.startswith("process"))
        assert any("fell back" in note for note in tables[0].notes)


class TestBenchCli:
    def test_main_renders_table(self, capsys):
        assert bench_main(["speedup", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "measured sigma-phase speedup" in out
        assert "simulated" in out


class TestMeasuredSpeedups:
    def test_baseline_is_first_worker_count(self):
        graph = gnm_random_graph(120, 360, seed=5)
        rows = measured_sigma_speedups(
            graph, [1, 2], backend="thread", repeats=2
        )
        assert [r.workers for r in rows] == [1, 2]
        assert isinstance(rows[0], MeasuredSpeedup)
        assert rows[0].speedup == pytest.approx(1.0)
        assert all(r.kind == "thread" for r in rows)
        assert all(r.seconds > 0 for r in rows)

    def test_vertex_subset_and_chunking(self):
        graph = gnm_random_graph(120, 360, seed=5)
        rows = measured_sigma_speedups(
            graph, [1], backend="thread", vertices=[0, 1, 2], chunk_size=2
        )
        assert len(rows) == 1

    def test_empty_worker_counts_rejected(self):
        graph = gnm_random_graph(20, 40, seed=5)
        with pytest.raises(SimulationError):
            measured_sigma_speedups(graph, [])

    def test_bad_repeats_rejected(self):
        graph = gnm_random_graph(20, 40, seed=5)
        with pytest.raises(SimulationError):
            measured_sigma_speedups(graph, [1], repeats=0)
