"""Tests for graph statistics (degree, clustering coefficient, triangles)."""

import numpy as np
import pytest

from repro.graph.csr import Graph
from repro.graph.stats import (
    average_clustering,
    average_degree,
    degree_histogram,
    local_clustering,
    summarize,
    triangle_count,
)


class TestAverageDegree:
    def test_triangle(self, triangle):
        assert average_degree(triangle) == pytest.approx(2.0)

    def test_empty(self):
        assert average_degree(Graph.from_edges(0, [])) == 0.0

    def test_karate(self, karate):
        assert average_degree(karate) == pytest.approx(2 * 78 / 34)


class TestLocalClustering:
    def test_triangle_vertices_are_fully_clustered(self, triangle):
        for v in range(3):
            assert local_clustering(triangle, v) == pytest.approx(1.0)

    def test_path_has_zero(self, path_graph):
        for v in range(5):
            assert local_clustering(path_graph, v) == 0.0

    def test_star_center_zero(self, star_graph):
        assert local_clustering(star_graph, 0) == 0.0

    def test_degree_one_is_zero(self, star_graph):
        assert local_clustering(star_graph, 1) == 0.0

    def test_bridge_vertex(self, two_triangles_bridge):
        # Vertex 2 has neighbors {0, 1, 3}; only (0,1) is an edge.
        assert local_clustering(two_triangles_bridge, 2) == pytest.approx(1 / 3)


class TestAverageClustering:
    def test_exact_matches_mean_of_locals(self, karate):
        locals_ = [local_clustering(karate, v) for v in range(34)]
        assert average_clustering(karate) == pytest.approx(np.mean(locals_))

    def test_sampled_close_to_exact(self, caveman):
        exact = average_clustering(caveman)
        sampled = average_clustering(caveman, sample=60, seed=1)
        assert abs(exact - sampled) < 0.15

    def test_sample_larger_than_n_is_exact(self, triangle):
        assert average_clustering(triangle, sample=100) == pytest.approx(1.0)

    def test_empty(self):
        assert average_clustering(Graph.from_edges(0, [])) == 0.0


class TestTriangles:
    def test_single_triangle(self, triangle):
        assert triangle_count(triangle) == 1

    def test_two_triangles(self, two_triangles_bridge):
        assert triangle_count(two_triangles_bridge) == 2

    def test_path_has_none(self, path_graph):
        assert triangle_count(path_graph) == 0

    def test_k4(self):
        k4 = Graph.from_edges(
            4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        )
        assert triangle_count(k4) == 4

    def test_karate_known_value(self, karate):
        assert triangle_count(karate) == 45  # published value


class TestHistogramAndSummary:
    def test_degree_histogram_sums_to_n(self, karate):
        hist = degree_histogram(karate)
        assert hist.sum() == karate.num_vertices

    def test_histogram_empty(self):
        hist = degree_histogram(Graph.from_edges(0, []))
        assert hist.sum() == 0

    def test_summary_fields(self, karate):
        s = summarize(karate)
        assert s.num_vertices == 34
        assert s.num_edges == 78
        assert s.max_degree == 17
        assert not s.weighted
        assert 0 < s.average_clustering < 1

    def test_summary_row_renders(self, karate):
        row = summarize(karate).row("karate")
        assert "karate" in row
        assert "34" in row
