"""Shared fixtures: canonical small graphs and generated test graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.csr import Graph
from repro.graph.generators.lfr import LFRParams, lfr_graph
from repro.graph.generators.random_graphs import (
    gnm_random_graph,
    relaxed_caveman_graph,
)
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle

# Zachary's karate club (34 vertices, 78 edges) — the classic community
# detection testbed; SCAN's original paper uses networks of this flavor.
KARATE_EDGES = [
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8),
    (0, 10), (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21),
    (0, 31), (1, 2), (1, 3), (1, 7), (1, 13), (1, 17), (1, 19),
    (1, 21), (1, 30), (2, 3), (2, 7), (2, 8), (2, 9), (2, 13),
    (2, 27), (2, 28), (2, 32), (3, 7), (3, 12), (3, 13), (4, 6),
    (4, 10), (5, 6), (5, 10), (5, 16), (6, 16), (8, 30), (8, 32),
    (8, 33), (9, 33), (13, 33), (14, 32), (14, 33), (15, 32),
    (15, 33), (18, 32), (18, 33), (19, 33), (20, 32), (20, 33),
    (22, 32), (22, 33), (23, 25), (23, 27), (23, 29), (23, 32),
    (23, 33), (24, 25), (24, 27), (24, 31), (25, 31), (26, 29),
    (26, 33), (27, 33), (28, 31), (28, 33), (29, 32), (29, 33),
    (30, 32), (30, 33), (31, 32), (31, 33), (32, 33),
]


@pytest.fixture(autouse=True)
def _bench_artifacts_in_tmp(tmp_path, monkeypatch):
    """Keep bench JSON artifacts (BENCH_*.json) out of the working tree."""
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))


@pytest.fixture(scope="session")
def karate() -> Graph:
    return Graph.from_edges(34, KARATE_EDGES)


@pytest.fixture(scope="session")
def triangle() -> Graph:
    """A single triangle: the smallest graph with a SCAN cluster."""
    return Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture(scope="session")
def two_triangles_bridge() -> Graph:
    """Two triangles joined by one bridge edge (3-4)."""
    return Graph.from_edges(
        7, [(0, 1), (1, 2), (0, 2), (2, 3), (4, 5), (5, 6), (4, 6), (3, 4)]
    )


@pytest.fixture(scope="session")
def path_graph() -> Graph:
    """A path — no triangles, so σ between neighbors is low."""
    return Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture(scope="session")
def star_graph() -> Graph:
    """A 6-leaf star: hub vertex with no closed triangles."""
    return Graph.from_edges(7, [(0, i) for i in range(1, 7)])


@pytest.fixture(scope="session")
def weighted_triangle() -> Graph:
    builder = GraphBuilder(3)
    builder.add_edge(0, 1, 2.0)
    builder.add_edge(1, 2, 0.5)
    builder.add_edge(0, 2, 1.0)
    return builder.build()


@pytest.fixture(scope="session")
def lfr_small() -> Graph:
    graph, _ = lfr_graph(
        LFRParams(n=300, average_degree=10, max_degree=30, mixing=0.25, seed=5)
    )
    return graph


@pytest.fixture(scope="session")
def lfr_medium() -> Graph:
    graph, _ = lfr_graph(
        LFRParams(n=800, average_degree=14, max_degree=60, mixing=0.3, seed=9)
    )
    return graph


@pytest.fixture(scope="session")
def caveman() -> Graph:
    return relaxed_caveman_graph(10, 8, 0.15, seed=3)


@pytest.fixture(scope="session")
def random_sparse() -> Graph:
    return gnm_random_graph(200, 600, seed=13)


@pytest.fixture()
def oracle(karate) -> SimilarityOracle:
    return SimilarityOracle(karate, SimilarityConfig())


def make_oracle(graph: Graph, **kwargs) -> SimilarityOracle:
    """Helper for tests needing a custom-config oracle."""
    return SimilarityOracle(graph, SimilarityConfig(**kwargs))


def brute_force_sigma(graph: Graph, p: int, q: int, *, closed=True, sw=1.0):
    """Independent O(n) σ implementation used to validate the oracle."""
    def closed_items(v):
        items = {
            int(u): float(w)
            for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v))
        }
        if closed:
            items[v] = sw
        return items

    a, b = closed_items(p), closed_items(q)
    num = sum(w * b[r] for r, w in a.items() if r in b)
    la = sum(w * w for w in a.values())
    lb = sum(w * w for w in b.values())
    denom = np.sqrt(la * lb)
    return num / denom if denom else 0.0
