"""Integration tests: cross-module flows a downstream user would run."""

import numpy as np
import pytest

from repro import (
    AnyScanConfig,
    AnySCAN,
    AnytimeRunner,
    Clustering,
    Graph,
    MachineSpec,
    ParallelAnySCAN,
    SimilarityConfig,
    SimilarityOracle,
    equivalent_clusterings,
    nmi,
    pscan,
    scan,
)
from repro.graph.generators import (
    LFRParams,
    assign_community_weights,
    lfr_graph,
)
from repro.graph.io import load_edge_list, save_edge_list


class TestEndToEndCommunityDetection:
    def test_lfr_communities_recovered(self):
        graph, truth = lfr_graph(
            LFRParams(n=500, average_degree=12, max_degree=40,
                      mixing=0.1, seed=21)
        )
        result = AnySCAN(
            graph, AnyScanConfig(mu=3, epsilon=0.4, record_costs=False)
        ).run()
        # At low mixing, SCAN clusters align well with planted communities
        # on the clustered vertices.
        members = result.clustered_vertices
        assert members.shape[0] > 0.5 * graph.num_vertices
        score = nmi(truth[members], result.labels[members])
        assert score > 0.6

    def test_weighted_graph_sharpens_communities(self):
        graph, truth = lfr_graph(
            LFRParams(n=400, average_degree=12, max_degree=40,
                      mixing=0.35, seed=22)
        )
        weighted = assign_community_weights(
            graph, truth, intra=1.0, inter=0.2, jitter=0.0
        )
        plain = AnySCAN(
            graph, AnyScanConfig(mu=4, epsilon=0.5, record_costs=False)
        ).run()
        sharp = AnySCAN(
            weighted, AnyScanConfig(mu=4, epsilon=0.5, record_costs=False)
        ).run()

        # Heavier intra-community weights let SCAN recover far more of the
        # planted structure: more member vertices at comparable accuracy.
        assert (
            sharp.clustered_vertices.shape[0]
            > plain.clustered_vertices.shape[0]
        )
        assert nmi(truth, sharp.labels) > nmi(truth, plain.labels)


class TestFileToClustersFlow:
    def test_save_load_cluster_compare(self, lfr_medium, tmp_path):
        path = tmp_path / "graph.txt"
        save_edge_list(lfr_medium, path)
        loaded, label_map = load_edge_list(path)
        # Loading relabels vertices in first-seen order; the topology must
        # survive the permutation.
        assert loaded.num_vertices == lfr_medium.num_vertices
        assert loaded.num_edges == lfr_medium.num_edges
        to_new = {int(old): new for old, new in label_map.items()}
        for u, v, _ in lfr_medium.edges():
            assert loaded.has_edge(to_new[u], to_new[v])

        oracle = SimilarityOracle(loaded, SimilarityConfig())
        a = scan(loaded, 4, 0.5, seed=1)
        b = pscan(loaded, 4, 0.5)
        c = AnySCAN(
            loaded, AnyScanConfig(mu=4, epsilon=0.5, record_costs=False)
        ).run()
        assert equivalent_clusterings(loaded, oracle, a, b, 4, 0.5)
        assert equivalent_clusterings(loaded, oracle, a, c, 4, 0.5)


class TestInteractiveSession:
    def test_suspend_inspect_resume(self, lfr_medium):
        algo = AnySCAN(
            lfr_medium,
            AnyScanConfig(mu=4, epsilon=0.5, alpha=48, beta=48,
                          record_costs=False),
        )
        runner = AnytimeRunner(algo)
        # Phase 1: run a little, inspect.
        early = runner.run_until(max_iterations=3)
        early_clusters = early.clustering()
        assert isinstance(early_clusters, Clustering)
        # Phase 2: resume to the exact result.
        final = runner.finish()
        assert final.final
        assert final.num_clusters >= early.num_clusters - 5
        # The final result is exact.
        reference = scan(lfr_medium, 4, 0.5, seed=1)
        oracle = SimilarityOracle(lfr_medium, SimilarityConfig())
        assert equivalent_clusterings(
            lfr_medium, oracle, reference, algo.result(), 4, 0.5
        )


class TestParallelFlow:
    def test_cluster_then_project_scalability(self, lfr_medium):
        par = ParallelAnySCAN(
            lfr_medium,
            AnyScanConfig(mu=4, epsilon=0.5, alpha=100, beta=100),
            machine=MachineSpec(threads=1, numa_penalty=0.1),
        )
        result = par.run()
        assert result.num_clusters > 0
        speedups = par.speedups([2, 4, 8, 16])
        assert speedups[16] > 4.0  # meaningful scalability at 16 threads
        report = par.report(8)
        # Interactive reading: time to the first snapshot is a fraction
        # of the total (the "stop early, save compute" story).
        assert report.cumulative_times[0] < report.total_time
