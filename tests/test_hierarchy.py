"""Tests for the ε-dendrogram."""

import numpy as np
import pytest

from repro.core.explorer import ParameterExplorer
from repro.core.hierarchy import EpsilonHierarchy
from repro.errors import ConfigError
from repro.metrics import true_core_mask
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle


@pytest.fixture(scope="module")
def hierarchy(caveman):
    return EpsilonHierarchy(caveman, mu=3)


def explorer_core_partition(explorer, mu, eps):
    """Reference core partition straight from the σ table."""
    clustering = explorer.clustering_at(mu, eps)
    cores = explorer.cores_at(mu, eps)
    parts = {}
    for v in np.flatnonzero(cores):
        parts.setdefault(int(clustering.labels[int(v)]), set()).add(int(v))
    return {frozenset(s) for s in parts.values()}


class TestConstruction:
    def test_nodes_exist(self, hierarchy):
        assert hierarchy.num_nodes > 0

    def test_leaves_match_potential_cores(self, hierarchy, caveman):
        leaves = [n for n in hierarchy.nodes.values() if not n.children]
        potential = np.flatnonzero(
            hierarchy.explorer.core_thresholds(3) > 0
        )
        assert len(leaves) == potential.shape[0]

    def test_birth_above_death(self, hierarchy):
        for node in hierarchy.nodes.values():
            assert node.birth >= node.death

    def test_children_die_at_parent_birth(self, hierarchy):
        for node in hierarchy.nodes.values():
            for child_id in node.children:
                assert hierarchy.nodes[child_id].death == pytest.approx(
                    node.birth
                )

    def test_sizes_additive(self, hierarchy):
        for node in hierarchy.nodes.values():
            if node.children:
                assert node.size == sum(
                    hierarchy.nodes[c].size for c in node.children
                )

    def test_invalid_mu(self, triangle):
        with pytest.raises(ConfigError):
            EpsilonHierarchy(triangle, mu=0)


class TestCuts:
    @pytest.mark.parametrize("eps", [0.3, 0.5, 0.7, 0.9])
    def test_core_partition_matches_explorer(self, hierarchy, eps):
        from_tree = set(hierarchy.core_partition_at(eps))
        from_table = explorer_core_partition(hierarchy.explorer, 3, eps)
        assert from_tree == from_table

    @pytest.mark.parametrize("eps", [0.4, 0.6])
    def test_cut_is_exact_scan(self, caveman, hierarchy, eps):
        from repro.baselines import scan
        from repro.metrics.comparison import explain_difference

        oracle = SimilarityOracle(caveman, SimilarityConfig())
        reference = scan(caveman, 3, eps, seed=1)
        result = hierarchy.cut(eps)
        assert not explain_difference(
            caveman, oracle, reference, result, 3, eps
        )

    def test_cut_monotone_cluster_count(self, hierarchy):
        # Lower ε can only merge clusters / add cores, so the number of
        # *core-partition* clusters at a lower ε with identical core set
        # is no larger... global count may also grow from new singleton
        # cores; check the merge-only property through the tree instead:
        for node in hierarchy.nodes.values():
            if node.children:
                # A merge node strictly reduces the cluster count at its
                # birth level relative to just above it.
                above = len(hierarchy.core_partition_at(
                    min(node.birth + 1e-9, 1.0)
                ))
                at = len(hierarchy.core_partition_at(node.birth))
                assert at <= above + 2  # new cores may also appear
                break

    def test_invalid_epsilon(self, hierarchy):
        with pytest.raises(ConfigError):
            hierarchy.core_partition_at(0.0)


class TestPersistence:
    def test_table_sorted(self, hierarchy):
        table = hierarchy.persistence_table()
        values = [row[2] for row in table]
        assert values == sorted(values, reverse=True)

    def test_min_size_filter(self, hierarchy):
        table = hierarchy.persistence_table(min_size=5)
        assert all(row[3] >= 5 for row in table)

    def test_caveman_cliques_are_persistent(self, caveman, hierarchy):
        # The 10 cliques should appear among the most persistent
        # non-trivial clusters.
        table = hierarchy.persistence_table(min_size=4)
        assert len(table) >= 5

    def test_roots_never_die(self, hierarchy):
        for root in hierarchy.roots():
            assert root.death == 0.0


class TestSuggestCut:
    def test_in_range(self, hierarchy):
        eps = hierarchy.suggest_cut()
        assert 0.0 < eps <= 1.0

    def test_yields_clusters(self, hierarchy):
        eps = hierarchy.suggest_cut(min_clusters=2)
        assert len(hierarchy.core_partition_at(eps)) >= 2

    def test_caveman_cut_recovers_cliques(self, caveman):
        hierarchy = EpsilonHierarchy(caveman, mu=3)
        eps = hierarchy.suggest_cut(min_clusters=5)
        clustering = hierarchy.cut(eps)
        # Most cliques should be recovered as distinct clusters.
        assert clustering.num_clusters >= 5

    def test_levels_descending(self, hierarchy):
        levels = hierarchy.levels()
        assert np.all(np.diff(levels) < 0)
