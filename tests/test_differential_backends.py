"""Cross-backend differential battery: one clustering, three executions.

The conformance contract of the PR: sequential ``scan``, ``parallel_scan``
on the thread backend, and ``parallel_scan`` on the shared-memory process
backend must produce **byte-identical** labels and roles for the same
seed, on every graph family and every (ε, μ) cell of the grid.  AnySCAN
is held to the paper's own equivalence (Lemma 4): identical member sets,
identical core partition, valid border attachments — shared borders may
legitimately land in a different cluster.
"""

import numpy as np
import pytest

from repro.baselines.scan import scan
from repro.core import AnySCAN, AnyScanConfig
from repro.core.backend_scan import parallel_scan
from repro.graph.generators.lfr import LFRParams, lfr_graph
from repro.graph.generators.random_graphs import (
    gnm_random_graph,
    planted_partition_graph,
)
from repro.metrics.comparison import explain_difference
from repro.parallel.processes import ProcessBackend, shared_memory_available
from repro.parallel.threads import ThreadBackend
from repro.similarity.index import EdgeSimilarityIndex, IndexedOracle
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle

GRID = [(0.3, 2), (0.5, 3), (0.7, 4)]  # (epsilon, mu)


def _lfr():
    graph, _ = lfr_graph(
        LFRParams(n=200, average_degree=8, max_degree=24, mixing=0.2, seed=9)
    )
    return graph


GRAPHS = {
    "gnm": lambda: gnm_random_graph(150, 450, seed=21),
    "planted": lambda: planted_partition_graph(
        [40, 40, 40], 0.30, 0.02, seed=22
    ),
    "lfr": _lfr,
}


@pytest.fixture(scope="module", params=sorted(GRAPHS))
def family(request):
    return request.param, GRAPHS[request.param]()


@pytest.fixture(scope="module")
def process_pool():
    if not shared_memory_available():
        pytest.skip("POSIX shared memory unavailable")
    with ProcessBackend(workers=2, chunk_size=32) as backend:
        yield backend


class TestByteIdenticalExecutions:
    @pytest.mark.parametrize("eps,mu", GRID)
    def test_thread_matches_sequential(self, family, eps, mu):
        _, graph = family
        ref = scan(graph, mu, eps, seed=0)
        got = parallel_scan(
            graph,
            mu,
            eps,
            backend=ThreadBackend(threads=3, chunk_size=13),
            seed=0,
        )
        np.testing.assert_array_equal(ref.labels, got.labels)
        np.testing.assert_array_equal(ref.roles, got.roles)

    @pytest.mark.parametrize("eps,mu", GRID)
    def test_process_matches_sequential(self, family, eps, mu, process_pool):
        _, graph = family
        ref = scan(graph, mu, eps, seed=0)
        got = parallel_scan(graph, mu, eps, backend=process_pool, seed=0)
        np.testing.assert_array_equal(ref.labels, got.labels)
        np.testing.assert_array_equal(ref.roles, got.roles)

    def test_identity_holds_across_seeds(self, family, process_pool):
        _, graph = family
        for seed in (1, 7):
            ref = scan(graph, 3, 0.5, seed=seed)
            got = parallel_scan(
                graph, 3, 0.5, backend=process_pool, seed=seed
            )
            np.testing.assert_array_equal(ref.labels, got.labels)

    def test_worker_and_chunk_counts_are_invisible(self, family):
        """Same labels whatever the pool geometry (thread side; the
        process side is pinned by test_process_matches_sequential)."""
        _, graph = family
        ref = scan(graph, 3, 0.5, seed=0)
        for threads, chunk in [(1, 1), (2, 7), (4, graph.num_vertices)]:
            got = parallel_scan(
                graph,
                3,
                0.5,
                backend=ThreadBackend(threads=threads, chunk_size=chunk),
                seed=0,
            )
            np.testing.assert_array_equal(ref.labels, got.labels)


class _ScalarReferenceOracle(SimilarityOracle):
    """The pre-kernel per-pair ε-neighborhood loop, kept as a reference."""

    def eps_neighborhood(self, p, epsilon):
        neighbors = self.graph.neighbors(int(p))
        passing = [
            int(q)
            for q in neighbors
            if self.sigma_unrecorded(int(p), int(q)) >= epsilon
        ]
        return np.asarray(passing, dtype=np.int64)


class TestIndexedExecutions:
    """The batched kernels and the σ index leave results byte-identical."""

    @pytest.mark.parametrize("eps,mu", GRID)
    def test_batched_oracle_matches_scalar_loop(self, family, eps, mu):
        _, graph = family
        ref = scan(
            graph,
            mu,
            eps,
            oracle=_ScalarReferenceOracle(
                graph, SimilarityConfig(pruning=False)
            ),
            seed=0,
        )
        got = scan(graph, mu, eps, seed=0)
        np.testing.assert_array_equal(ref.labels, got.labels)
        np.testing.assert_array_equal(ref.roles, got.roles)

    @pytest.mark.parametrize("eps,mu", GRID)
    def test_indexed_scan_matches_sequential(self, family, eps, mu):
        _, graph = family
        config = SimilarityConfig(pruning=False)
        index = EdgeSimilarityIndex.build(graph, config)
        ref = scan(graph, mu, eps, seed=0)
        got = scan(
            graph, mu, eps, oracle=IndexedOracle(index, config=config), seed=0
        )
        np.testing.assert_array_equal(ref.labels, got.labels)
        np.testing.assert_array_equal(ref.roles, got.roles)

    @pytest.mark.parametrize("eps,mu", GRID)
    def test_parallel_scan_with_index_matches_sequential(
        self, family, eps, mu
    ):
        _, graph = family
        index = EdgeSimilarityIndex.build(
            graph, SimilarityConfig(pruning=False)
        )
        ref = scan(graph, mu, eps, seed=0)
        got = parallel_scan(graph, mu, eps, index=index, seed=0)
        np.testing.assert_array_equal(ref.labels, got.labels)
        np.testing.assert_array_equal(ref.roles, got.roles)

    def test_index_builds_are_bitwise_identical_across_backends(
        self, family, process_pool
    ):
        _, graph = family
        config = SimilarityConfig(pruning=False)
        inproc = EdgeSimilarityIndex.build(graph, config).sigmas
        threaded = EdgeSimilarityIndex.build(
            graph,
            config,
            backend=ThreadBackend(threads=3, chunk_size=17),
        ).sigmas
        processed = EdgeSimilarityIndex.build(
            graph, config, backend=process_pool
        ).sigmas
        np.testing.assert_array_equal(inproc, threaded)
        np.testing.assert_array_equal(inproc, processed)

    def test_indexed_requery_performs_no_sigma_evaluations(self, family):
        _, graph = family
        config = SimilarityConfig(pruning=False)
        index = EdgeSimilarityIndex.build(graph, config)
        oracle = IndexedOracle(index, config=config)
        for eps, mu in GRID:
            scan(graph, mu, eps, oracle=oracle, seed=0)
        assert oracle.counters.sigma_evaluations == 0
        assert oracle.counters.work_units == 0.0
        assert oracle.index_lookups > 0


class TestAnyScanEquivalence:
    @pytest.mark.parametrize("eps,mu", GRID)
    def test_anyscan_is_scan_equivalent(self, family, eps, mu):
        _, graph = family
        ref = scan(graph, mu, eps, seed=0)
        block = max(graph.num_vertices // 6, 16)
        result = AnySCAN(
            graph,
            AnyScanConfig(mu=mu, epsilon=eps, alpha=block, beta=block),
        ).run()
        oracle = SimilarityOracle(graph, SimilarityConfig(pruning=False))
        problems = explain_difference(graph, oracle, ref, result, mu, eps)
        assert problems == [], "\n".join(problems)
        # Member/noise sets are order-independent and must agree exactly.
        # anySCAN may *under-report* cores it never had to range-query
        # (a claimed border skips the check), so its core set is a sound
        # subset of SCAN's exact one, never a superset.
        assert set(ref.unclustered.tolist()) == set(
            result.unclustered.tolist()
        )
        assert set(result.cores().tolist()) <= set(ref.cores().tolist())
