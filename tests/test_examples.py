"""Smoke test: the quickstart example must stay runnable and correct.

The heavier examples (LFR generation, parallel sweeps) are exercised
manually / by the bench suite; quickstart is the advertised first
contact with the library and is cheap enough for the unit suite.
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def test_quickstart_runs_and_finds_the_structure():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    out = proc.stdout
    assert "2 clusters" in out
    assert "vertex 4 is a HUB" in out
    assert "vertex 9 is an OUTLIER" in out


def test_all_examples_compile():
    import py_compile

    for script in sorted(EXAMPLES.glob("*.py")):
        py_compile.compile(str(script), doraise=True)
