"""Tests for the unsupervised quality metrics."""

import numpy as np
import pytest

from repro.graph.csr import Graph
from repro.metrics.quality import (
    conductance,
    coverage,
    modularity,
    quality_report,
)
from repro.result import Clustering, OUTLIER


def clustering(labels):
    return Clustering(labels=np.asarray(labels, dtype=np.int64))


@pytest.fixture(scope="module")
def two_cliques():
    # Two 4-cliques joined by a single edge.
    edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
    edges += [(a, b) for a in range(4, 8) for b in range(a + 1, 8)]
    edges.append((3, 4))
    return Graph.from_edges(8, edges)


GOOD = [0, 0, 0, 0, 1, 1, 1, 1]
BAD = [0, 1, 0, 1, 0, 1, 0, 1]


class TestModularity:
    def test_good_split_positive(self, two_cliques):
        assert modularity(two_cliques, clustering(GOOD)) > 0.3

    def test_bad_split_lower(self, two_cliques):
        good = modularity(two_cliques, clustering(GOOD))
        bad = modularity(two_cliques, clustering(BAD))
        assert bad < good

    def test_single_cluster_zero(self, two_cliques):
        q = modularity(two_cliques, clustering([0] * 8))
        assert q == pytest.approx(0.0, abs=1e-9)

    def test_all_noise(self, two_cliques):
        q = modularity(two_cliques, clustering([OUTLIER] * 8))
        assert q <= 0.0 + 1e-9

    def test_empty_graph(self):
        assert modularity(Graph.from_edges(0, []), clustering([])) == 0.0

    def test_weighted_edges_respected(self, weighted_triangle):
        q = modularity(weighted_triangle, clustering([0, 0, 1]))
        q_all = modularity(weighted_triangle, clustering([0, 0, 0]))
        assert q <= q_all + 1e-9


class TestConductance:
    def test_isolated_cluster_zero(self, two_cliques):
        # Pretend only the first clique is clustered, including edge 3-4
        # leaving it.
        labels = [0, 0, 0, 0, OUTLIER, OUTLIER, OUTLIER, OUTLIER]
        cond = conductance(two_cliques, clustering(labels))
        assert 0 < cond[0] < 0.2  # one escaping edge over volume 13

    def test_good_split_low(self, two_cliques):
        cond = conductance(two_cliques, clustering(GOOD))
        assert all(v < 0.2 for v in cond.values())

    def test_bad_split_high(self, two_cliques):
        good = conductance(two_cliques, clustering(GOOD))
        bad = conductance(two_cliques, clustering(BAD))
        assert min(bad.values()) > max(good.values())

    def test_no_clusters(self, two_cliques):
        assert conductance(two_cliques, clustering([OUTLIER] * 8)) == {}


class TestCoverage:
    def test_full_coverage(self, two_cliques):
        assert coverage(two_cliques, clustering([0] * 8)) == pytest.approx(1.0)

    def test_good_split(self, two_cliques):
        # 12 of 13 edges are inside clusters.
        assert coverage(two_cliques, clustering(GOOD)) == pytest.approx(
            12 / 13
        )

    def test_no_clusters_zero(self, two_cliques):
        assert coverage(two_cliques, clustering([OUTLIER] * 8)) == 0.0


class TestReport:
    def test_report_keys_and_ranges(self, two_cliques):
        report = quality_report(two_cliques, clustering(GOOD))
        assert set(report) == {
            "modularity",
            "coverage",
            "mean_conductance",
            "num_clusters",
            "clustered_fraction",
        }
        assert report["num_clusters"] == 2
        assert report["clustered_fraction"] == 1.0
        assert 0 <= report["coverage"] <= 1

    def test_report_with_scan_result(self, lfr_small):
        from repro.baselines import scan

        result = scan(lfr_small, 4, 0.5, seed=1)
        report = quality_report(lfr_small, result)
        assert report["num_clusters"] == result.num_clusters
        assert -1 <= report["modularity"] <= 1
