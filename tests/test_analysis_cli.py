"""CLI contract for ``python -m repro.analysis``.

The acceptance gate: exit 0 on the shipped tree, exit 1 on every
seeded-violation fixture, exit 2 on usage errors.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.__main__ import main

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures" / "analysis"
FIXTURE_CONFIG = FIXTURES / "pyproject.toml"


def run_cli(*argv):
    """Run main() in-process, capturing stdout."""
    import io
    from contextlib import redirect_stderr, redirect_stdout

    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(list(argv))
    return code, out.getvalue(), err.getvalue()


class TestExitCodes:
    def test_shipped_tree_is_clean_subprocess(self):
        """The literal acceptance command, run exactly as CI runs it."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src/repro"],
            cwd=REPO,
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    @pytest.mark.parametrize(
        "fixture",
        ["viol_r1.py", "viol_r2.py", "viol_r3.py", "viol_r4.py",
         "viol_generic.py"],
    )
    def test_each_seeded_fixture_fails(self, fixture):
        code, out, _ = run_cli(
            str(FIXTURES / fixture), "--config", str(FIXTURE_CONFIG)
        )
        assert code == 1
        assert fixture in out

    def test_clean_fixture_passes(self):
        code, out, _ = run_cli(
            str(FIXTURES / "clean.py"), "--config", str(FIXTURE_CONFIG)
        )
        assert code == 0
        assert out == ""

    def test_missing_path_is_usage_error(self):
        code, _, err = run_cli("no/such/dir")
        assert code == 2
        assert "no such path" in err

    def test_unknown_rule_id_is_usage_error(self):
        code, _, err = run_cli(str(FIXTURES / "clean.py"), "--select", "R9")
        assert code == 2
        assert "unknown rule id" in err

    def test_bad_config_is_usage_error(self, tmp_path):
        bad = tmp_path / "pyproject.toml"
        bad.write_text("[tool.repro-analysis]\nnot-a-key = 1\n")
        code, _, err = run_cli(
            str(FIXTURES / "clean.py"), "--config", str(bad)
        )
        assert code == 2
        assert "not-a-key" in err


class TestOptions:
    def test_select_restricts_rules(self):
        code, out, _ = run_cli(
            str(FIXTURES / "viol_generic.py"),
            "--config", str(FIXTURE_CONFIG),
            "--select", "R1,R2,R3,R4",
        )
        assert code == 0
        assert out == ""

    def test_disable_drops_rules(self):
        code, out, _ = run_cli(
            str(FIXTURES / "viol_r2.py"),
            "--config", str(FIXTURE_CONFIG),
            "--disable", "R2",
        )
        assert code == 0, out

    def test_json_format(self):
        code, out, _ = run_cli(
            str(FIXTURES / "viol_r2.py"),
            "--config", str(FIXTURE_CONFIG),
            "--format", "json",
        )
        assert code == 1
        payload = json.loads(out)
        assert payload["tool"]["name"] == "repro-analysis"
        findings = payload["findings"]
        assert {f["rule"] for f in findings} == {"R2"}
        assert all(
            {"path", "line", "col", "message"} <= set(f) for f in findings
        )
        assert payload["summary"]["total"] == len(findings)

    def test_list_rules(self):
        code, out, _ = run_cli("--list-rules")
        assert code == 0
        for rule_id in ("R1", "R2", "R3", "R4", "G1", "G2", "G3"):
            assert rule_id in out

    def test_text_format_reports_location(self):
        code, out, _ = run_cli(
            str(FIXTURES / "viol_r2.py"), "--config", str(FIXTURE_CONFIG)
        )
        assert code == 1
        first = out.splitlines()[0]
        # path:line:col: RULE message
        assert first.count(":") >= 3
        assert " R2 " in first
