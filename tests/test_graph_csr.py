"""Tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import Graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_empty_graph(self):
        g = Graph.from_edges(0, [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_isolated_vertices(self):
        g = Graph.from_edges(5, [(0, 1)])
        assert g.degree(4) == 0
        assert g.neighbors(4).shape[0] == 0

    def test_edges_with_weights(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)], weights=[2.0, 0.5])
        assert g.edge_weight(0, 1) == 2.0
        assert g.edge_weight(2, 1) == 0.5  # symmetric lookup

    def test_weights_length_mismatch_raises(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(0, 1), (1, 2)], weights=[1.0])

    def test_duplicate_edge_raises(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(0, 1), (1, 0)])

    def test_self_loop_raises(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(0, 0)])

    def test_vertex_out_of_range_grows_graph(self):
        # from_edges uses the builder, which grows the vertex range.
        g = Graph.from_edges(2, [(0, 5)])
        assert g.num_vertices == 6

    def test_invalid_indptr_rejected(self):
        with pytest.raises(GraphError):
            Graph(
                np.array([1, 2]),
                np.array([0]),
                np.array([1.0]),
            )

    def test_unsorted_neighbors_rejected(self):
        indptr = np.array([0, 2, 3, 4])  # wrong: unsorted row for vertex 0
        indices = np.array([2, 1, 0, 0])
        weights = np.ones(4)
        with pytest.raises(GraphError):
            Graph(indptr, indices, weights)

    def test_negative_weight_rejected(self):
        indptr = np.array([0, 1, 2])
        indices = np.array([1, 0])
        weights = np.array([-1.0, -1.0])
        with pytest.raises(GraphError):
            Graph(indptr, indices, weights)


class TestAccessors:
    def test_neighbors_sorted(self, karate):
        for v in range(karate.num_vertices):
            row = karate.neighbors(v)
            assert np.all(np.diff(row) > 0)

    def test_degree_matches_neighbors(self, karate):
        for v in range(karate.num_vertices):
            assert karate.degree(v) == karate.neighbors(v).shape[0]

    def test_degrees_vector(self, karate):
        degrees = karate.degrees
        assert degrees.sum() == 2 * karate.num_edges
        assert degrees[33] == 17  # the karate instructor

    def test_has_edge_symmetric(self, karate):
        assert karate.has_edge(0, 1)
        assert karate.has_edge(1, 0)
        assert not karate.has_edge(0, 33)

    def test_has_edge_self(self, karate):
        assert not karate.has_edge(3, 3)

    def test_edge_weight_missing_raises(self, karate):
        with pytest.raises(GraphError):
            karate.edge_weight(0, 33)

    def test_edges_iterates_each_once(self, karate):
        edges = list(karate.edges())
        assert len(edges) == karate.num_edges
        assert all(u < v for u, v, _ in edges)
        assert len(set((u, v) for u, v, _ in edges)) == len(edges)

    def test_vertex_out_of_range(self, karate):
        with pytest.raises(GraphError):
            karate.neighbors(99)
        with pytest.raises(GraphError):
            karate.degree(-1)

    def test_len_is_vertices(self, karate):
        assert len(karate) == 34

    def test_is_weighted(self, karate, weighted_triangle):
        assert not karate.is_weighted
        assert weighted_triangle.is_weighted

    def test_total_weight(self, weighted_triangle):
        assert weighted_triangle.total_weight == pytest.approx(3.5)


class TestTransformations:
    def test_with_unit_weights(self, weighted_triangle):
        g = weighted_triangle.with_unit_weights()
        assert not g.is_weighted
        assert g.num_edges == weighted_triangle.num_edges

    def test_subgraph_keeps_internal_edges(self, two_triangles_bridge):
        sub = two_triangles_bridge.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # the first triangle

    def test_subgraph_drops_external_edges(self, two_triangles_bridge):
        sub = two_triangles_bridge.subgraph([2, 3])
        assert sub.num_edges == 1  # only (2, 3)

    def test_subgraph_out_of_range(self, triangle):
        with pytest.raises(GraphError):
            triangle.subgraph([0, 7])

    def test_equality_and_hash(self, triangle):
        other = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert triangle == other
        assert hash(triangle) == hash(other)

    def test_inequality_different_weights(self, triangle, weighted_triangle):
        assert triangle != weighted_triangle
