"""The backend registry: name resolution, construction, dispatch."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.parallel.backends import (
    BACKEND_NAMES,
    backend_kind,
    close_backend,
    create_backend,
    resolve_backend_name,
    run_edge_similarities,
    run_neighbor_updates,
    run_range_queries,
)
from repro.parallel.processes import FORCE_FALLBACK_ENV, ProcessBackend
from repro.parallel.threads import ThreadBackend

EPS = 0.4


@pytest.fixture(scope="module")
def small():
    return gnm_random_graph(80, 240, seed=11)


class TestResolution:
    def test_explicit_names_pass_through(self):
        assert resolve_backend_name("thread") == "thread"
        assert resolve_backend_name("process") == "process"

    def test_auto_resolves_to_a_concrete_name(self):
        assert resolve_backend_name("auto") in ("thread", "process")

    def test_auto_avoids_processes_without_shared_memory(self, monkeypatch):
        monkeypatch.setenv(FORCE_FALLBACK_ENV, "1")
        assert resolve_backend_name("auto") == "thread"

    def test_unknown_name_raises(self):
        with pytest.raises(SimulationError, match="unknown backend"):
            resolve_backend_name("gpu")

    def test_registry_names_are_stable(self):
        assert BACKEND_NAMES == ("thread", "process", "auto")


class TestConstruction:
    def test_thread_backend_with_defaults(self):
        backend = create_backend("thread", workers=3)
        assert isinstance(backend, ThreadBackend)
        assert backend.threads == 3
        assert backend.chunk_size == 64
        assert backend_kind(backend) == "thread"
        close_backend(backend)  # no-op, must not raise

    def test_process_backend_with_defaults(self):
        backend = create_backend("process", workers=2)
        assert isinstance(backend, ProcessBackend)
        assert backend.workers == 2
        assert backend.chunk_size == 256
        close_backend(backend)

    def test_chunk_size_forwarded(self):
        thread = create_backend("thread", chunk_size=7)
        process = create_backend("process", chunk_size=7)
        assert thread.chunk_size == 7
        assert process.chunk_size == 7
        close_backend(process)


class TestDispatch:
    @pytest.fixture(scope="class")
    def backends(self, small):
        thread = create_backend("thread", workers=2)
        process = create_backend("process", workers=2, chunk_size=16)
        yield {"thread": thread, "process": process}
        close_backend(process)

    def test_range_queries_agree(self, small, backends):
        results = {
            name: run_range_queries(small, range(small.num_vertices), EPS,
                                    backend=backend)
            for name, backend in backends.items()
        }
        for a, b in zip(results["thread"], results["process"]):
            np.testing.assert_array_equal(a, b)

    def test_edge_similarities_agree(self, small, backends):
        edges = [(0, int(q)) for q in small.neighbors(0)]
        results = {
            name: run_edge_similarities(small, edges, backend=backend)
            for name, backend in backends.items()
        }
        np.testing.assert_allclose(results["thread"], results["process"])

    def test_neighbor_updates_agree(self, small, backends):
        counts = {}
        for name, backend in backends.items():
            _, counts[name] = run_neighbor_updates(
                small, range(small.num_vertices), EPS, backend=backend
            )
        np.testing.assert_array_equal(counts["thread"], counts["process"])

    def test_epsilon_validated_before_dispatch(self, small, backends):
        with pytest.raises(ConfigError):
            run_range_queries(
                small, [0], 1.5, backend=backends["thread"]
            )
