"""Tests for the real-threads backend (result parity, not speed)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.parallel.threads import (
    ThreadBackend,
    parallel_edge_similarities,
    parallel_range_queries,
)
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle


class TestBackend:
    def test_map_preserves_order(self):
        backend = ThreadBackend(threads=4, chunk_size=3)
        out = backend.map(lambda x: x * 2, list(range(100)))
        assert out == [x * 2 for x in range(100)]

    def test_single_thread_path(self):
        backend = ThreadBackend(threads=1)
        assert backend.map(str, [1, 2]) == ["1", "2"]

    def test_small_input_runs_inline(self):
        backend = ThreadBackend(threads=8, chunk_size=64)
        assert backend.map(lambda x: -x, [5]) == [-5]

    def test_exceptions_propagate(self):
        backend = ThreadBackend(threads=2, chunk_size=1)

        def boom(x):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            backend.map(boom, list(range(10)))

    def test_validation(self):
        with pytest.raises(SimulationError):
            ThreadBackend(threads=0).validate()
        with pytest.raises(SimulationError):
            ThreadBackend(threads=1, chunk_size=0).validate()


class TestParallelQueries:
    def test_range_queries_match_sequential(self, karate):
        oracle = SimilarityOracle(karate, SimilarityConfig())
        expected = [oracle.eps_neighborhood(v, 0.5) for v in range(34)]
        parallel = parallel_range_queries(
            karate, list(range(34)), 0.5,
            backend=ThreadBackend(threads=4, chunk_size=5),
        )
        for a, b in zip(expected, parallel):
            assert np.array_equal(a, b)

    def test_edge_similarities_match_sequential(self, karate):
        oracle = SimilarityOracle(karate, SimilarityConfig())
        edges = [(u, v) for u, v, _ in karate.edges()]
        expected = np.asarray(
            [oracle.sigma_unrecorded(u, v) for u, v in edges]
        )
        parallel = parallel_edge_similarities(
            karate, edges, backend=ThreadBackend(threads=4, chunk_size=7)
        )
        assert np.allclose(expected, parallel)

    def test_custom_similarity_config(self, karate):
        open_mode = SimilarityConfig(closed=False, count_self=False)
        oracle = SimilarityOracle(karate, open_mode)
        edges = [(0, 1), (2, 3)]
        expected = [oracle.sigma_unrecorded(u, v) for u, v in edges]
        parallel = parallel_edge_similarities(
            karate, edges, config=open_mode,
            backend=ThreadBackend(threads=2, chunk_size=1),
        )
        assert np.allclose(expected, parallel)
