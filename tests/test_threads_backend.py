"""Tests for the real-threads backend (result parity, not speed)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.parallel.threads import (
    ThreadBackend,
    parallel_edge_similarities,
    parallel_range_queries,
)
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle


class TestBackend:
    def test_map_preserves_order(self):
        backend = ThreadBackend(threads=4, chunk_size=3)
        out = backend.map(lambda x: x * 2, list(range(100)))
        assert out == [x * 2 for x in range(100)]

    def test_single_thread_path(self):
        backend = ThreadBackend(threads=1)
        assert backend.map(str, [1, 2]) == ["1", "2"]

    def test_small_input_runs_inline(self):
        backend = ThreadBackend(threads=8, chunk_size=64)
        assert backend.map(lambda x: -x, [5]) == [-5]

    def test_exceptions_propagate(self):
        backend = ThreadBackend(threads=2, chunk_size=1)

        def boom(x):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            backend.map(boom, list(range(10)))

    def test_validation(self):
        with pytest.raises(SimulationError):
            ThreadBackend(threads=0).validate()
        with pytest.raises(SimulationError):
            ThreadBackend(threads=1, chunk_size=0).validate()


class TestParallelQueries:
    def test_range_queries_match_sequential(self, karate):
        oracle = SimilarityOracle(karate, SimilarityConfig())
        expected = [oracle.eps_neighborhood(v, 0.5) for v in range(34)]
        parallel = parallel_range_queries(
            karate, list(range(34)), 0.5,
            backend=ThreadBackend(threads=4, chunk_size=5),
        )
        for a, b in zip(expected, parallel):
            assert np.array_equal(a, b)

    def test_edge_similarities_match_sequential(self, karate):
        oracle = SimilarityOracle(karate, SimilarityConfig())
        edges = [(u, v) for u, v, _ in karate.edges()]
        expected = np.asarray(
            [oracle.sigma_unrecorded(u, v) for u, v in edges]
        )
        parallel = parallel_edge_similarities(
            karate, edges, backend=ThreadBackend(threads=4, chunk_size=7)
        )
        assert np.allclose(expected, parallel)

    def test_custom_similarity_config(self, karate):
        open_mode = SimilarityConfig(closed=False, count_self=False)
        oracle = SimilarityOracle(karate, open_mode)
        edges = [(0, 1), (2, 3)]
        expected = [oracle.sigma_unrecorded(u, v) for u, v in edges]
        parallel = parallel_edge_similarities(
            karate, edges, config=open_mode,
            backend=ThreadBackend(threads=2, chunk_size=1),
        )
        assert np.allclose(expected, parallel)


class TestChunkingEquivalence:
    """Every (threads, chunk_size) pair computes the sequential answer."""

    @pytest.mark.parametrize("threads", [1, 2, 4])
    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 64, 200])
    def test_matches_sequential_map(self, threads, chunk_size):
        items = list(range(97))
        expected = [x * x - 1 for x in items]
        backend = ThreadBackend(threads=threads, chunk_size=chunk_size)
        assert backend.map(lambda x: x * x - 1, items) == expected

    def test_order_preserved_under_uneven_work(self):
        import time

        def slow_for_early_items(x):
            if x < 4:
                time.sleep(0.01)
            return x

        backend = ThreadBackend(threads=4, chunk_size=1)
        items = list(range(32))
        assert backend.map(slow_for_early_items, items) == items

    def test_empty_input(self):
        assert ThreadBackend(threads=4, chunk_size=2).map(str, []) == []


class TestValidateErrorPaths:
    @pytest.mark.parametrize("threads", [0, -1, -8])
    def test_bad_thread_counts(self, threads):
        with pytest.raises(SimulationError, match="thread"):
            ThreadBackend(threads=threads).validate()

    @pytest.mark.parametrize("chunk_size", [0, -1])
    def test_bad_chunk_sizes(self, chunk_size):
        with pytest.raises(SimulationError, match="chunk_size"):
            ThreadBackend(threads=2, chunk_size=chunk_size).validate()

    def test_map_validates_before_running(self):
        with pytest.raises(SimulationError):
            ThreadBackend(threads=0).map(str, [1, 2, 3])

    def test_valid_backend_passes(self):
        ThreadBackend(threads=1, chunk_size=1).validate()


class TestParallelNeighborUpdates:
    def test_matches_sequential_tally(self, karate):
        from collections import Counter

        from repro.parallel.threads import parallel_neighbor_updates

        oracle = SimilarityOracle(karate, SimilarityConfig())
        vertices = list(range(34))
        expected_hoods = [
            oracle.eps_neighborhood(v, 0.5) for v in vertices
        ]
        tally = Counter()
        for hood in expected_hoods:
            tally.update(int(q) for q in hood)

        hoods, touched = parallel_neighbor_updates(
            karate, vertices, 0.5,
            backend=ThreadBackend(threads=4, chunk_size=3),
        )
        for a, b in zip(expected_hoods, hoods):
            assert np.array_equal(a, b)
        for v in range(34):
            assert touched[v] == tally.get(v, 0)

    def test_epsilon_validated(self, karate):
        from repro.errors import ConfigError
        from repro.parallel.threads import parallel_neighbor_updates

        with pytest.raises(ConfigError):
            parallel_neighbor_updates(karate, [0], 0.0)
        with pytest.raises(ConfigError):
            parallel_range_queries(karate, [0], 1.5)
