"""The kernels bench experiment: registry, shapes, and JSON artifact."""

import json
import os

import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiment


@pytest.fixture(scope="module")
def results(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("bench")
    old = os.environ.get("REPRO_BENCH_DIR")
    os.environ["REPRO_BENCH_DIR"] = str(out_dir)
    try:
        yield run_experiment("kernels", quick=True), out_dir
    finally:
        if old is None:
            os.environ.pop("REPRO_BENCH_DIR", None)
        else:
            os.environ["REPRO_BENCH_DIR"] = old


class TestKernelsExperiment:
    def test_registered(self):
        assert "kernels" in EXPERIMENTS

    def test_two_tables_with_rows(self, results):
        tables, _ = results
        assert len(tables) == 2
        throughput, interactive = tables
        assert len(throughput.rows) == 3
        assert len(interactive.rows) == 2
        for table in tables:
            assert "kernels" in table.render()

    def test_batched_path_is_faster(self, results):
        tables, _ = results
        speedups = tables[0].column("speedup vs scalar")
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[1] > 1.0  # batched beats scalar even at toy scale

    def test_second_query_needs_no_sigma(self, results):
        tables, _ = results
        evals = tables[1].column("sigma evals")
        assert evals[0] > 0
        assert evals[1] == 0

    def test_json_artifact_written(self, results):
        tables, out_dir = results
        path = out_dir / "BENCH_kernels.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        for key in (
            "scalar_pairs_per_s",
            "batched_pairs_per_s",
            "speedup",
            "index_build_s",
            "first_query_sigma_evals",
            "second_query_sigma_evals",
        ):
            assert key in payload, key
        assert payload["speedup"] > 1.0
        assert payload["second_query_sigma_evals"] == 0
        assert payload["quick"] is True
