"""Tests for the dataset registry and its regime matching."""

import pytest

from repro.bench.datasets import (
    DATASETS,
    clear_cache,
    dataset_names,
    load_dataset,
)
from repro.errors import ExperimentError
from repro.graph.stats import average_clustering, average_degree


class TestRegistry:
    def test_all_paper_datasets_present(self):
        names = dataset_names("all")
        for gr in ("GR01", "GR02", "GR03", "GR04", "GR05"):
            assert gr in names
        for i in range(1, 6):
            assert f"LFR0{i}" in names
            assert f"LFR1{i}" in names

    def test_kind_filters(self):
        assert all(n.startswith("GR") for n in dataset_names("real"))
        assert all(n.startswith("LFR") for n in dataset_names("lfr"))
        assert set(dataset_names("all")) == set(
            dataset_names("real") + dataset_names("lfr")
        )

    def test_unknown_kind(self):
        with pytest.raises(ExperimentError):
            dataset_names("imaginary")

    def test_unknown_dataset(self):
        with pytest.raises(ExperimentError):
            load_dataset("GR99")

    def test_unknown_scale(self):
        with pytest.raises(ExperimentError):
            DATASETS["GR01"].build("gigantic")

    def test_specs_record_paper_stats(self):
        spec = DATASETS["GR01"]
        assert spec.paper_name == "ego-Gplus"
        assert spec.paper_avg_degree == pytest.approx(127.06)


class TestGeneration:
    def test_tiny_datasets_load(self):
        for name in ("GR01", "GR03", "LFR02", "LFR14"):
            graph = load_dataset(name, "tiny")
            assert graph.num_vertices > 100
            assert graph.num_edges > 100

    def test_cache_round_trip(self):
        a = load_dataset("GR01", "tiny")
        b = load_dataset("GR01", "tiny")  # likely from disk cache
        assert a == b

    def test_clear_cache_then_regenerate(self):
        a = load_dataset("GR01", "tiny")
        clear_cache()
        b = load_dataset("GR01", "tiny")
        assert a == b  # deterministic generation


class TestRegimes:
    def test_gr01_is_high_clustering(self):
        g = load_dataset("GR01", "tiny")
        assert average_clustering(g, sample=400, seed=0) > 0.35

    def test_gr03_is_low_clustering(self):
        g3 = load_dataset("GR03", "tiny")
        g1 = load_dataset("GR01", "tiny")
        assert average_clustering(g3, sample=400, seed=0) < average_clustering(
            g1, sample=400, seed=0
        )

    def test_gr02_sparser_than_gr04(self):
        assert average_degree(load_dataset("GR02", "tiny")) < average_degree(
            load_dataset("GR04", "tiny")
        )

    def test_gr05_heavy_tail(self):
        g = load_dataset("GR05", "tiny")
        degrees = g.degrees
        assert degrees.max() > 5 * max(float(degrees.mean()), 1.0)

    def test_lfr_degree_sweep_monotone(self):
        degs = [
            average_degree(load_dataset(f"LFR0{i}", "tiny"))
            for i in range(1, 6)
        ]
        assert all(b > a for a, b in zip(degs, degs[1:]))

    def test_lfr_cc_sweep_monotone(self):
        ccs = [
            average_clustering(load_dataset(f"LFR1{i}", "tiny"),
                               sample=500, seed=0)
            for i in range(1, 6)
        ]
        assert all(b > a for a, b in zip(ccs, ccs[1:]))


class TestCacheRobustness:
    """Corrupt or half-written cache entries must never break loading."""

    @pytest.fixture()
    def private_cache(self, tmp_path, monkeypatch):
        import repro.bench.datasets as datasets

        monkeypatch.setattr(datasets, "_CACHE_DIR", tmp_path)
        return tmp_path

    def test_corrupt_npz_is_regenerated(self, private_cache):
        graph = load_dataset("GR01", "tiny")  # populates the cache
        cache_file = private_cache / "GR01-tiny.npz"
        assert cache_file.exists()
        cache_file.write_bytes(b"PK\x05\x06 this is not a zip")
        again = load_dataset("GR01", "tiny")
        assert again == graph
        # the corrupt entry was replaced by a valid one
        assert load_dataset("GR01", "tiny") == graph
        assert cache_file.stat().st_size > 100

    def test_truncated_npz_is_regenerated(self, private_cache):
        graph = load_dataset("GR01", "tiny")
        cache_file = private_cache / "GR01-tiny.npz"
        blob = cache_file.read_bytes()
        cache_file.write_bytes(blob[: len(blob) // 2])
        assert load_dataset("GR01", "tiny") == graph

    def test_wrong_schema_is_regenerated(self, private_cache):
        import numpy as np

        graph = load_dataset("GR01", "tiny")
        cache_file = private_cache / "GR01-tiny.npz"
        np.savez_compressed(cache_file, unrelated=np.arange(3))
        assert load_dataset("GR01", "tiny") == graph

    def test_no_temp_files_left_behind(self, private_cache):
        load_dataset("GR01", "tiny")
        assert list(private_cache.glob("*.tmp")) == []
