"""Zero-copy shared-memory store + multi-process fleet (DESIGN.md §11).

Three layers, bottom up:

* :class:`~repro.service.shm.ManifestBlock` — the seqlock protocol in
  isolation: commit parity, torn-write detection, overflow, read-only
  enforcement, and the writer-died timeout;
* :class:`~repro.service.shm.StorePublisher` /
  :class:`~repro.service.shm.AttachedGraphStore` — an in-process
  writer/reader pair over real segments: byte-identical arrays, epoch
  bumps on mutation, unlink-after-commit hygiene, and the read-only
  contract of the attached view;
* the live fleet — :class:`~repro.service.fleet.ServiceSupervisor`
  with real worker subprocesses behind one port, in both socket modes
  (``SO_REUSEPORT`` and the pre-forked-accept fallback): responses
  byte-identical to a single-process server for the same request
  stream, including after ``update-edges`` routed through the writer;
  shard-prefixed job ids answered from any connection; merged
  ``/fleet/metrics``.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph.generators.lfr import LFRParams, lfr_graph
from repro.parallel.processes import (
    SegmentRegistry,
    _release_named,
    shared_memory_available,
    untrack_attachment,
)
from repro.service.client import ServiceClient
from repro.service.fleet import ServiceSupervisor
from repro.service.server import ClusteringServer, ClusteringService
from repro.service.shm import (
    AttachedGraphStore,
    ManifestBlock,
    StorePublisher,
)
from repro.service.store import GraphStore

pytestmark = [
    pytest.mark.timeout(180),
    pytest.mark.skipif(
        not shared_memory_available(),
        reason="POSIX shared memory unavailable",
    ),
]

_WAIT = 60.0
_SETTINGS = ((2, 0.5), (3, 0.6), (4, 0.65))


def _lfr(n=150, seed=23):
    graph, _ = lfr_graph(
        LFRParams(n=n, average_degree=8, max_degree=30, seed=seed)
    )
    return graph


def _segments(pid=None):
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return []
    pattern = f"repro_{pid}_*" if pid is not None else "repro_*"
    return sorted(p.name for p in shm_dir.glob(pattern))


# ----------------------------------------------------------------------
# ManifestBlock: the seqlock protocol
# ----------------------------------------------------------------------
class TestManifestBlock:
    def test_write_read_roundtrip_and_parity(self):
        with SegmentRegistry() as registry:
            shm = registry.create_block("manifest_test", 4096)
            writer = ManifestBlock(shm, writer=True)
            assert writer.generation() == 0
            generation = writer.write({"graphs": {"a": 1}})
            assert generation == 2  # first commit: 0 → 1 (pending) → 2
            reader = ManifestBlock(shm, writer=False)
            got_generation, payload = reader.read()
            assert got_generation == 2
            assert payload == {"graphs": {"a": 1}}
            assert writer.write({"graphs": {}}) == 4  # always even
            assert reader.read() == (4, {"graphs": {}})

    def test_read_only_block_rejects_writes(self):
        with SegmentRegistry() as registry:
            shm = registry.create_block("manifest_ro", 1024)
            ManifestBlock(shm, writer=True).write({"x": 1})
            reader = ManifestBlock(shm, writer=False)
            with pytest.raises(ConfigError, match="read-only"):
                reader.write({"x": 2})

    def test_oversized_payload_raises_before_touching_header(self):
        with SegmentRegistry() as registry:
            shm = registry.create_block("manifest_small", 64)
            writer = ManifestBlock(shm, writer=True)
            writer.write({"k": 1})
            with pytest.raises(ConfigError, match="exceeds"):
                writer.write({"k": "x" * 4096})
            # The failed write must not have torn the committed payload.
            assert ManifestBlock(shm, writer=False).read() == (2, {"k": 1})

    def test_never_written_manifest_times_out(self):
        with SegmentRegistry() as registry:
            shm = registry.create_block("manifest_empty", 1024)
            reader = ManifestBlock(shm, writer=False)
            with pytest.raises(ConfigError, match="never written"):
                reader.read()

    def test_mid_write_generation_times_out_as_writer_death(self):
        import struct

        with SegmentRegistry() as registry:
            shm = registry.create_block("manifest_torn", 1024)
            # Simulate a writer that died mid-update: odd generation.
            struct.Struct("<QQ").pack_into(shm.buf, 0, 3, 0)
            reader = ManifestBlock(shm, writer=False)
            with pytest.raises(ConfigError, match="mid-write"):
                reader.read()


# ----------------------------------------------------------------------
# segment hygiene primitives
# ----------------------------------------------------------------------
class TestSegmentHygiene:
    def test_release_named_owner_pid_guard(self):
        """A forked child inheriting the registry dict must never unlink
        the parent's live segments; only the owning pid releases."""
        shm = shared_memory.SharedMemory(
            name=f"repro_{os.getpid()}_guard_test", create=True, size=64
        )
        try:
            owned = {"guard_test": shm}
            _release_named(dict(owned), owner_pid=os.getpid() + 99_999)
            # Wrong pid: the segment must still exist and be attachable.
            probe = shared_memory.SharedMemory(name=shm.name)
            untrack_attachment(probe)
            probe.close()
        finally:
            _release_named({"guard_test": shm}, owner_pid=os.getpid())
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=shm.name)

    def test_untrack_attachment_keeps_owner_segment_alive(self):
        """Closing an untracked attachment must not unlink the segment
        (the attacher's resource tracker would otherwise reap it)."""
        with SegmentRegistry() as registry:
            spec = registry.publish("untrack", np.arange(8, dtype=np.int64))
            attached = shared_memory.SharedMemory(name=spec.shm_name)
            untrack_attachment(attached)
            attached.close()
            # Still attachable through the registry after the close.
            view = SegmentRegistry.attach(spec)
            np.testing.assert_array_equal(
                view, np.arange(8, dtype=np.int64)
            )


# ----------------------------------------------------------------------
# publisher ↔ attached store (in-process writer/reader pair)
# ----------------------------------------------------------------------
class TestPublisherAttachment:
    def test_roundtrip_epochs_and_unlink_after_commit(self):
        graph = _lfr()
        store = GraphStore()
        with StorePublisher() as publisher:
            store.attach_publisher(publisher)
            entry = store.add(
                "g", graph, build_index=True, build_cluster_index=True
            )
            attached = AttachedGraphStore(publisher.manifest_name)
            try:
                assert attached.names() == ["g"]
                assert attached.epochs() == {"g": 1}
                got = attached.get("g")
                assert got.fingerprint == entry.fingerprint
                np.testing.assert_array_equal(
                    got.graph.indptr, graph.indptr
                )
                np.testing.assert_array_equal(
                    got.graph.indices, graph.indices
                )
                np.testing.assert_array_equal(
                    got.graph.weights, graph.weights
                )
                assert got.index is not None
                np.testing.assert_array_equal(
                    got.index.sigmas, entry.index.sigmas
                )
                assert got.cluster_index is not None

                epoch1_segments = set(_segments(os.getpid()))
                stats = store.update_edges(
                    "g", insert=[[0, 1, 1.0], [2, 5, 1.0]]
                )
                assert stats is not None
                assert attached.refresh() is True
                assert attached.epochs() == {"g": 2}
                fresh = attached.get("g")
                assert fresh.fingerprint == store.get("g").fingerprint
                np.testing.assert_array_equal(
                    fresh.graph.indices, store.get("g").graph.indices
                )
                # Unlink-after-commit: every epoch-1 graph segment is
                # gone; only the manifest survives from the old set.
                survivors = epoch1_segments & set(_segments(os.getpid()))
                assert all("e1" not in name for name in survivors - {
                    publisher.manifest_name.lstrip("/")
                } if "_g0" in name)

                store.remove("g")
                attached.refresh()
                assert attached.names() == []
            finally:
                attached.close()
        assert _segments(os.getpid()) == []

    def test_attached_store_is_read_only(self):
        graph = _lfr(n=60, seed=5)
        store = GraphStore()
        with StorePublisher() as publisher:
            store.attach_publisher(publisher)
            store.add("ro", graph, build_index=True)
            attached = AttachedGraphStore(publisher.manifest_name)
            try:
                with pytest.raises(ConfigError, match="read-only"):
                    attached.add("x", graph)
                with pytest.raises(ConfigError, match="read-only"):
                    attached.remove("ro")
                with pytest.raises(ConfigError, match="read-only"):
                    attached.update_edges("ro", insert=[[0, 1, 1.0]])
                # ensure_* never build on a reader; they serve as-is.
                assert attached.ensure_index("ro").index is not None
                assert (
                    attached.ensure_cluster_index("ro").cluster_index
                    is None
                )
            finally:
                attached.close()

    def test_fill_cache_guard_rejects_stale_fingerprint(self):
        graph = _lfr(n=60, seed=6)
        store = GraphStore()
        with StorePublisher() as publisher:
            store.attach_publisher(publisher)
            store.add("guard", graph)
            attached = AttachedGraphStore(publisher.manifest_name)
            try:
                fingerprint = attached.get("guard").fingerprint

                class _Cache:
                    def __init__(self):
                        self.puts = []

                    def put(self, key, value):
                        self.puts.append((key, value))

                cache = _Cache()
                assert attached.fill_cache_if_current(
                    cache, "guard", fingerprint, "k", "v"
                )
                store.update_edges("guard", insert=[[0, 2, 1.0]])
                assert not attached.fill_cache_if_current(
                    cache, "guard", fingerprint, "k2", "v2"
                )
                assert cache.puts == [("k", "v")]
            finally:
                attached.close()


# ----------------------------------------------------------------------
# the live fleet (worker subprocesses behind one port)
# ----------------------------------------------------------------------
def _start_fleet(processes=2, **worker_options):
    service = ClusteringService(workers=2, slice_iterations=2)
    supervisor = ServiceSupervisor(
        service,
        processes=processes,
        worker_options=dict(
            {"workers": 2, "slice_iterations": 2}, **worker_options
        ),
    )
    supervisor.start().wait_ready()
    return supervisor


def _query_stream(url, graph):
    """Load + index + query; returns the comparable response bodies."""
    bodies = []
    client = ServiceClient(url, timeout=_WAIT)
    info = client.load_graph("fleet", graph=graph, build_index=True)
    bodies.append(
        {"fingerprint": info["fingerprint"], "num_edges": info["num_edges"]}
    )
    for mu, epsilon in _SETTINGS:
        body = client.cluster("fleet", mu, epsilon, wait=_WAIT)
        bodies.append(
            {
                "labels": body["labels"],
                "num_clusters": body["num_clusters"],
                "state": body["state"],
            }
        )
    update = client.update_edges("fleet", insert=[[0, 1, 1.0], [3, 7, 1.0]])
    bodies.append(
        {
            "fingerprint": update["fingerprint"],
            "cache_entries_invalidated": update["cache_entries_invalidated"],
        }
    )
    mu, epsilon = _SETTINGS[0]
    after = client.cluster("fleet", mu, epsilon, wait=_WAIT)
    bodies.append(
        {"labels": after["labels"], "num_clusters": after["num_clusters"]}
    )
    client.close()
    return bodies


def test_fleet_differential_byte_identity_with_single_process():
    """Any shard answers the exact bytes a single-process server does —
    including after ``update-edges`` routed through the writer."""
    graph = _lfr()
    with ClusteringServer(workers=2, slice_iterations=2) as single:
        expected = _query_stream(single.url, graph)
    supervisor = _start_fleet(processes=2)
    try:
        got = _query_stream(supervisor.url, graph)
    finally:
        supervisor.close()
    assert got == expected
    assert _segments(os.getpid()) == []


def test_fleet_fallback_socket_mode(monkeypatch):
    """The pre-forked-accept fallback serves the same answers."""
    monkeypatch.setenv("REPRO_FLEET_NO_REUSEPORT", "1")
    graph = _lfr(n=100, seed=9)
    with ClusteringServer(workers=2, slice_iterations=2) as single:
        expected = _query_stream(single.url, graph)
    supervisor = _start_fleet(processes=2)
    try:
        assert supervisor.reuseport is False
        got = _query_stream(supervisor.url, graph)
    finally:
        supervisor.close()
    assert got == expected
    assert _segments(os.getpid()) == []


def test_fleet_job_routing_across_connections():
    """Shard-prefixed job ids resolve from any connection: a client
    whose keep-alive connection lands on shard B can still follow a job
    created on shard A (proxied over the admin channel)."""
    graph = _lfr(n=100, seed=11)
    supervisor = _start_fleet(processes=2)
    try:
        seeder = ServiceClient(supervisor.url, timeout=_WAIT)
        seeder.load_graph("fleet", graph=graph, build_index=True)
        body = seeder.cluster("fleet", 2, 0.5, wait=_WAIT)
        job_id = body["job_id"]
        assert job_id.startswith("w")  # shard-prefixed
        # Several fresh connections: SO_REUSEPORT may pin any shard.
        for _ in range(4):
            with ServiceClient(supervisor.url, timeout=_WAIT) as probe:
                status = probe.status(job_id)
                assert status["state"] == "done"
                listed = [job["job_id"] for job in probe.jobs()]
                assert job_id in listed
        seeder.close()
    finally:
        supervisor.close()
    assert _segments(os.getpid()) == []


def test_fleet_metrics_merge_and_keepalive():
    """`/fleet/metrics` sums counters across shards + writer, reports
    per-shard gauges, and the client transport reuses its connection."""
    graph = _lfr(n=100, seed=13)
    supervisor = _start_fleet(processes=2)
    try:
        client = ServiceClient(supervisor.url, timeout=_WAIT)
        client.load_graph("fleet", graph=graph, build_index=True)
        for _ in range(3):
            client.cluster("fleet", 2, 0.5, wait=_WAIT)
        # Keep-alive: after several requests one persistent connection
        # is still open (the transport never fell back to one-shot).
        assert client._conn is not None
        merged = client.fleet_metrics()
        assert merged["fleet"]["processes"] == 2
        assert sorted(merged["fleet"]["scraped_shards"]) == [0, 1]
        assert merged["counters"]["workers_registered"] == 2
        assert merged["counters"]["requests_total"] >= 4
        roles = [
            shard["gauges"]["process"]["role"]
            for shard in merged["shards"]
            if "process" in shard.get("gauges", {})
        ]
        assert roles.count("writer") == 1
        assert roles.count("worker") == 2
        client.close()
    finally:
        supervisor.close()
    assert _segments(os.getpid()) == []
