"""Tests for power-law degree sequences and the configuration model."""

import numpy as np
import pytest

from repro.errors import GeneratorError
from repro.graph.generators.powerlaw import (
    configuration_model_graph,
    powerlaw_degree_sequence,
)


class TestDegreeSequence:
    def test_length_and_bounds(self):
        seq = powerlaw_degree_sequence(500, 2.0, 2, 40, seed=1)
        assert seq.shape[0] == 500
        assert seq.min() >= 2
        assert seq.max() <= 40

    def test_even_sum(self):
        for seed in range(5):
            seq = powerlaw_degree_sequence(101, 2.5, 1, 30, seed=seed)
            assert int(seq.sum()) % 2 == 0

    def test_average_degree_targeting(self):
        seq = powerlaw_degree_sequence(
            1000, 2.0, 2, 60, average_degree=12.0, seed=2
        )
        assert abs(seq.mean() - 12.0) < 0.5

    def test_heavier_tail_with_smaller_exponent(self):
        light = powerlaw_degree_sequence(2000, 3.5, 2, 100, seed=3)
        heavy = powerlaw_degree_sequence(2000, 1.8, 2, 100, seed=3)
        assert heavy.mean() > light.mean()

    def test_invalid_exponent(self):
        with pytest.raises(GeneratorError):
            powerlaw_degree_sequence(10, 0.5, 1, 5)

    def test_invalid_bounds(self):
        with pytest.raises(GeneratorError):
            powerlaw_degree_sequence(10, 2.0, 5, 3)

    def test_max_degree_must_be_below_n(self):
        with pytest.raises(GeneratorError):
            powerlaw_degree_sequence(10, 2.0, 1, 10)

    def test_deterministic(self):
        a = powerlaw_degree_sequence(100, 2.0, 2, 20, seed=11)
        b = powerlaw_degree_sequence(100, 2.0, 2, 20, seed=11)
        assert np.array_equal(a, b)


class TestConfigurationModel:
    def test_realizes_most_of_the_sequence(self):
        seq = powerlaw_degree_sequence(300, 2.2, 2, 30, seed=4)
        g = configuration_model_graph(seq, seed=4)
        assert g.num_vertices == 300
        realized = g.degrees.sum()
        assert realized >= 0.95 * seq.sum()

    def test_simple_graph_invariants(self):
        seq = powerlaw_degree_sequence(200, 2.0, 2, 40, seed=5)
        g = configuration_model_graph(seq, seed=5)
        # CSR validation would reject self-loops/parallel edges; re-check:
        for u, v, _ in g.edges():
            assert u != v

    def test_regular_sequence(self):
        seq = np.full(50, 4, dtype=np.int64)
        g = configuration_model_graph(seq, seed=6)
        # Rewiring may drop a few stubs; most vertices keep degree 4.
        assert np.median(g.degrees) == 4

    def test_odd_sum_rejected(self):
        with pytest.raises(GeneratorError):
            configuration_model_graph(np.array([1, 2]), seed=1)

    def test_negative_degree_rejected(self):
        with pytest.raises(GeneratorError):
            configuration_model_graph(np.array([-1, 1]), seed=1)

    def test_zero_degrees_allowed(self):
        g = configuration_model_graph(np.array([0, 0, 2, 2]), seed=1)
        assert g.degree(0) == 0
