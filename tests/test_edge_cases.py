"""Edge-case sweep across modules: empty graphs, degenerate inputs."""

import numpy as np
import pytest

from repro.bench.harness import ExperimentResult, _fmt
from repro.core import AnySCAN, AnyScanConfig
from repro.core.explorer import ParameterExplorer
from repro.core.hierarchy import EpsilonHierarchy
from repro.dynamic import AdjacencyGraph, DynamicSCAN
from repro.errors import (
    ConfigError,
    ExperimentError,
    GraphError,
    ReproError,
    SimulationError,
    StateTransitionError,
)
from repro.graph.builder import GraphBuilder
from repro.graph.csr import Graph
from repro.metrics import nmi, quality_report
from repro.result import Clustering


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [GraphError, ConfigError, SimulationError, ExperimentError,
         StateTransitionError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestEmptyAndTinyGraphs:
    def test_anyscan_on_empty_graph(self):
        result = AnySCAN(
            Graph.from_edges(0, []), AnyScanConfig(record_costs=False)
        ).run()
        assert result.num_clusters == 0
        assert result.num_vertices == 0

    def test_anyscan_on_edgeless_graph(self):
        result = AnySCAN(
            Graph.from_edges(5, []), AnyScanConfig(record_costs=False)
        ).run()
        assert result.num_clusters == 0
        assert result.outliers.shape[0] == 5

    def test_anyscan_single_edge(self):
        result = AnySCAN(
            Graph.from_edges(2, [(0, 1)]),
            AnyScanConfig(mu=2, epsilon=0.5, record_costs=False),
        ).run()
        # With closed neighborhoods σ(0,1)=1 and both reach μ=2.
        assert result.num_clusters == 1

    def test_explorer_on_edgeless_graph(self):
        explorer = ParameterExplorer(Graph.from_edges(4, []))
        assert explorer.clustering_at(2, 0.5).num_clusters == 0
        assert explorer.epsilon_candidates(2) == []

    def test_hierarchy_on_edgeless_graph(self):
        hierarchy = EpsilonHierarchy(Graph.from_edges(4, []), mu=2)
        assert hierarchy.num_nodes == 0
        assert hierarchy.suggest_cut() == 0.5  # fallback default

    def test_dynamic_scan_from_empty(self):
        dyn = DynamicSCAN(AdjacencyGraph(0), 2, 0.5)
        assert dyn.clustering().num_vertices == 0

    def test_quality_report_empty(self):
        report = quality_report(
            Graph.from_edges(0, []), Clustering(labels=np.zeros(0, int))
        )
        assert report["num_clusters"] == 0


class TestWeightedSubgraph:
    def test_subgraph_preserves_weights(self, weighted_triangle):
        sub = weighted_triangle.subgraph([0, 1])
        assert sub.num_edges == 1
        assert sub.edge_weight(0, 1) == pytest.approx(2.0)

    def test_subgraph_empty_selection(self, weighted_triangle):
        sub = weighted_triangle.subgraph([])
        assert sub.num_vertices == 0


class TestHarnessFormatting:
    def test_fmt_variants(self):
        assert _fmt(0.0) == "0"
        assert _fmt(1234.5) == "1,234"  # round-half-even of :,.0f
        assert _fmt(3.14159) == "3.14"
        assert _fmt(0.00123) == "0.0012"
        assert _fmt(42) == "42"
        assert _fmt("text") == "text"

    def test_render_with_mixed_types(self):
        result = ExperimentResult(
            exp_id="x", title="t", headers=["a", "b"]
        )
        result.add_row("row", -1.5)
        assert "-1.50" in result.render()


class TestNMIDegenerate:
    def test_single_vertex(self):
        assert nmi(np.array([0]), np.array([0])) == 1.0

    def test_all_noise_both(self):
        a = np.array([-1, -2, -1])
        assert nmi(a, a) == 1.0

    def test_empty_arrays(self):
        assert nmi(np.array([], dtype=int), np.array([], dtype=int)) == 1.0


class TestBuilderGrowth:
    def test_interleaved_growth_and_edges(self):
        builder = GraphBuilder(1)
        builder.add_edge(0, 4)      # grows to 5
        builder.ensure_vertex(9)    # grows to 10
        graph = builder.build()
        assert graph.num_vertices == 10
        assert graph.degree(9) == 0

    def test_isolated_graph_roundtrip(self):
        graph = GraphBuilder(3).build()
        assert list(graph.edges()) == []
        assert graph.degrees.tolist() == [0, 0, 0]


class TestAnyScanMuOne:
    def test_mu_one_everything_clusters(self, karate):
        # μ=1: every vertex is trivially a core (σ(v,v)=1 counts).
        result = AnySCAN(
            karate, AnyScanConfig(mu=1, epsilon=0.99, record_costs=False)
        ).run()
        assert result.clustered_vertices.shape[0] == 34

    def test_epsilon_one_strictest(self, karate):
        result = AnySCAN(
            karate, AnyScanConfig(mu=3, epsilon=1.0, record_costs=False)
        ).run()
        from repro.baselines import scan

        reference = scan(karate, 3, 1.0, seed=1)
        assert result.same_partition(reference)
