"""Unit coverage for the service observability layer.

The `/metrics` numbers back two acceptance claims (zero σ evaluations
on cache hits; p50/p99 latency per endpoint), so the counters and the
log-bucket histogram must be exact where the tests rely on them.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigError
from repro.service.metrics import LatencyHistogram, ServiceMetrics


class TestLatencyHistogram:
    def test_empty_snapshot(self):
        assert LatencyHistogram().snapshot() == {"count": 0}
        assert LatencyHistogram().percentile(50.0) == 0.0

    def test_count_sum_min_max_are_exact(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.010, 0.100):
            hist.record(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["min_s"] == pytest.approx(0.001)
        assert snap["max_s"] == pytest.approx(0.100)
        assert snap["mean_s"] == pytest.approx(0.111 / 3)

    def test_percentile_within_bucket_resolution(self):
        """Buckets are 10/decade, so the bound is one bucket's width."""
        hist = LatencyHistogram()
        for _ in range(99):
            hist.record(0.001)
        hist.record(1.0)
        # p50 lands in the 1ms bucket; the upper edge is < 10^(1/10)×.
        assert 0.001 <= hist.percentile(50.0) <= 0.001 * 10 ** 0.1
        # p99 = the 99th of 100 samples is still the 1ms population.
        assert hist.percentile(99.0) <= 0.001 * 10 ** 0.1
        assert hist.percentile(100.0) == pytest.approx(1.0)

    def test_degenerate_distribution_stays_tight(self):
        """All-identical samples report that exact value at any p."""
        hist = LatencyHistogram()
        for _ in range(10):
            hist.record(0.42)
        for p in (0.0, 50.0, 99.0, 100.0):
            assert hist.percentile(p) == pytest.approx(0.42)

    def test_overflow_bucket(self):
        hist = LatencyHistogram()
        hist.record(5000.0)  # beyond the last 100s bound
        assert hist.percentile(50.0) == pytest.approx(5000.0)

    def test_validation(self):
        hist = LatencyHistogram()
        with pytest.raises(ConfigError):
            hist.record(-0.1)
        with pytest.raises(ConfigError):
            hist.percentile(101.0)


class TestServiceMetrics:
    def test_counters(self):
        metrics = ServiceMetrics()
        assert metrics.counter("cache_hits") == 0
        metrics.increment("cache_hits")
        metrics.increment("cache_hits", 4)
        assert metrics.counter("cache_hits") == 5
        assert metrics.snapshot()["counters"] == {"cache_hits": 5}

    def test_per_endpoint_latency(self):
        metrics = ServiceMetrics()
        metrics.observe_latency("cluster", 0.002)
        metrics.observe_latency("cluster", 0.004)
        metrics.observe_latency("healthz", 0.0001)
        latency = metrics.snapshot()["latency"]
        assert latency["cluster"]["count"] == 2
        assert latency["healthz"]["count"] == 1

    def test_gauges_sampled_at_snapshot_time(self):
        metrics = ServiceMetrics()
        state = {"jobs": 1}
        metrics.register_gauge("jobs", lambda: dict(state))
        assert metrics.snapshot()["gauges"]["jobs"] == {"jobs": 1}
        state["jobs"] = 7
        assert metrics.snapshot()["gauges"]["jobs"] == {"jobs": 7}

    def test_gauge_may_reenter_the_metrics_api(self):
        """Gauges run outside the metrics lock, so a callback that
        itself reads a counter (a real pattern: derived gauges) must
        not deadlock."""
        metrics = ServiceMetrics()
        metrics.increment("requests_total", 3)
        metrics.register_gauge(
            "derived", lambda: metrics.counter("requests_total")
        )
        assert metrics.snapshot()["gauges"]["derived"] == 3

    def test_concurrent_recording_is_lossless(self):
        metrics = ServiceMetrics()

        def worker():
            for _ in range(500):
                metrics.increment("n")
                metrics.observe_latency("endpoint", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter("n") == 4000
        assert metrics.snapshot()["latency"]["endpoint"]["count"] == 4000
