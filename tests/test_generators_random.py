"""Tests for the classic random-graph generators."""

import numpy as np
import pytest

from repro.errors import GeneratorError
from repro.graph.generators.random_graphs import (
    gnm_random_graph,
    planted_partition_graph,
    relaxed_caveman_graph,
    watts_strogatz_graph,
)
from repro.graph.stats import average_clustering


class TestGnm:
    def test_exact_counts(self):
        g = gnm_random_graph(50, 100, seed=1)
        assert g.num_vertices == 50
        assert g.num_edges == 100

    def test_zero_edges(self):
        g = gnm_random_graph(10, 0, seed=1)
        assert g.num_edges == 0

    def test_complete_graph(self):
        g = gnm_random_graph(6, 15, seed=1)
        assert g.num_edges == 15

    def test_deterministic(self):
        assert gnm_random_graph(30, 60, seed=7) == gnm_random_graph(
            30, 60, seed=7
        )

    def test_different_seeds_differ(self):
        assert gnm_random_graph(30, 60, seed=1) != gnm_random_graph(
            30, 60, seed=2
        )

    def test_infeasible_m_raises(self):
        with pytest.raises(GeneratorError):
            gnm_random_graph(4, 100, seed=1)

    def test_negative_n_raises(self):
        with pytest.raises(GeneratorError):
            gnm_random_graph(-1, 0)


class TestWattsStrogatz:
    def test_zero_rewire_is_lattice(self):
        g = watts_strogatz_graph(20, 4, 0.0, seed=1)
        assert g.num_edges == 40
        assert all(g.degree(v) == 4 for v in range(20))

    def test_high_clustering_at_low_p(self):
        g = watts_strogatz_graph(200, 8, 0.05, seed=1)
        assert average_clustering(g) > 0.4

    def test_low_clustering_at_high_p(self):
        low = watts_strogatz_graph(200, 8, 0.9, seed=1)
        high = watts_strogatz_graph(200, 8, 0.05, seed=1)
        assert average_clustering(low) < average_clustering(high)

    def test_odd_k_raises(self):
        with pytest.raises(GeneratorError):
            watts_strogatz_graph(10, 3, 0.1)

    def test_k_too_large_raises(self):
        with pytest.raises(GeneratorError):
            watts_strogatz_graph(6, 6, 0.1)

    def test_bad_p_raises(self):
        with pytest.raises(GeneratorError):
            watts_strogatz_graph(10, 4, 1.5)


class TestRelaxedCaveman:
    def test_zero_rewire_is_disjoint_cliques(self):
        g = relaxed_caveman_graph(4, 5, 0.0, seed=1)
        assert g.num_vertices == 20
        assert g.num_edges == 4 * 10
        assert average_clustering(g) == pytest.approx(1.0)

    def test_rewiring_preserves_edge_count(self):
        g0 = relaxed_caveman_graph(6, 6, 0.0, seed=2)
        g1 = relaxed_caveman_graph(6, 6, 0.3, seed=2)
        assert g1.num_edges == g0.num_edges

    def test_high_clustering_regime(self):
        g = relaxed_caveman_graph(20, 10, 0.15, seed=3)
        assert average_clustering(g) > 0.35

    def test_invalid_params(self):
        with pytest.raises(GeneratorError):
            relaxed_caveman_graph(0, 5, 0.1)
        with pytest.raises(GeneratorError):
            relaxed_caveman_graph(3, 1, 0.1)
        with pytest.raises(GeneratorError):
            relaxed_caveman_graph(3, 5, 2.0)


class TestPlantedPartition:
    def test_block_structure(self):
        g = planted_partition_graph([30, 30], 0.5, 0.01, seed=1)
        assert g.num_vertices == 60
        # Intra-block edges should dominate.
        intra = sum(
            1 for u, v, _ in g.edges() if (u < 30) == (v < 30)
        )
        inter = g.num_edges - intra
        assert intra > 5 * max(inter, 1)

    def test_zero_probabilities(self):
        g = planted_partition_graph([10, 10], 0.0, 0.0, seed=1)
        assert g.num_edges == 0

    def test_invalid_sizes(self):
        with pytest.raises(GeneratorError):
            planted_partition_graph([5, 0], 0.5, 0.1)

    def test_invalid_probability(self):
        with pytest.raises(GeneratorError):
            planted_partition_graph([5, 5], 1.5, 0.1)

    def test_deterministic(self):
        a = planted_partition_graph([20, 20], 0.4, 0.02, seed=9)
        b = planted_partition_graph([20, 20], 0.4, 0.02, seed=9)
        assert a == b
