"""Tests for dynamic SCAN: mutable graphs + incremental maintenance."""

import numpy as np
import pytest

from repro.baselines import scan
from repro.dynamic import AdjacencyGraph, DynamicSCAN
from repro.errors import ConfigError, GraphError
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.metrics.comparison import explain_difference
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle


class TestAdjacencyGraph:
    def test_add_remove_edge(self):
        g = AdjacencyGraph(3)
        g.add_edge(0, 1, 2.0)
        assert g.has_edge(1, 0)
        assert g.edge_weight(0, 1) == 2.0
        assert g.num_edges == 1
        assert g.remove_edge(0, 1) == 2.0
        assert g.num_edges == 0

    def test_duplicate_edge_rejected(self):
        g = AdjacencyGraph(3)
        g.add_edge(0, 1)
        with pytest.raises(GraphError):
            g.add_edge(1, 0)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            AdjacencyGraph(2).add_edge(1, 1)

    def test_remove_missing_edge(self):
        with pytest.raises(GraphError):
            AdjacencyGraph(2).remove_edge(0, 1)

    def test_set_weight(self):
        g = AdjacencyGraph(2)
        g.add_edge(0, 1, 1.0)
        g.set_weight(0, 1, 3.0)
        assert g.edge_weight(1, 0) == 3.0

    def test_add_vertex(self):
        g = AdjacencyGraph(2)
        assert g.add_vertex() == 2
        assert g.num_vertices == 3
        assert g.degree(2) == 0

    def test_csr_round_trip(self, karate):
        mutable = AdjacencyGraph.from_csr(karate)
        assert mutable.num_edges == karate.num_edges
        assert mutable.to_csr() == karate

    def test_edges_iteration(self):
        g = AdjacencyGraph(4)
        g.add_edge(2, 0, 1.5)
        g.add_edge(1, 3)
        edges = sorted(g.edges())
        assert edges == [(0, 2, 1.5), (1, 3, 1.0)]


def assert_matches_batch(dyn: DynamicSCAN, mu: int, eps: float):
    """The incremental clustering must equal batch SCAN on the snapshot."""
    snapshot = dyn.graph.to_csr()
    oracle = SimilarityOracle(snapshot, SimilarityConfig())
    reference = scan(snapshot, mu, eps, seed=1)
    result = dyn.clustering()
    problems = explain_difference(
        snapshot, oracle, reference, result, mu, eps
    )
    assert not problems, problems


class TestDynamicSCAN:
    def test_initial_state_matches_batch(self, karate):
        dyn = DynamicSCAN(AdjacencyGraph.from_csr(karate), 3, 0.5)
        assert_matches_batch(dyn, 3, 0.5)

    def test_insertion_stream_matches_batch(self):
        final = gnm_random_graph(60, 240, seed=3)
        dyn = DynamicSCAN(AdjacencyGraph(60), 3, 0.5)
        edges = list(final.edges())
        for i, (u, v, w) in enumerate(edges):
            dyn.add_edge(u, v, w)
            if i % 60 == 59:
                assert_matches_batch(dyn, 3, 0.5)
        assert_matches_batch(dyn, 3, 0.5)

    def test_deletion_stream_matches_batch(self, caveman):
        dyn = DynamicSCAN(AdjacencyGraph.from_csr(caveman), 3, 0.6)
        rng = np.random.default_rng(5)
        edges = list(caveman.edges())
        rng.shuffle(edges)
        for u, v, _ in edges[:40]:
            dyn.remove_edge(u, v)
        assert_matches_batch(dyn, 3, 0.6)

    def test_mixed_updates(self, triangle):
        # ε=0.9: the triangle clusters, the 3-path after removal does not.
        dyn = DynamicSCAN(AdjacencyGraph.from_csr(triangle), 2, 0.9)
        assert dyn.clustering().num_clusters == 1
        dyn.remove_edge(0, 1)
        assert_matches_batch(dyn, 2, 0.9)
        assert dyn.clustering().num_clusters == 0
        dyn.add_edge(0, 1)
        assert dyn.clustering().num_clusters == 1

    def test_weight_update_changes_result(self):
        g = AdjacencyGraph(4)
        for u, v in [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)]:
            g.add_edge(u, v)
        dyn = DynamicSCAN(g, 2, 0.75)
        before = dyn.clustering()
        dyn.set_weight(2, 3, 0.01)
        dyn.set_weight(1, 3, 0.01)
        after = dyn.clustering()
        assert_matches_batch(dyn, 2, 0.75)
        # Downweighting 3's ties eventually expels it from the cluster.
        assert int(after.labels[3]) != int(before.labels[3]) or \
            after.num_clusters != before.num_clusters

    def test_cache_consistency_after_updates(self, karate):
        dyn = DynamicSCAN(AdjacencyGraph.from_csr(karate), 3, 0.5)
        rng = np.random.default_rng(7)
        edges = list(karate.edges())
        rng.shuffle(edges)
        for u, v, _ in edges[:20]:
            dyn.remove_edge(u, v)
        for u, v, _ in edges[:10]:
            dyn.add_edge(u, v)
        assert dyn.verify_cache()

    def test_update_cost_is_local(self, lfr_medium):
        dyn = DynamicSCAN(AdjacencyGraph.from_csr(lfr_medium), 4, 0.5)
        base = dyn.sigma_recomputations
        # Insert one edge between two low-degree vertices.
        degrees = lfr_medium.degrees
        candidates = np.argsort(degrees)
        u = int(candidates[0])
        v = next(
            int(x)
            for x in candidates[1:]
            if not lfr_medium.has_edge(u, int(x)) and int(x) != u
        )
        dyn.add_edge(u, v)
        touched = dyn.sigma_recomputations - base
        assert touched <= lfr_medium.degree(u) + lfr_medium.degree(v) + 2

    def test_pending_changes_flag(self, triangle):
        dyn = DynamicSCAN(AdjacencyGraph.from_csr(triangle), 2, 0.5)
        dyn.clustering()
        assert not dyn.pending_changes
        dyn.remove_edge(0, 1)
        assert dyn.pending_changes
        dyn.clustering()
        assert not dyn.pending_changes

    def test_add_vertex_then_connect(self):
        g = AdjacencyGraph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(0, 2)
        dyn = DynamicSCAN(g, 2, 0.5)
        v = dyn.add_vertex()
        dyn.add_edge(v, 0)
        dyn.add_edge(v, 1)
        assert_matches_batch(dyn, 2, 0.5)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            DynamicSCAN(AdjacencyGraph(2), 0, 0.5)
        with pytest.raises(ConfigError):
            DynamicSCAN(AdjacencyGraph(2), 2, 0.0)

    def test_weighted_stream(self, weighted_triangle):
        dyn = DynamicSCAN(
            AdjacencyGraph.from_csr(weighted_triangle), 2, 0.5
        )
        assert_matches_batch(dyn, 2, 0.5)
        dyn.add_vertex()
        dyn.add_edge(3, 0, 2.5)
        dyn.add_edge(3, 1, 2.5)
        assert_matches_batch(dyn, 2, 0.5)
