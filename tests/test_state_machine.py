"""Tests for the Figure 3 vertex state machine (Theorem 1)."""

import pytest

from repro.errors import StateTransitionError
from repro.structures.state import (
    ALLOWED_TRANSITIONS,
    StateMachine,
    VertexState,
)

S = VertexState


class TestSchema:
    def test_processed_never_unprocessed(self):
        for state, targets in ALLOWED_TRANSITIONS.items():
            if state.name.startswith("PROCESSED"):
                for target in targets:
                    assert not target.name.startswith("UNTOUCHED")
                    assert target.name.startswith("PROCESSED")

    def test_border_never_core(self):
        assert S.PROCESSED_CORE not in ALLOWED_TRANSITIONS[S.PROCESSED_BORDER]
        assert S.UNPROCESSED_CORE not in ALLOWED_TRANSITIONS[S.PROCESSED_BORDER]

    def test_core_states_terminal_or_core(self):
        assert ALLOWED_TRANSITIONS[S.PROCESSED_CORE] == frozenset()
        assert ALLOWED_TRANSITIONS[S.UNPROCESSED_CORE] == frozenset(
            {S.PROCESSED_CORE}
        )

    def test_noise_promotion_path_exists(self):
        # A noise vertex can be discovered to be a border in Step 4.
        assert S.PROCESSED_BORDER in ALLOWED_TRANSITIONS[S.PROCESSED_NOISE]
        assert S.PROCESSED_BORDER in ALLOWED_TRANSITIONS[S.UNPROCESSED_NOISE]


class TestTransitions:
    def test_initial_untouched(self):
        sm = StateMachine(3)
        for v in range(3):
            assert sm.get(v) == S.UNTOUCHED

    def test_legal_transition(self):
        sm = StateMachine(2)
        sm.set(0, S.PROCESSED_CORE)
        assert sm.get(0) == S.PROCESSED_CORE

    def test_illegal_transition_raises(self):
        sm = StateMachine(2)
        sm.set(0, S.PROCESSED_CORE)
        with pytest.raises(StateTransitionError):
            sm.set(0, S.PROCESSED_NOISE)

    def test_border_to_core_rejected(self):
        sm = StateMachine(1)
        sm.set(0, S.UNPROCESSED_BORDER)
        sm.set(0, S.PROCESSED_BORDER)
        with pytest.raises(StateTransitionError):
            sm.set(0, S.PROCESSED_CORE)

    def test_same_state_is_noop(self):
        sm = StateMachine(1)
        sm.set(0, S.PROCESSED_CORE)
        sm.set(0, S.PROCESSED_CORE)  # no raise

    def test_try_set_returns_flag(self):
        sm = StateMachine(1)
        assert sm.try_set(0, S.UNPROCESSED_BORDER)
        assert not sm.try_set(0, S.UNTOUCHED)  # illegal, silently refused
        assert sm.get(0) == S.UNPROCESSED_BORDER

    def test_validation_can_be_disabled(self):
        sm = StateMachine(1, validate=False)
        sm.set(0, S.PROCESSED_CORE)
        sm.set(0, S.UNTOUCHED)  # nonsense, but allowed when disabled
        assert sm.get(0) == S.UNTOUCHED

    def test_full_legal_path(self):
        sm = StateMachine(1)
        sm.set(0, S.UNPROCESSED_BORDER)
        sm.set(0, S.UNPROCESSED_CORE)
        sm.set(0, S.PROCESSED_CORE)


class TestQueries:
    def test_is_core(self):
        sm = StateMachine(3)
        sm.set(0, S.UNPROCESSED_BORDER)
        sm.set(0, S.UNPROCESSED_CORE)
        sm.set(1, S.PROCESSED_CORE)
        assert sm.is_core(0)
        assert sm.is_core(1)
        assert not sm.is_core(2)

    def test_is_processed(self):
        sm = StateMachine(2)
        sm.set(0, S.PROCESSED_NOISE)
        assert sm.is_processed(0)
        assert not sm.is_processed(1)

    def test_untouched_vertices(self):
        sm = StateMachine(4)
        sm.set(1, S.PROCESSED_NOISE)
        assert list(sm.untouched_vertices()) == [0, 2, 3]

    def test_vertices_in(self):
        sm = StateMachine(4)
        sm.set(0, S.UNPROCESSED_BORDER)
        sm.set(2, S.UNPROCESSED_BORDER)
        sm.set(3, S.PROCESSED_NOISE)
        found = list(sm.vertices_in(S.UNPROCESSED_BORDER, S.PROCESSED_NOISE))
        assert found == [0, 2, 3]

    def test_counts(self):
        sm = StateMachine(3)
        sm.set(0, S.PROCESSED_CORE)
        counts = sm.counts()
        assert counts[S.PROCESSED_CORE] == 1
        assert counts[S.UNTOUCHED] == 2
        assert sum(counts.values()) == 3

    def test_len(self):
        assert len(StateMachine(7)) == 7
