"""Interprocedural rules R6-R8: seeded fixtures, call graph, reports."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    Finding,
    ProgramAnalyzer,
    load_baseline,
    render_json,
    render_sarif,
    subtract_baseline,
    write_baseline,
)
from repro.analysis.dataflow import Program, build_call_graph

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
REPO = Path(__file__).resolve().parent.parent

FIXTURE_CONFIG = AnalysisConfig(
    kernel_modules=["fixtures/analysis"],
    api_modules=["fixtures/analysis"],
    guarded_exception_modules=["fixtures/analysis"],
)


def findings_for(name, config=FIXTURE_CONFIG):
    analyzer = ProgramAnalyzer(config=config)
    return analyzer.analyze_paths([FIXTURES / name])


class TestCallGraph:
    def test_pool_map_arguments_become_roots(self):
        program = Program.build([FIXTURES / "viol_r6.py"])
        graph = build_call_graph(program, FIXTURE_CONFIG)
        roots = {root.function.qualname for root in graph.roots}
        assert {"worker", "other_worker", "local_worker"} <= roots

    def test_calls_resolve_through_helpers(self):
        program = Program.build([FIXTURES / "viol_r6.py"])
        graph = build_call_graph(program, FIXTURE_CONFIG)
        worker = next(
            info
            for info in program.functions.values()
            if info.qualname == "worker"
        )
        callees = {
            callee.qualname for _, callee in graph.edges.get(worker.ref, [])
        }
        assert {"_bump", "_tally", "_bump_safe"} <= callees

    def test_spawn_through_parameters_root_real_chunk_workers(self):
        program = Program.build([REPO / "src" / "repro"])
        graph = build_call_graph(program, AnalysisConfig())
        roots = {root.function.ref for root in graph.roots}
        assert "repro.parallel.processes:_range_query_chunk" in roots
        assert "repro.parallel.processes:_worker_init" in roots
        assert "repro.service.jobs:JobScheduler._worker_loop" in roots

    def test_configured_concurrency_roots_are_added(self):
        config = AnalysisConfig(concurrency_roots=["_bump_safe"])
        program = Program.build([FIXTURES / "viol_r6.py"])
        graph = build_call_graph(program, config)
        reasons = {
            root.function.qualname: root.reason for root in graph.roots
        }
        assert "configured" in reasons["_bump_safe"]


class TestR6SharedWrites:
    def test_seeded_races_fire_through_one_and_two_call_hops(self):
        findings = [f for f in findings_for("viol_r6.py") if f.rule == "R6"]
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "'COUNTS'" in messages
        assert "'TOTALS'" in messages
        assert "_accumulate" in messages

    def test_guarded_and_local_writes_stay_silent(self):
        messages = " ".join(f.message for f in findings_for("viol_r6.py"))
        assert "SAFE_COUNTS" not in messages
        assert "local_worker" not in messages

    def test_pragma_on_writing_function_suppresses(self, tmp_path):
        source = (FIXTURES / "viol_r6.py").read_text()
        source = source.replace(
            "def _bump(key):",
            "def _bump(key):  # repro: allow[R6]",
        )
        target = tmp_path / "viol_r6.py"
        target.write_text(source)
        analyzer = ProgramAnalyzer(config=FIXTURE_CONFIG)
        findings = analyzer.analyze_paths([target])
        messages = " ".join(f.message for f in findings)
        assert "'COUNTS'" not in messages
        assert "'TOTALS'" in messages  # the other race still fires


class TestR7LockOrder:
    def test_abba_cycle_fires_with_real_sites(self):
        findings = [f for f in findings_for("viol_r7.py") if f.rule == "R7"]
        assert len(findings) == 1
        message = findings[0].message
        assert "LOCK_A" in message and "LOCK_B" in message
        assert "viol_r7.py:20" in message  # acquisition site, not line 1
        assert findings[0].line > 1

    def test_consistent_pair_stays_silent(self):
        message = " ".join(f.message for f in findings_for("viol_r7.py"))
        assert "LOCK_C" not in message
        assert "LOCK_D" not in message


class TestR8SegmentLifecycle:
    def test_fallthrough_and_exception_leaks_fire(self):
        findings = [f for f in findings_for("viol_r8.py") if f.rule == "R8"]
        assert len(findings) == 2
        by_message = {
            "fall-through": [
                f for f in findings if "fall-through" in f.message
            ],
            "exception": [f for f in findings if "raises" in f.message],
        }
        assert len(by_message["fall-through"]) == 1
        assert "leaky_fallthrough" in by_message["fall-through"][0].message
        assert len(by_message["exception"]) == 1
        assert "leaky_exception_edge" in by_message["exception"][0].message

    def test_clean_lifecycles_stay_silent(self):
        messages = " ".join(f.message for f in findings_for("viol_r8.py"))
        for clean in (
            "clean_try_finally",
            "clean_escape_to_registry",
            "clean_factory",
            "clean_attach_only",
        ):
            assert clean not in messages

    def test_handle_factory_leak_fires_and_with_discharges(self, tmp_path):
        """`handle-factories` entries get the same R8 audit as segments:
        an unclosed WAL-style handle leaks, a with-managed one does not."""
        target = tmp_path / "wal_handles.py"
        target.write_text(
            textwrap.dedent(
                """
                def _open_wal(path):
                    return open(path, "r+b", buffering=0)

                def leaky_open(path, sink):
                    handle = _open_wal(path)
                    sink(handle.read())
                    # falls through without close()

                def clean_with(path, sink):
                    with _open_wal(path) as handle:
                        sink(handle.read())

                def clean_close(path, sink):
                    handle = _open_wal(path)
                    try:
                        sink(handle.read())
                    finally:
                        handle.close()
                """
            )
        )
        config = AnalysisConfig(handle_factories=["_open_wal"])
        findings = [
            f
            for f in ProgramAnalyzer(config=config).analyze_paths([target])
            if f.rule == "R8"
        ]
        assert findings, "unclosed handle from a handle-factory must fire"
        messages = " ".join(f.message for f in findings)
        assert "leaky_open" in messages
        assert "clean_with" not in messages
        assert "clean_close" not in messages
        # Without the config entry the factory is not audited at all.
        silent = ProgramAnalyzer(config=AnalysisConfig()).analyze_paths(
            [target]
        )
        assert [f for f in silent if f.rule == "R8"] == []

    def test_view_of_handle_is_not_an_escape(self, tmp_path):
        target = tmp_path / "leak.py"
        target.write_text(
            textwrap.dedent(
                """
                from multiprocessing.shared_memory import SharedMemory

                def leak_via_view(sink):
                    shm = SharedMemory(create=True, size=16)
                    sink(shm.buf)
                    return shm.name
                """
            )
        )
        analyzer = ProgramAnalyzer(config=FIXTURE_CONFIG)
        findings = analyzer.analyze_paths([target])
        assert any(f.rule == "R8" for f in findings)


class TestSrcReproIsClean:
    def test_interprocedural_pass_is_clean_on_the_library(self):
        analyzer = ProgramAnalyzer(config=AnalysisConfig())
        findings = analyzer.analyze_paths([REPO / "src" / "repro"])
        assert findings == []


class TestReports:
    FINDINGS = [
        Finding(path="a.py", line=3, col=0, rule="R6", message="race on X"),
        Finding(path="b.py", line=9, col=4, rule="R8", message="leak of Y"),
    ]

    def test_json_report_shape(self):
        payload = json.loads(render_json(self.FINDINGS))
        assert payload["tool"]["name"] == "repro-analysis"
        assert payload["summary"] == {"R6": 1, "R8": 1, "total": 2}
        assert payload["findings"][0]["path"] == "a.py"

    def test_sarif_report_validates_basic_shape(self):
        doc = json.loads(render_sarif(self.FINDINGS))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert "R6" in rule_ids and "R8" in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "R6"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "a.py"
        assert location["region"]["startLine"] == 3
        # ruleIndex must point at the matching rules[] entry
        assert rule_ids[result["ruleIndex"]] == "R6"

    def test_baseline_round_trip_and_diff(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, self.FINDINGS[:1])
        baseline = load_baseline(baseline_path)
        new_finding = Finding(
            path="c.py", line=1, col=0, rule="R7", message="cycle"
        )
        diff = subtract_baseline(
            [self.FINDINGS[0], new_finding], baseline
        )
        assert diff.new == [new_finding]
        assert diff.known == [self.FINDINGS[0]]
        assert diff.stale == []

    def test_stale_baseline_entries_are_reported(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, self.FINDINGS)
        diff = subtract_baseline(
            [self.FINDINGS[0]], load_baseline(baseline_path)
        )
        assert [entry["rule"] for entry in diff.stale] == ["R8"]

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"findings\": [{\"rule\": \"R6\"}]}")
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestCli:
    def run_cli(self, *args, cwd=REPO):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_list_rules_includes_interprocedural_pack(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("R6", "R7", "R8"):
            assert rule_id in proc.stdout

    def test_interprocedural_gate_is_clean_on_src(self):
        proc = self.run_cli("--interprocedural", "src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_sarif_output_file(self, tmp_path):
        out = tmp_path / "report.sarif"
        proc = self.run_cli(
            "--interprocedural",
            "--format",
            "sarif",
            "--output",
            str(out),
            "src/repro",
        )
        assert proc.returncode == 0
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"

    def test_select_program_rule_implies_interprocedural(self, tmp_path):
        fixture = tmp_path / "viol_r6.py"
        fixture.write_text((FIXTURES / "viol_r6.py").read_text())
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro-analysis]\n")
        proc = self.run_cli(
            "--select",
            "R6",
            "--config",
            str(pyproject),
            str(fixture),
        )
        assert proc.returncode == 1
        assert "R6" in proc.stdout

    def test_baseline_gates_only_new_findings(self, tmp_path):
        fixture = tmp_path / "viol_r6.py"
        fixture.write_text((FIXTURES / "viol_r6.py").read_text())
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro-analysis]\n")
        baseline = tmp_path / "baseline.json"
        proc = self.run_cli(
            "--select",
            "R6",
            "--config",
            str(pyproject),
            "--write-baseline",
            str(baseline),
            str(fixture),
        )
        assert proc.returncode == 0
        assert json.loads(baseline.read_text())["findings"]
        proc = self.run_cli(
            "--select",
            "R6",
            "--config",
            str(pyproject),
            "--baseline",
            str(baseline),
            str(fixture),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "matched the baseline" in proc.stderr
