"""EdgeSimilarityIndex: build parity, persistence, and guarded reuse."""

import numpy as np
import pytest

from repro.baselines.scan import scan
from repro.core.explorer import ParameterExplorer
from repro.errors import ConfigError
from repro.graph.builder import GraphBuilder
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.parallel.threads import ThreadBackend
from repro.similarity.index import (
    EdgeSimilarityIndex,
    IndexedOracle,
    graph_fingerprint,
)
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle


@pytest.fixture(scope="module")
def graph():
    return gnm_random_graph(80, 300, seed=13)


@pytest.fixture(scope="module")
def index(graph):
    return EdgeSimilarityIndex.build(graph, SimilarityConfig())


class TestBuild:
    def test_values_match_the_oracle(self, graph, index):
        oracle = SimilarityOracle(graph, SimilarityConfig())
        for p in range(graph.num_vertices):
            row = index.sigma_row(p)
            for slot, q in enumerate(graph.neighbors(p)):
                assert row[slot] == pytest.approx(
                    oracle.sigma_unrecorded(p, int(q)), abs=1e-12
                )

    @pytest.mark.parametrize("kind", ["jaccard", "dice", "overlap"])
    def test_set_kinds(self, graph, kind):
        config = SimilarityConfig(kind=kind, pruning=False)
        built = EdgeSimilarityIndex.build(graph, config)
        oracle = SimilarityOracle(graph, config)
        us, vs, sigmas = built.forward_edges()
        for u, v, s in zip(us[:50], vs[:50], sigmas[:50]):
            assert s == pytest.approx(
                oracle.sigma_unrecorded(int(u), int(v)), abs=1e-12
            )

    def test_thread_build_matches_inprocess(self, graph, index):
        threaded = EdgeSimilarityIndex.build(
            graph,
            SimilarityConfig(),
            backend=ThreadBackend(threads=2, chunk_size=11),
        )
        np.testing.assert_array_equal(threaded.sigmas, index.sigmas)

    def test_edgeless_graph(self):
        empty = GraphBuilder(5).build()
        built = EdgeSimilarityIndex.build(empty, SimilarityConfig())
        assert built.sigmas.shape == (0,)
        assert built.eps_neighborhood(0, 0.5).shape == (0,)

    def test_wrong_sigma_shape_rejected(self, graph):
        with pytest.raises(ConfigError):
            EdgeSimilarityIndex(
                graph, SimilarityConfig(), np.zeros(3, dtype=np.float64)
            )


class TestQueries:
    def test_eps_neighborhood_matches_oracle(self, graph, index):
        oracle = SimilarityOracle(graph, SimilarityConfig())
        for eps in (0.2, 0.5, 0.8):
            for p in range(0, graph.num_vertices, 7):
                np.testing.assert_array_equal(
                    index.eps_neighborhood(p, eps),
                    oracle.eps_neighborhood(p, eps),
                )

    def test_eps_counts_matches_per_vertex_queries(self, graph, index):
        oracle = SimilarityOracle(graph, SimilarityConfig())
        counts = index.eps_counts(0.4)
        for p in range(graph.num_vertices):
            assert counts[p] == oracle.eps_neighborhood(p, 0.4).shape[0]

    def test_lookup_distinguishes_non_edges(self, graph, index):
        nb = set(graph.neighbors(0).tolist())
        non_edge = next(
            q for q in range(1, graph.num_vertices) if q not in nb
        )
        edge = next(iter(sorted(nb)))
        values, found = index.lookup(
            np.array([0, 0]), np.array([edge, non_edge])
        )
        assert found.tolist() == [True, False]
        assert values[1] == 0.0
        value, hit = index.lookup_one(0, edge)
        assert hit and value == values[0]


class TestPersistence:
    def test_npz_round_trip(self, tmp_path, graph, index):
        path = tmp_path / "sig.npz"
        index.save(path)
        loaded = EdgeSimilarityIndex.load(path, graph)
        np.testing.assert_array_equal(loaded.sigmas, index.sigmas)
        assert loaded.fingerprint == index.fingerprint
        assert loaded.config.kind == index.config.kind
        assert loaded.config.pruning == index.config.pruning

    def test_load_rejects_different_graph(self, tmp_path, graph, index):
        path = tmp_path / "sig.npz"
        index.save(path)
        other = gnm_random_graph(80, 301, seed=14)
        with pytest.raises(ConfigError, match="different graph"):
            EdgeSimilarityIndex.load(path, other)

    def test_load_rejects_semantic_mismatch(self, tmp_path, graph, index):
        path = tmp_path / "sig.npz"
        index.save(path)
        with pytest.raises(ConfigError, match="semantics mismatch"):
            EdgeSimilarityIndex.load(
                path,
                graph,
                config=SimilarityConfig(kind="jaccard", pruning=False),
            )

    def test_pruning_flag_is_not_semantic(self, tmp_path, graph, index):
        path = tmp_path / "sig.npz"
        index.save(path)
        loaded = EdgeSimilarityIndex.load(
            path, graph, config=SimilarityConfig(pruning=False)
        )
        np.testing.assert_array_equal(loaded.sigmas, index.sigmas)

    def test_fingerprint_tracks_weights(self, graph):
        reweighted = GraphBuilder(graph.num_vertices)
        for u, v, w in graph.edges():
            reweighted.add_edge(int(u), int(v), weight=w + 0.5)
        assert graph_fingerprint(graph) != graph_fingerprint(
            reweighted.build()
        )


class TestIndexedOracle:
    def test_scan_parity_and_zero_evaluations(self, graph, index):
        oracle = IndexedOracle(index)
        ref = scan(graph, 3, 0.5, seed=0)
        got = scan(graph, 3, 0.5, oracle=oracle, seed=0)
        np.testing.assert_array_equal(ref.labels, got.labels)
        np.testing.assert_array_equal(ref.roles, got.roles)
        assert oracle.counters.sigma_evaluations == 0
        assert oracle.counters.work_units == 0.0
        assert oracle.index_lookups > 0
        assert oracle.index_misses == 0

    def test_non_edge_pairs_fall_back_to_kernels(self, graph, index):
        oracle = IndexedOracle(index)
        reference = SimilarityOracle(graph, SimilarityConfig())
        nb = set(graph.neighbors(0).tolist())
        non_edge = next(
            q for q in range(1, graph.num_vertices) if q not in nb
        )
        assert oracle.sigma(0, non_edge) == pytest.approx(
            reference.sigma_unrecorded(0, non_edge), abs=1e-12
        )
        assert oracle.index_misses == 1

    def test_sigma_batch_mixes_hits_and_misses(self, graph, index):
        oracle = IndexedOracle(index)
        reference = SimilarityOracle(graph, SimilarityConfig())
        nb = graph.neighbors(0)
        non_edges = [
            q
            for q in range(graph.num_vertices)
            if q != 0 and q not in set(nb.tolist())
        ][:4]
        qs = np.concatenate([nb, np.asarray(non_edges, dtype=np.int64)])
        values = oracle.sigma_batch(0, qs)
        for q, value in zip(qs, values):
            assert value == pytest.approx(
                reference.sigma_unrecorded(0, int(q)), abs=1e-12
            )
        assert oracle.index_misses == len(non_edges)

    def test_mismatched_graph_rejected(self, index):
        other = gnm_random_graph(80, 301, seed=15)
        with pytest.raises(ConfigError, match="different graph"):
            IndexedOracle(index, graph=other)

    def test_mismatched_config_rejected(self, index):
        with pytest.raises(ConfigError, match="semantics mismatch"):
            IndexedOracle(
                index, config=SimilarityConfig(closed=False, pruning=False)
            )


class TestExplorerAdoption:
    def test_explorer_from_index_matches_fresh(self, graph, index):
        fresh = ParameterExplorer(graph)
        adopted = ParameterExplorer(graph, index=index)
        np.testing.assert_allclose(
            adopted.sigma_values(), fresh.sigma_values(), atol=1e-12
        )
        for mu, eps in [(2, 0.3), (3, 0.5)]:
            ref = fresh.clustering_at(mu, eps)
            got = adopted.clustering_at(mu, eps)
            np.testing.assert_array_equal(ref.labels, got.labels)
        # Adoption skips the O(|E|) evaluation pass entirely.
        assert adopted.precompute_cost == 0.0
        assert fresh.precompute_cost > 0.0
