"""Unit tests for the GS*-style clustering index (DESIGN.md §10).

Covers the derived structures in isolation — core thresholds, core
order, σ-sorted neighborhood prefixes — plus persistence, incremental
refresh, and the zero-σ counter contract.  The differential battery
against the sequential reference lives in ``test_index_differential``;
metamorphic properties in ``test_index_properties``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import scan
from repro.errors import ConfigError, IndexIntegrityError
from repro.graph.csr import Graph
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.similarity.gsindex import (
    DEFAULT_MU_CAP,
    ClusteringIndex,
    _consecutive_runs,
)
from repro.similarity.index import EdgeSimilarityIndex
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle


@pytest.fixture(scope="module")
def medium():
    return gnm_random_graph(120, 420, seed=5)


@pytest.fixture(scope="module")
def index(medium):
    return ClusteringIndex.build(medium, mu_cap=6)


# ----------------------------------------------------------------------
# construction and validation
# ----------------------------------------------------------------------
def test_mu_cap_must_be_positive(medium):
    edge = EdgeSimilarityIndex.build(medium)
    with pytest.raises(ConfigError):
        ClusteringIndex(edge, mu_cap=0)


def test_build_default_cap(medium):
    assert ClusteringIndex.build(medium).mu_cap == DEFAULT_MU_CAP


def test_sorted_rows_are_permuted_csr_rows(medium, index):
    """Each σ-sorted row holds exactly the CSR row, σ non-increasing,
    ties broken by ascending neighbor id."""
    for v in range(medium.num_vertices):
        lo, hi = int(medium.indptr[v]), int(medium.indptr[v + 1])
        neighbors = index._sorted_neighbors[lo:hi]
        sigmas = index._sorted_sigmas[lo:hi]
        assert sorted(neighbors) == sorted(medium.indices[lo:hi])
        assert np.all(np.diff(sigmas) <= 0)
        for i in range(len(sigmas) - 1):
            if sigmas[i] == sigmas[i + 1]:
                assert neighbors[i] < neighbors[i + 1]


def test_core_epsilon_is_kth_largest_sigma(medium, index):
    """ε̂_μ(v) equals the (μ − self)-th largest σ of v's row (brute
    force recomputation), with the documented sentinels elsewhere."""
    oracle = SimilarityOracle(medium, index.config)
    for v in range(medium.num_vertices):
        row = np.asarray(
            sorted(
                (oracle.sigma(v, int(q)) for q in medium.neighbors(v)),
                reverse=True,
            )
        )
        for mu in (1, 2, 3, 6, 9, 40):
            k = mu - 1  # count_self=True by default
            expected = (
                2.0 if k <= 0 else (-1.0 if k > row.shape[0] else row[k - 1])
            )
            assert index.core_epsilon(v, mu) == pytest.approx(expected)


def test_core_mask_matches_thresholds(medium, index):
    for epsilon in (0.2, 0.5, 0.8):
        for mu in (2, 4, 6):
            mask = index.core_mask(epsilon, mu)
            for v in range(medium.num_vertices):
                assert mask[v] == (index.core_epsilon(v, mu) >= epsilon)


def test_core_mask_above_cap_matches_below_cap(medium):
    """μ > mu_cap degrades to the gather path; answers must not change."""
    small = ClusteringIndex.build(medium, mu_cap=2)
    wide = ClusteringIndex.build(medium, mu_cap=12)
    for epsilon in (0.3, 0.6):
        for mu in (3, 7, 12):
            np.testing.assert_array_equal(
                small.core_mask(epsilon, mu),  # gather path
                wide.core_mask(epsilon, mu),  # binary-search path
            )


def test_core_mask_exact_threshold_is_inclusive(medium, index):
    """ε exactly equal to a vertex's threshold keeps it a core (σ ≥ ε)."""
    v = int(np.argmax(medium.degrees))
    threshold = index.core_epsilon(v, 3)
    assert 0 < threshold <= 1
    assert index.core_mask(threshold, 3)[v]


def test_eps_neighborhood_matches_oracle(medium, index):
    oracle = SimilarityOracle(medium, index.config)
    for v in (0, 7, 42, 119):
        for epsilon in (0.25, 0.5, 0.75):
            expected = np.asarray(
                sorted(
                    q
                    for q in medium.neighbors(v)
                    if oracle.sigma(v, int(q)) >= epsilon
                ),
                dtype=np.int64,
            )
            got = index.eps_neighborhood(v, epsilon)
            np.testing.assert_array_equal(got, expected)


def test_cores_ascending(medium, index):
    cores = index.cores(0.5, 3)
    assert np.all(np.diff(cores) > 0)
    assert np.array_equal(cores, np.flatnonzero(index.core_mask(0.5, 3)))


# ----------------------------------------------------------------------
# zero-σ contract
# ----------------------------------------------------------------------
def test_queries_never_evaluate_sigma(medium):
    """The whole point: after build, σ counters stay frozen at zero."""
    idx = ClusteringIndex.build(medium, mu_cap=4)
    assert idx.counters.sigma_evaluations == 0
    for epsilon, mu in ((0.3, 2), (0.5, 4), (0.7, 9), (0.9, 2)):
        idx.query(epsilon, mu, seed=3)
        idx.core_mask(epsilon, mu)
        idx.eps_neighborhood(0, epsilon)
        assert idx.counters.sigma_evaluations == 0
        assert idx.last_query["sigma_evaluations"] == 0
        assert idx.last_query["epsilon"] == pytest.approx(epsilon)
        assert idx.last_query["mu"] == mu
    # Each query() and each eps_neighborhood() is one recorded range
    # query (the latter so index-tier accounting round-trips the same
    # way the oracle tiers' does), all with zero σ evaluations.
    assert idx.counters.neighborhood_queries == 8


def test_query_matches_scan_smoke(medium, index):
    result = index.query(0.5, 3, seed=1)
    reference = scan(medium, 3, 0.5, seed=1)
    np.testing.assert_array_equal(result.labels, reference.labels)


def test_query_validates_parameters(index):
    with pytest.raises(ConfigError):
        index.query(0.0, 2)
    with pytest.raises(ConfigError):
        index.query(0.5, 0)


def test_empty_graph():
    empty = Graph.from_edges(5, [])
    idx = ClusteringIndex.build(empty)
    assert idx.query(0.5, 2).num_clusters == 0
    assert not idx.core_mask(0.5, 2).any()
    # μ=1 with count_self: every vertex is trivially a core.
    assert idx.core_mask(0.5, 1).all()


def test_info_reports_structure(index, medium):
    info = index.info()
    assert info["mu_cap"] == 6
    assert info["num_vertices"] == medium.num_vertices
    assert info["slots"] == int(medium.indices.shape[0])
    assert info["bytes"] > 0
    assert info["fingerprint"] == index.fingerprint


# ----------------------------------------------------------------------
# cross-backend determinism
# ----------------------------------------------------------------------
def test_build_bitwise_identical_across_backends(medium):
    base = ClusteringIndex.build(medium)
    for backend in ("thread", "auto"):
        other = ClusteringIndex.build(medium, backend=backend, workers=2)
        np.testing.assert_array_equal(base.edge.sigmas, other.edge.sigmas)
        np.testing.assert_array_equal(base._order, other._order)
        np.testing.assert_array_equal(base._core_eps, other._core_eps)
        np.testing.assert_array_equal(base._core_order, other._core_order)


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
def test_save_load_roundtrip(tmp_path, medium, index):
    path = tmp_path / "g.gsindex.npz"
    index.save(path)
    loaded = ClusteringIndex.load(path, medium)
    assert loaded.mu_cap == index.mu_cap
    np.testing.assert_array_equal(loaded.edge.sigmas, index.edge.sigmas)
    np.testing.assert_array_equal(loaded._order, index._order)


def test_archive_is_edge_index_superset(tmp_path, medium, index):
    """A clustering-index archive loads as a plain edge index, and an
    edge-index archive loads as a clustering index (default cap)."""
    path = tmp_path / "g.gsindex.npz"
    index.save(path)
    edge = EdgeSimilarityIndex.load(path, medium)
    np.testing.assert_array_equal(edge.sigmas, index.edge.sigmas)

    other = tmp_path / "g.sigma.npz"
    index.edge.save(other)
    upgraded = ClusteringIndex.load(other, medium)
    assert upgraded.mu_cap == DEFAULT_MU_CAP
    np.testing.assert_array_equal(upgraded.edge.sigmas, index.edge.sigmas)


def test_load_rejects_wrong_graph(tmp_path, medium, index):
    path = tmp_path / "g.gsindex.npz"
    index.save(path)
    other = gnm_random_graph(120, 420, seed=6)
    with pytest.raises(ConfigError):
        ClusteringIndex.load(path, other)


def test_load_missing_raises_integrity(tmp_path, medium):
    with pytest.raises(IndexIntegrityError):
        ClusteringIndex.load(tmp_path / "missing.npz", medium)


def test_load_or_rebuild_quarantines_garbage(tmp_path, medium):
    path = tmp_path / "g.gsindex.npz"
    path.write_bytes(b"not an archive")
    idx, recovered = ClusteringIndex.load_or_rebuild(path, medium, mu_cap=3)
    assert recovered
    assert idx.mu_cap == 3
    assert (tmp_path / "g.gsindex.npz.quarantined").exists()
    # The rebuilt archive is valid now.
    again, recovered_again = ClusteringIndex.load_or_rebuild(path, medium)
    assert not recovered_again
    np.testing.assert_array_equal(again.edge.sigmas, idx.edge.sigmas)


# ----------------------------------------------------------------------
# incremental refresh
# ----------------------------------------------------------------------
def _drop_one_edge(graph: Graph):
    """Remove the first undirected edge; return (new_graph, u, v)."""
    owners = np.repeat(
        np.arange(graph.num_vertices), np.diff(graph.indptr)
    )
    mask = owners < graph.indices
    u = int(owners[mask][0])
    v = int(graph.indices[mask][0])
    pairs = list(zip(owners[mask].tolist(), graph.indices[mask].tolist()))
    pairs.remove((u, v))
    return Graph.from_edges(graph.num_vertices, pairs), u, v


def test_refresh_bitwise_equals_fresh_build(medium, index):
    new_graph, u, v = _drop_one_edge(medium)
    affected = {u, v}
    affected.update(int(q) for q in medium.neighbors(u))
    affected.update(int(q) for q in medium.neighbors(v))
    patched, stats = index.refresh(new_graph, affected)
    fresh = ClusteringIndex.build(new_graph, mu_cap=index.mu_cap)
    np.testing.assert_array_equal(patched.edge.sigmas, fresh.edge.sigmas)
    np.testing.assert_array_equal(patched._order, fresh._order)
    np.testing.assert_array_equal(patched._core_eps, fresh._core_eps)
    assert stats["rows_recomputed"] == len(affected)
    assert stats["slots_recomputed"] + stats["slots_copied"] == int(
        new_graph.indices.shape[0]
    )
    assert stats["slots_copied"] > 0  # most rows were untouched


def test_refresh_rejects_insufficient_affected_set(medium, index):
    new_graph, u, v = _drop_one_edge(medium)
    with pytest.raises(ConfigError, match="affected set"):
        index.refresh(new_graph, {u})  # v's row changed too


def test_refresh_rejects_out_of_range_ids(medium, index):
    with pytest.raises(ConfigError, match="out of range"):
        index.refresh(medium, {medium.num_vertices + 3})


def test_consecutive_runs():
    assert _consecutive_runs(np.asarray([], dtype=np.int64)) == []
    assert _consecutive_runs(np.asarray([4])) == [(4, 5)]
    assert _consecutive_runs(np.asarray([1, 2, 3, 7, 9, 10])) == [
        (1, 4),
        (7, 8),
        (9, 11),
    ]
