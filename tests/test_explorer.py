"""Tests for the (μ, ε) parameter explorer."""

import numpy as np
import pytest

from repro.baselines import scan
from repro.core.explorer import ParameterExplorer
from repro.errors import ConfigError
from repro.metrics.comparison import explain_difference
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle


@pytest.fixture(scope="module")
def explorer(lfr_small):
    return ParameterExplorer(lfr_small)


class TestExactness:
    @pytest.mark.parametrize("mu,eps", [(2, 0.3), (3, 0.5), (5, 0.5),
                                        (4, 0.7), (3, 1.0)])
    def test_matches_scan(self, lfr_small, explorer, mu, eps):
        oracle = SimilarityOracle(lfr_small, SimilarityConfig())
        reference = scan(lfr_small, mu, eps, seed=1)
        result = explorer.clustering_at(mu, eps)
        problems = explain_difference(
            lfr_small, oracle, reference, result, mu, eps
        )
        assert not problems, problems

    def test_matches_scan_on_karate(self, karate):
        explorer = ParameterExplorer(karate)
        oracle = SimilarityOracle(karate, SimilarityConfig())
        for mu, eps in [(2, 0.4), (3, 0.5), (3, 0.6)]:
            reference = scan(karate, mu, eps, seed=1)
            result = explorer.clustering_at(mu, eps)
            assert not explain_difference(
                karate, oracle, reference, result, mu, eps
            )

    def test_weighted_graph(self, weighted_triangle):
        explorer = ParameterExplorer(weighted_triangle)
        result = explorer.clustering_at(2, 0.5)
        reference = scan(weighted_triangle, 2, 0.5)
        assert result.same_partition(reference)


class TestCoreThresholds:
    def test_thresholds_consistent_with_cores(self, lfr_small, explorer):
        thresholds = explorer.core_thresholds(4)
        for eps in (0.3, 0.5, 0.7):
            mask = explorer.cores_at(4, eps)
            assert np.array_equal(mask, thresholds >= eps)

    def test_monotone_in_mu(self, explorer):
        t3 = explorer.core_thresholds(3)
        t6 = explorer.core_thresholds(6)
        assert np.all(t6 <= t3 + 1e-12)

    def test_mu_one_always_core(self, explorer):
        # With count_self, μ=1 is satisfied by the vertex itself.
        assert np.all(explorer.core_thresholds(1) == 1.0)

    def test_triangle_thresholds(self, triangle):
        explorer = ParameterExplorer(triangle)
        # Every vertex has two σ=1 neighbors: core at any ε for μ<=3.
        assert np.all(explorer.core_thresholds(3) == pytest.approx(1.0))

    def test_invalid_mu(self, explorer):
        with pytest.raises(ConfigError):
            explorer.core_thresholds(0)

    def test_invalid_epsilon(self, explorer):
        with pytest.raises(ConfigError):
            explorer.cores_at(3, 0.0)


class TestCandidatesAndSuggestion:
    def test_candidates_descending(self, explorer):
        candidates = explorer.epsilon_candidates(4)
        eps_values = [eps for eps, _ in candidates]
        assert eps_values == sorted(eps_values, reverse=True)

    def test_candidate_core_counts_increase(self, explorer):
        candidates = explorer.epsilon_candidates(4)
        counts = [count for _, count in candidates]
        assert counts == sorted(counts)

    def test_candidate_counts_match_cores_at(self, explorer):
        for eps, count in explorer.epsilon_candidates(4)[:10]:
            assert int(explorer.cores_at(4, eps).sum()) == count

    def test_suggest_epsilon_in_range(self, explorer):
        eps = explorer.suggest_epsilon(4)
        assert 0.0 < eps <= 1.0

    def test_suggest_epsilon_produces_cores(self, lfr_small, explorer):
        eps = explorer.suggest_epsilon(4, min_cores=3)
        assert int(explorer.cores_at(4, eps).sum()) >= 3

    def test_suggestion_on_coreless_graph(self, path_graph):
        explorer = ParameterExplorer(path_graph)
        assert explorer.suggest_epsilon(5) == 0.5  # fallback default


class TestCosts:
    def test_precompute_charges_once(self, lfr_small):
        explorer = ParameterExplorer(lfr_small)
        assert explorer.oracle.counters.sigma_evaluations == (
            lfr_small.num_edges
        )
        cost = explorer.precompute_cost
        explorer.clustering_at(3, 0.5)
        explorer.clustering_at(5, 0.7)
        assert explorer.precompute_cost == cost  # queries are free

    def test_sigma_values_copy(self, explorer):
        values = explorer.sigma_values()
        values[:] = 0.0
        assert explorer.sigma_values().max() > 0.0
