"""Tests for the ideal parallel algorithm (Figure 11 yardstick)."""

import numpy as np
import pytest

from repro.baselines.ideal import (
    ideal_edge_costs,
    ideal_evaluate_all,
    ideal_total_work,
)
from repro.core.parallel import ideal_speedups
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle


class TestCosts:
    def test_one_cost_per_edge(self, karate):
        costs = ideal_edge_costs(karate)
        assert costs.shape[0] == karate.num_edges

    def test_costs_are_degree_sums(self, triangle):
        costs = ideal_edge_costs(triangle)
        assert np.all(costs == 4.0)  # every vertex has degree 2

    def test_total_work(self, triangle):
        assert ideal_total_work(triangle) == pytest.approx(12.0)

    def test_total_bounded_by_max_degree(self, karate):
        total = ideal_total_work(karate)
        dmax = int(karate.degrees.max())
        assert total <= 2 * karate.num_edges * dmax


class TestEvaluation:
    def test_pass_count_matches_manual(self, karate):
        oracle = SimilarityOracle(karate, SimilarityConfig(pruning=False))
        expected = sum(
            1
            for u, v, _ in karate.edges()
            if oracle.sigma_unrecorded(u, v) >= 0.5
        )
        assert ideal_evaluate_all(karate, 0.5) == expected

    def test_counters_charged(self, karate):
        oracle = SimilarityOracle(karate, SimilarityConfig(pruning=False))
        ideal_evaluate_all(karate, 0.5, oracle=oracle)
        assert oracle.counters.sigma_evaluations == karate.num_edges


class TestSpeedups:
    def test_monotone_in_threads(self, lfr_small):
        s = ideal_speedups(lfr_small, [1, 2, 4, 8])
        assert s[1] == pytest.approx(1.0)
        assert s[1] < s[2] < s[4] < s[8]

    def test_bounded_by_thread_count(self, lfr_small):
        s = ideal_speedups(lfr_small, [2, 4, 8, 16])
        for t, speedup in s.items():
            assert speedup <= t + 1e-9

    def test_near_linear_with_many_tasks(self, lfr_medium):
        s = ideal_speedups(lfr_medium, [8])
        assert s[8] > 6.0
