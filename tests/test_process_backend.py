"""The shared-memory process backend: parity, lifecycle, fallback."""

import numpy as np
import pytest

from repro.analysis.runtime import ShadowArray, ShadowWriteLog
from repro.errors import ConfigError, SimulationError
from repro.graph.csr import Graph
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.parallel import processes as procmod
from repro.parallel.processes import (
    FORCE_FALLBACK_ENV,
    ProcessBackend,
    SharedGraph,
    shared_memory_available,
)
from repro.parallel.threads import (
    parallel_edge_similarities as thread_edge_similarities,
    parallel_neighbor_updates as thread_neighbor_updates,
    parallel_range_queries as thread_range_queries,
)
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="POSIX shared memory unavailable on this machine",
)

EPS = 0.4


@pytest.fixture(scope="module")
def medium():
    return gnm_random_graph(150, 450, seed=3)


@pytest.fixture(scope="module")
def pool(medium):
    """One pool reused across the module (spin-up is the slow part)."""
    with ProcessBackend(workers=2, chunk_size=16) as backend:
        # Warm the session once so individual tests stay fast.
        backend.map_range_queries(medium, [0], EPS)
        yield backend


class TestSharedGraph:
    def test_publishes_all_arrays(self, medium):
        with SharedGraph(medium) as shared:
            labels = [label for label, _ in shared.handle.specs]
            assert labels == list(procmod._ARRAY_LABELS)

    def test_segments_match_source_arrays(self, medium):
        shared = SharedGraph(medium)
        try:
            specs = dict(shared.handle.specs)
            assert specs["indptr"].shape == medium.indptr.shape
            assert specs["indices"].shape == medium.indices.shape
        finally:
            shared.close()

    def test_close_is_idempotent(self, medium):
        shared = SharedGraph(medium)
        assert not shared.closed
        shared.close()
        assert shared.closed
        shared.close()  # second close must not raise

    def test_edgeless_graph_roundtrip(self):
        empty = Graph.from_edges(4, [])
        with SharedGraph(empty) as shared:
            assert len(shared.handle.specs) == len(procmod._ARRAY_LABELS)

    def test_worker_reconstruction_matches_owner(self, medium):
        """_worker_init rebuilds an oracle identical to a fresh one."""
        with SharedGraph(medium) as shared:
            procmod._worker_init(shared.handle)
            try:
                rebuilt = procmod._worker_oracle()
                fresh = SimilarityOracle(medium, SimilarityConfig())
                for v in range(0, medium.num_vertices, 17):
                    np.testing.assert_array_equal(
                        rebuilt.eps_neighborhood(v, EPS),
                        fresh.eps_neighborhood(v, EPS),
                    )
            finally:
                procmod._WORKER_STATE = None


class TestParity:
    def test_range_queries_match_threads(self, medium, pool):
        got = pool.map_range_queries(medium, range(medium.num_vertices), EPS)
        want = thread_range_queries(medium, range(medium.num_vertices), EPS)
        assert len(got) == len(want)
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)

    def test_edge_similarities_match_threads(self, medium, pool):
        edges = [
            (int(medium.indices[medium.indptr[v]]), v)
            for v in range(medium.num_vertices)
            if medium.indptr[v] < medium.indptr[v + 1]
        ]
        got = pool.map_edge_similarities(medium, edges)
        want = thread_edge_similarities(medium, edges)
        np.testing.assert_allclose(got, want)

    def test_neighbor_updates_match_threads(self, medium, pool):
        vertices = list(range(medium.num_vertices))
        hoods_p, counts_p = pool.map_neighbor_updates(medium, vertices, EPS)
        hoods_t, counts_t = thread_neighbor_updates(medium, vertices, EPS)
        np.testing.assert_array_equal(counts_p, counts_t)
        for a, b in zip(hoods_p, hoods_t):
            np.testing.assert_array_equal(a, b)

    def test_neighbor_updates_out_param_accumulates(self, medium, pool):
        base = np.full(medium.num_vertices, 5, dtype=np.int64)
        _, counts = pool.map_neighbor_updates(
            medium, range(medium.num_vertices), EPS, out=base
        )
        assert counts is base
        _, fresh = pool.map_neighbor_updates(
            medium, range(medium.num_vertices), EPS
        )
        np.testing.assert_array_equal(base, fresh + 5)

    def test_empty_batches(self, medium, pool):
        assert pool.map_range_queries(medium, [], EPS) == []
        assert pool.map_edge_similarities(medium, []).shape == (0,)
        hoods, counts = pool.map_neighbor_updates(medium, [], EPS)
        assert hoods == []
        assert counts.sum() == 0


class TestLifecycle:
    def test_session_reused_for_same_graph(self, medium, pool):
        pool.map_range_queries(medium, [0, 1], EPS)
        executor = pool._executor
        pool.map_range_queries(medium, [2, 3], EPS)
        assert pool._executor is executor

    def test_close_then_reuse_respins(self, medium):
        backend = ProcessBackend(workers=2, chunk_size=8)
        first = backend.map_range_queries(medium, [0, 1, 2], EPS)
        backend.close()
        assert backend._executor is None
        second = backend.map_range_queries(medium, [0, 1, 2], EPS)
        backend.close()
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_context_manager_unlinks_segments(self, medium):
        with ProcessBackend(workers=2) as backend:
            backend.map_range_queries(medium, [0], EPS)
            shared = backend._shared
            assert shared is not None and not shared.closed
        assert shared.closed

    def test_validate_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            ProcessBackend(workers=0).validate()
        with pytest.raises(SimulationError):
            ProcessBackend(chunk_size=0).validate()

    def test_kind_is_process_without_fallback(self, pool):
        assert pool.kind == "process"


class TestFallback:
    def test_env_var_forces_thread_fallback(self, medium, monkeypatch):
        monkeypatch.setenv(FORCE_FALLBACK_ENV, "1")
        assert not shared_memory_available()
        with ProcessBackend(workers=2) as backend:
            got = backend.map_range_queries(
                medium, range(medium.num_vertices), EPS
            )
            assert backend.kind == "thread"
        want = thread_range_queries(medium, range(medium.num_vertices), EPS)
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)

    def test_fallback_covers_all_three_workloads(self, medium, monkeypatch):
        monkeypatch.setenv(FORCE_FALLBACK_ENV, "yes")
        with ProcessBackend(workers=2) as backend:
            hoods, counts = backend.map_neighbor_updates(medium, [0, 1], EPS)
            sigmas = backend.map_edge_similarities(medium, [(0, 1)])
        assert len(hoods) == 2 and counts.shape == (medium.num_vertices,)
        assert sigmas.shape == (1,)

    def test_allow_fallback_false_raises(self, medium, monkeypatch):
        monkeypatch.setenv(FORCE_FALLBACK_ENV, "1")
        backend = ProcessBackend(workers=2, allow_fallback=False)
        with pytest.raises(SimulationError, match="fallback"):
            backend.map_range_queries(medium, [0], EPS)


class TestModuleConveniences:
    def test_owned_backend_range_queries(self, medium):
        got = procmod.parallel_range_queries(medium, [0, 1, 2], EPS)
        want = thread_range_queries(medium, [0, 1, 2], EPS)
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)

    def test_epsilon_validated(self, medium, pool):
        with pytest.raises(ConfigError):
            procmod.parallel_range_queries(medium, [0], -0.5, backend=pool)


class TestShadowArrayIntegration:
    """R1's runtime checker composed with the process backend.

    The process backend's reduction model means the *parent* is the
    only writer of the shared counter array — the shadow log must see
    exactly one writing thread and no races, in both the real process
    path and the forced thread fallback.
    """

    def test_out_param_writes_are_single_threaded(self, medium, pool):
        log = ShadowWriteLog()
        base = np.zeros(medium.num_vertices, dtype=np.int64)
        shadow = ShadowArray(base, log, name="counts")
        _, out = pool.map_neighbor_updates(
            medium, range(medium.num_vertices), EPS, out=shadow
        )
        assert out is shadow
        writers = {r.thread_id for r in log.records}
        assert len(writers) == 1
        log.assert_race_free()
        _, want = thread_neighbor_updates(
            medium, range(medium.num_vertices), EPS
        )
        np.testing.assert_array_equal(base, want)

    def test_out_param_race_free_under_thread_fallback(
        self, medium, monkeypatch
    ):
        monkeypatch.setenv(FORCE_FALLBACK_ENV, "1")
        log = ShadowWriteLog()
        base = np.zeros(medium.num_vertices, dtype=np.int64)
        shadow = ShadowArray(base, log, name="counts")
        with ProcessBackend(workers=2) as backend:
            _, out = backend.map_neighbor_updates(
                medium, range(medium.num_vertices), EPS, out=shadow
            )
            assert backend.kind == "thread"
        assert out is shadow
        log.assert_race_free()
        _, want = thread_neighbor_updates(
            medium, range(medium.num_vertices), EPS
        )
        np.testing.assert_array_equal(base, want)

    def test_accumulation_into_shadow_matches_plain_array(
        self, medium, pool
    ):
        log = ShadowWriteLog()
        base = np.full(medium.num_vertices, 3, dtype=np.int64)
        shadow = ShadowArray(base, log, name="counts")
        pool.map_neighbor_updates(
            medium, range(medium.num_vertices), EPS, out=shadow
        )
        plain = np.full(medium.num_vertices, 3, dtype=np.int64)
        pool.map_neighbor_updates(
            medium, range(medium.num_vertices), EPS, out=plain
        )
        np.testing.assert_array_equal(base, plain)
