"""Tests for the multicore simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.parallel.costs import IterationCosts, ParallelBlock
from repro.parallel.simulator import (
    MachineSpec,
    MulticoreSimulator,
    speedup_curve,
)


def block_with(costs, *, atomics=0, criticals=()):
    block = ParallelBlock(name="test")
    block.task_costs = list(costs)
    block.atomic_ops = atomics
    block.critical_costs = list(criticals)
    return block


def machine(threads, **overrides):
    base = dict(
        threads=threads, schedule_overhead=0.0, atomic_cost=0.0,
        critical_cost=1.0, numa_penalty=0.0,
    )
    base.update(overrides)
    return MachineSpec(**base)


class TestMachineSpec:
    def test_validation(self):
        with pytest.raises(SimulationError):
            MachineSpec(threads=0).validate()
        with pytest.raises(SimulationError):
            MachineSpec(threads=1, schedule="guided").validate()
        with pytest.raises(SimulationError):
            MachineSpec(threads=1, chunk_size=0).validate()

    def test_numa_factor_single_socket(self):
        assert machine(8).numa_factor == 1.0

    def test_numa_factor_two_sockets(self):
        spec = MachineSpec(threads=16, numa_penalty=0.1, cores_per_socket=8)
        assert spec.numa_factor == pytest.approx(1.1)

    def test_numa_factor_partial_spill(self):
        spec = MachineSpec(threads=12, numa_penalty=0.1, cores_per_socket=8)
        assert spec.numa_factor == pytest.approx(1.05)


class TestDynamicScheduling:
    def test_single_thread_sums_costs(self):
        sim = MulticoreSimulator(machine(1))
        timing = sim.simulate_block(block_with([3.0, 1.0, 2.0]))
        assert timing.makespan == pytest.approx(6.0)

    def test_perfect_split_two_threads(self):
        sim = MulticoreSimulator(machine(2))
        timing = sim.simulate_block(block_with([1.0] * 10))
        assert timing.makespan == pytest.approx(5.0)

    def test_skewed_task_dominates(self):
        sim = MulticoreSimulator(machine(4))
        timing = sim.simulate_block(block_with([100.0] + [1.0] * 10))
        assert timing.makespan == pytest.approx(100.0)

    def test_empty_block(self):
        sim = MulticoreSimulator(machine(4))
        assert sim.simulate_block(block_with([])).makespan == 0.0

    def test_utilization_balanced(self):
        sim = MulticoreSimulator(machine(2))
        timing = sim.simulate_block(block_with([1.0] * 100))
        assert timing.utilization == pytest.approx(1.0, abs=0.02)

    def test_dynamic_beats_static_on_skew(self):
        # Front-loaded heavy tasks starve static's first chunk.
        costs = [50.0] * 4 + [1.0] * 96
        dynamic = MulticoreSimulator(machine(4, schedule="dynamic"))
        static = MulticoreSimulator(machine(4, schedule="static"))
        block = block_with(costs)
        assert (
            dynamic.simulate_block(block).makespan
            <= static.simulate_block(block).makespan
        )

    def test_chunked_scheduling(self):
        chunky = MulticoreSimulator(machine(2, chunk_size=5))
        timing = chunky.simulate_block(block_with([1.0] * 10))
        assert timing.makespan == pytest.approx(5.0)


class TestSynchronization:
    def test_atomics_charged(self):
        free = MulticoreSimulator(machine(2))
        priced = MulticoreSimulator(machine(2, atomic_cost=0.5))
        block = block_with([1.0, 1.0], atomics=10)
        assert (
            priced.simulate_block(block).makespan
            > free.simulate_block(block).makespan
        )

    def test_critical_sections_extend_makespan(self):
        sim = MulticoreSimulator(machine(2, critical_cost=10.0))
        quiet = block_with([1.0, 1.0])
        noisy = block_with([1.0, 1.0], criticals=[1.0, 1.0])
        assert (
            sim.simulate_block(noisy).makespan
            > sim.simulate_block(quiet).makespan
        )

    def test_critical_hides_in_slack(self):
        # A skewed block has idle threads; small critical work hides there.
        sim = MulticoreSimulator(machine(4, critical_cost=1.0))
        skew = block_with([100.0] + [1.0] * 3, criticals=[1.0])
        timing = sim.simulate_block(skew)
        assert timing.makespan < 102.0

    def test_schedule_overhead_hurts_small_tasks(self):
        cheap_tasks = [0.1] * 1000
        fast = MulticoreSimulator(machine(4, schedule_overhead=0.0))
        slow = MulticoreSimulator(machine(4, schedule_overhead=0.5))
        block = block_with(cheap_tasks)
        assert (
            slow.simulate_block(block).makespan
            > 2 * fast.simulate_block(block).makespan
        )


class TestIterationsAndRuns:
    def _iteration(self, costs, sequential=0.0):
        record = IterationCosts(step="s", index=0)
        record.blocks.append(block_with(costs))
        record.sequential_cost = sequential
        return record

    def test_sequential_tail_added(self):
        sim = MulticoreSimulator(machine(4))
        it = self._iteration([4.0] * 4, sequential=10.0)
        assert sim.simulate_iteration(it) == pytest.approx(14.0)

    def test_simulate_run_cumulative(self):
        sim = MulticoreSimulator(machine(1))
        its = [self._iteration([1.0]), self._iteration([2.0])]
        times = sim.simulate_run(its)
        assert times.tolist() == [1.0, 3.0]

    def test_speedup_curve(self):
        its = [self._iteration([1.0] * 64)]
        curve = speedup_curve(its, [1, 2, 4], base_machine=machine(1))
        assert curve[1] == pytest.approx(1.0)
        assert curve[2] == pytest.approx(2.0)
        assert curve[4] == pytest.approx(4.0)

    def test_amdahl_limit(self):
        # 50% sequential work caps the speedup at 2.
        its = [self._iteration([1.0] * 8, sequential=8.0)]
        curve = speedup_curve(its, [16], base_machine=machine(1))
        assert curve[16] < 2.0
