"""Property-based anytime invariants: suspension is free, progress is monotone.

The paper's interactivity story rests on three invariants of the anytime
iteration:

* suspending after *any* iteration boundary and resuming later yields
  exactly the clustering of an uninterrupted ``run()``;
* a vertex that reached a core state never demotes (the state machine
  is a DAG toward PROCESSED_CORE);
* the cumulative statistics counters never decrease between snapshots.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import AnySCAN, AnyScanConfig
from repro.anytime import AnytimeRunner
from repro.graph.generators.random_graphs import (
    gnm_random_graph,
    planted_partition_graph,
)

SLOW_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _config(mu, eps, seed, block=16):
    # Small blocks force many anytime iterations on small graphs.
    return AnyScanConfig(
        mu=mu, epsilon=eps, alpha=block, beta=block, seed=seed,
        record_costs=False,
    )


def _drain_stepwise(graph, config):
    algo = AnySCAN(graph, config)
    runner = AnytimeRunner(algo)
    snapshots = []
    while True:
        snap = runner.step()
        if snap is None:
            break
        snapshots.append(snap)
    return algo.result(), snapshots


class TestSuspendResume:
    def test_stepwise_equals_straight_run(self):
        graph = gnm_random_graph(90, 270, seed=2)
        config = _config(3, 0.5, seed=2)
        stepped, _ = _drain_stepwise(graph, config)
        straight = AnySCAN(graph, config).run()
        np.testing.assert_array_equal(stepped.labels, straight.labels)
        np.testing.assert_array_equal(stepped.roles, straight.roles)

    def test_suspend_at_every_boundary(self):
        """Stop after k iterations, then finish — for every k."""
        graph = planted_partition_graph([25, 25, 25], 0.3, 0.03, seed=4)
        config = _config(3, 0.5, seed=4)
        straight = AnySCAN(graph, config).run()
        total = len(_drain_stepwise(graph, config)[1])
        assert total >= 4, "need several iterations to make this meaningful"
        for k in range(total):
            algo = AnySCAN(graph, config)
            runner = AnytimeRunner(algo)
            for _ in range(k):
                runner.step()
            runner.finish()
            resumed = algo.result()
            np.testing.assert_array_equal(straight.labels, resumed.labels)
            np.testing.assert_array_equal(straight.roles, resumed.roles)

    @SLOW_SETTINGS
    @given(
        seed=st.integers(0, 50),
        mu=st.integers(2, 4),
        eps=st.sampled_from([0.3, 0.5, 0.7]),
    )
    def test_randomized_stepwise_equals_run(self, seed, mu, eps):
        graph = gnm_random_graph(60, 180, seed=seed)
        config = _config(mu, eps, seed=seed)
        stepped, _ = _drain_stepwise(graph, config)
        straight = AnySCAN(graph, config).run()
        np.testing.assert_array_equal(stepped.labels, straight.labels)
        np.testing.assert_array_equal(stepped.roles, straight.roles)


class TestMonotoneProgress:
    def test_core_states_never_demote(self):
        graph = gnm_random_graph(80, 320, seed=6)
        algo = AnySCAN(graph, _config(3, 0.4, seed=6))
        runner = AnytimeRunner(algo)
        cores_so_far = set()
        while runner.step() is not None:
            now = {
                v
                for v in range(graph.num_vertices)
                if algo.states.is_core(v)
            }
            assert cores_so_far <= now, (
                f"core set shrank: lost {cores_so_far - now}"
            )
            cores_so_far = now

    @SLOW_SETTINGS
    @given(seed=st.integers(0, 50))
    def test_statistics_counters_nondecreasing(self, seed):
        graph = gnm_random_graph(60, 200, seed=seed)
        _, snapshots = _drain_stepwise(graph, _config(3, 0.5, seed=seed))
        assert snapshots, "run produced no snapshots"
        for prev, cur in zip(snapshots, snapshots[1:]):
            assert cur.iteration == prev.iteration + 1
            assert cur.work_units >= prev.work_units
            assert cur.sigma_evaluations >= prev.sigma_evaluations
            assert cur.union_calls >= prev.union_calls
            assert cur.wall_time >= prev.wall_time
        assert snapshots[-1].final

    def test_assigned_fraction_reaches_everyone_processed(self):
        graph = gnm_random_graph(80, 240, seed=8)
        algo = AnySCAN(graph, _config(3, 0.5, seed=8))
        runner = AnytimeRunner(algo)
        runner.finish()
        assert algo.finished
        stats = algo.statistics()
        assert stats["sigma_evaluations"] >= 0
