"""Tests for the instrumented disjoint-set structure."""

import pytest

from repro.errors import ReproError
from repro.structures.disjoint_set import DisjointSet


class TestBasics:
    def test_initial_singletons(self):
        dsu = DisjointSet(5)
        assert len(dsu) == 5
        assert dsu.num_components() == 5
        for i in range(5):
            assert dsu.find(i) == i

    def test_union_merges(self):
        dsu = DisjointSet(4)
        assert dsu.union(0, 1)
        assert dsu.same(0, 1)
        assert not dsu.same(0, 2)
        assert dsu.num_components() == 3

    def test_union_idempotent(self):
        dsu = DisjointSet(3)
        assert dsu.union(0, 1)
        assert not dsu.union(1, 0)

    def test_transitive(self):
        dsu = DisjointSet(5)
        dsu.union(0, 1)
        dsu.union(1, 2)
        dsu.union(3, 4)
        assert dsu.same(0, 2)
        assert not dsu.same(2, 3)

    def test_components_array(self):
        dsu = DisjointSet(4)
        dsu.union(0, 3)
        comps = dsu.components()
        assert comps[0] == comps[3]
        assert comps[1] != comps[2]

    def test_component_lists(self):
        dsu = DisjointSet(4)
        dsu.union(0, 2)
        lists = dsu.component_lists()
        assert sorted(map(sorted, lists.values())) == [[0, 2], [1], [3]]

    def test_zero_size(self):
        dsu = DisjointSet(0)
        assert dsu.num_components() == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ReproError):
            DisjointSet(-1)

    def test_out_of_range_find(self):
        with pytest.raises(ReproError):
            DisjointSet(3).find(3)


class TestGrow:
    def test_grow_appends_singletons(self):
        dsu = DisjointSet(2)
        first = dsu.grow(3)
        assert first == 2
        assert len(dsu) == 5
        assert dsu.find(4) == 4

    def test_grow_zero(self):
        dsu = DisjointSet(2)
        dsu.grow(0)
        assert len(dsu) == 2

    def test_grow_negative_rejected(self):
        with pytest.raises(ReproError):
            DisjointSet(2).grow(-1)

    def test_grow_after_unions(self):
        dsu = DisjointSet(2)
        dsu.union(0, 1)
        dsu.grow(1)
        assert not dsu.same(0, 2)


class TestCounters:
    def test_union_counters(self):
        dsu = DisjointSet(4)
        dsu.union(0, 1)
        dsu.union(0, 1)  # no-op
        dsu.union(2, 3)
        assert dsu.union_calls == 3
        assert dsu.effective_unions == 2

    def test_find_counter(self):
        dsu = DisjointSet(3)
        dsu.find(0)
        dsu.find(1)
        assert dsu.find_calls == 2

    def test_reset_counters_keeps_structure(self):
        dsu = DisjointSet(3)
        dsu.union(0, 1)
        dsu.reset_counters()
        assert dsu.union_calls == 0
        assert dsu.same(0, 1)


class TestPathCompression:
    def test_long_chain_flattens(self):
        n = 500
        dsu = DisjointSet(n)
        for i in range(n - 1):
            dsu.union(i, i + 1)
        root = dsu.find(0)
        assert all(dsu.find(i) == root for i in range(n))
        # After compression, every parent points at the root directly.
        assert all(int(dsu._parent[i]) == root for i in range(n))
