"""Runtime shadow-write checker: the dynamic half of rule R1."""

import threading

import numpy as np
import pytest

from repro.analysis.runtime import (
    LockOrderViolation,
    LockOrderWatch,
    Race,
    ShadowArray,
    ShadowWriteLog,
)
from repro.parallel.sync import (
    atomic_add,
    atomic_store,
    critical,
    set_lock_order_watch,
)
from repro.parallel.threads import ThreadBackend


def record_from_helper_thread(log, array, index, guarded):
    """Log one write attributed to a thread other than the caller's."""
    thread = threading.Thread(
        target=log.record, args=(array, index, guarded)
    )
    thread.start()
    thread.join()


class TestShadowWriteLog:
    def test_single_thread_never_races(self):
        log = ShadowWriteLog()
        for _ in range(5):
            log.record("a", 0, guarded=False)
        assert log.races() == []
        log.assert_race_free()

    def test_two_threads_unguarded_is_race(self):
        log = ShadowWriteLog()
        log.record("a", 0, guarded=False)
        record_from_helper_thread(log, "a", 0, guarded=False)
        races = log.races()
        assert len(races) == 1
        assert races[0].array == "a"
        assert races[0].index == 0
        assert len(races[0].thread_ids) == 2
        assert races[0].unguarded_writes == 2

    def test_two_threads_all_guarded_is_race_free(self):
        log = ShadowWriteLog()
        log.record("a", 0, guarded=True)
        record_from_helper_thread(log, "a", 0, guarded=True)
        assert log.races() == []

    def test_one_unguarded_write_is_enough(self):
        log = ShadowWriteLog()
        log.record("a", 0, guarded=True)
        record_from_helper_thread(log, "a", 0, guarded=False)
        races = log.races()
        assert len(races) == 1
        assert races[0].unguarded_writes == 1

    def test_distinct_cells_do_not_race(self):
        log = ShadowWriteLog()
        log.record("a", 0, guarded=False)
        record_from_helper_thread(log, "a", 1, guarded=False)
        record_from_helper_thread(log, "b", 0, guarded=False)
        assert log.races() == []

    def test_assert_race_free_raises_with_description(self):
        log = ShadowWriteLog()
        log.record("counts", 7, guarded=False)
        record_from_helper_thread(log, "counts", 7, guarded=False)
        with pytest.raises(AssertionError, match=r"counts\[7\]"):
            log.assert_race_free()

    def test_race_describe(self):
        race = Race(
            array="x", index=3, thread_ids=(1, 2), unguarded_writes=2
        )
        assert "x[3]" in race.describe()
        assert "2 threads" in race.describe()


class TestShadowArray:
    def test_reads_pass_through(self):
        base = np.arange(4.0)
        shadow = ShadowArray(base, ShadowWriteLog(), name="base")
        assert shadow[2] == 2.0
        assert len(shadow) == 4
        assert shadow.shape == (4,)
        assert shadow.dtype == np.float64
        np.testing.assert_array_equal(np.asarray(shadow), base)

    def test_setitem_writes_through_and_records(self):
        base = np.zeros(3)
        log = ShadowWriteLog()
        shadow = ShadowArray(base, log, name="base")
        shadow[1] = 5.0
        assert base[1] == 5.0
        (record,) = log.records
        assert (record.array, record.index, record.guarded) == (
            "base", 1, False
        )

    def test_atomic_helpers_mark_writes_guarded(self):
        log = ShadowWriteLog()
        shadow = ShadowArray(np.zeros(3), log, name="base")
        atomic_add(shadow, 0, 2.0)
        atomic_store(shadow, 1, 7.0)
        with critical():
            shadow[2] = 1.0
        assert [r.guarded for r in log.records] == [True, True, True]
        assert shadow[0] == 2.0 and shadow[1] == 7.0

    def test_numpy_scalar_index_collapses_with_python_int(self):
        log = ShadowWriteLog()
        shadow = ShadowArray(np.zeros(4), log, name="base")
        shadow[np.int64(2)] = 1.0
        shadow[2] = 2.0
        indices = {r.index for r in log.records}
        assert indices == {2}

    def test_slice_and_tuple_indices_are_hashable(self):
        log = ShadowWriteLog()
        shadow = ShadowArray(np.zeros((2, 2)), log, name="base")
        shadow[0, 1] = 1.0
        shadow1d = ShadowArray(np.zeros(4), log, name="flat")
        shadow1d[1:3] = 5.0
        shadow1d[np.array([0, 3])] = 2.0
        assert log.races() == []  # single thread; also proves hashability


class TestThreadBackendIntegration:
    """Drive real ThreadBackend runs; a barrier forces two pool threads."""

    N_ITEMS = 2

    def run_workload(self, worker):
        backend = ThreadBackend(threads=2, chunk_size=1)
        barrier = threading.Barrier(self.N_ITEMS, timeout=10)

        def item(v):
            barrier.wait()
            return worker(v)

        return backend.map(item, list(range(self.N_ITEMS)))

    def test_unguarded_concurrent_writes_are_detected(self):
        log = ShadowWriteLog()
        shadow = ShadowArray(np.zeros(1, dtype=np.int64), log, name="counts")

        def worker(v):
            shadow[0] = shadow[0] + 1  # raw shared write: R1 violation
            return v

        self.run_workload(worker)
        assert len({r.thread_id for r in log.records}) == 2
        races = log.races()
        assert len(races) == 1
        assert races[0].unguarded_writes == 2
        with pytest.raises(AssertionError):
            log.assert_race_free()

    def test_atomic_writes_are_race_free(self):
        log = ShadowWriteLog()
        shadow = ShadowArray(np.zeros(1, dtype=np.int64), log, name="counts")

        def worker(v):
            atomic_add(shadow, 0, 1)
            return v

        self.run_workload(worker)
        # The negative result is meaningful: two threads really wrote.
        assert len({r.thread_id for r in log.records}) == 2
        log.assert_race_free()
        assert shadow[0] == self.N_ITEMS

    def test_critical_section_writes_are_race_free(self):
        log = ShadowWriteLog()
        shadow = ShadowArray(np.zeros(1, dtype=np.int64), log, name="counts")
        lock = threading.Lock()

        def worker(v):
            with critical(lock):
                shadow[0] = shadow[0] + 1
            return v

        self.run_workload(worker)
        assert len({r.thread_id for r in log.records}) == 2
        log.assert_race_free()
        assert shadow[0] == self.N_ITEMS

    def test_guard_state_is_thread_local(self):
        log = ShadowWriteLog()
        shadow = ShadowArray(np.zeros(1, dtype=np.int64), log, name="counts")
        seen = []

        def worker(v):
            atomic_add(shadow, 0, 1)
            seen.append((v, threading.get_ident()))
            shadow[0] = shadow[0]  # unguarded again after helper returns
            return v

        self.run_workload(worker)
        guarded_flags = [r.guarded for r in log.records]
        assert guarded_flags.count(True) == self.N_ITEMS
        assert guarded_flags.count(False) == self.N_ITEMS


class TestLockOrderWatch:
    def test_consistent_order_stays_silent(self):
        watch = LockOrderWatch(strict=True)
        a = watch.wrap(threading.Lock(), "A")
        b = watch.wrap(threading.Lock(), "B")
        for _ in range(3):
            with a:
                with b:
                    pass
        watch.assert_acyclic()
        assert watch.edges() == {("A", "B")}
        assert watch.violations == []

    def test_abba_cycle_is_detected(self):
        watch = LockOrderWatch()
        a = watch.wrap(threading.Lock(), "A")
        b = watch.wrap(threading.Lock(), "B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        # The cycle-closing edge is rolled back after being reported,
        # so the recorded graph stays acyclic.
        assert watch.edges() == {("A", "B")}
        assert watch.violations
        with pytest.raises(LockOrderViolation, match="A"):
            watch.assert_acyclic()

    def test_strict_mode_raises_at_the_closing_acquire(self):
        watch = LockOrderWatch(strict=True)
        a = watch.wrap(threading.Lock(), "A")
        b = watch.wrap(threading.Lock(), "B")
        with a:
            with b:
                pass
        with pytest.raises(LockOrderViolation):
            with b:
                with a:
                    pass
        # The failed acquire must not corrupt the held stack: the same
        # consistent order keeps working afterwards.
        with a:
            with b:
                pass

    def test_three_lock_cycle_across_threads(self):
        # A->B, B->C, C->A: no pair is inverted, yet the triangle
        # deadlocks.  Each leg runs in its own thread so per-thread
        # held stacks are exercised too.
        watch = LockOrderWatch()
        names = ["A", "B", "C"]
        locks = {n: watch.wrap(threading.Lock(), n) for n in names}

        def leg(first, second):
            with locks[first]:
                with locks[second]:
                    pass

        for first, second in [("A", "B"), ("B", "C"), ("C", "A")]:
            t = threading.Thread(target=leg, args=(first, second))
            t.start()
            t.join()
        with pytest.raises(LockOrderViolation):
            watch.assert_acyclic()

    def test_reentrant_acquire_is_not_an_edge(self):
        watch = LockOrderWatch(strict=True)
        r = watch.wrap(threading.RLock(), "R")
        with r:
            with r:
                pass
        assert watch.edges() == set()
        watch.assert_acyclic()

    def test_condition_on_watched_lock_works(self):
        watch = LockOrderWatch(strict=True)
        wrapped = watch.wrap(threading.RLock(), "cond-lock")
        cond = threading.Condition(wrapped)
        done = []

        def waiter():
            with cond:
                while not done:
                    cond.wait(timeout=2.0)

        t = threading.Thread(target=waiter)
        t.start()
        with cond:
            done.append(True)
            cond.notify_all()
        t.join(timeout=5.0)
        assert not t.is_alive()
        watch.assert_acyclic()

    def test_failed_nonblocking_acquire_leaves_stack_clean(self):
        watch = LockOrderWatch()
        inner = threading.Lock()
        a = watch.wrap(inner, "A")
        b = watch.wrap(threading.Lock(), "B")
        inner.acquire()  # someone else holds A
        try:
            assert a.acquire(blocking=False) is False
        finally:
            inner.release()
        with b:
            pass
        # A was never held, so no A->B or B->A ordering was recorded.
        assert watch.edges() == set()


class TestSyncHelperIntegration:
    @pytest.fixture()
    def watch(self):
        watch = LockOrderWatch()
        previous = set_lock_order_watch(watch)
        yield watch
        set_lock_order_watch(previous)

    def test_atomics_report_the_global_lock(self, watch):
        arr = np.zeros(2)
        atomic_add(arr, 0, 1.0)
        with critical():
            pass
        assert watch.edges() == set()  # nothing held around them

    def test_cycle_between_test_lock_and_global_lock(self, watch):
        arr = np.zeros(2)
        outer = watch.wrap(threading.Lock(), "test-lock")
        with outer:
            atomic_add(arr, 0, 1.0)  # test-lock -> <global-critical>
        with critical():
            with outer:  # <global-critical> -> test-lock: cycle
                pass
        with pytest.raises(LockOrderViolation, match="test-lock"):
            watch.assert_acyclic()

    def test_caller_supplied_critical_lock_is_named(self, watch):
        lock = threading.Lock()
        with critical(lock):
            pass
        # No ordering edge (nothing else held), but the acquisition
        # must not crash and must not report the global lock's name.
        assert watch.edges() == set()
