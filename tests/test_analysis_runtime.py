"""Runtime shadow-write checker: the dynamic half of rule R1."""

import threading

import numpy as np
import pytest

from repro.analysis.runtime import Race, ShadowArray, ShadowWriteLog
from repro.parallel.sync import atomic_add, atomic_store, critical
from repro.parallel.threads import ThreadBackend


def record_from_helper_thread(log, array, index, guarded):
    """Log one write attributed to a thread other than the caller's."""
    thread = threading.Thread(
        target=log.record, args=(array, index, guarded)
    )
    thread.start()
    thread.join()


class TestShadowWriteLog:
    def test_single_thread_never_races(self):
        log = ShadowWriteLog()
        for _ in range(5):
            log.record("a", 0, guarded=False)
        assert log.races() == []
        log.assert_race_free()

    def test_two_threads_unguarded_is_race(self):
        log = ShadowWriteLog()
        log.record("a", 0, guarded=False)
        record_from_helper_thread(log, "a", 0, guarded=False)
        races = log.races()
        assert len(races) == 1
        assert races[0].array == "a"
        assert races[0].index == 0
        assert len(races[0].thread_ids) == 2
        assert races[0].unguarded_writes == 2

    def test_two_threads_all_guarded_is_race_free(self):
        log = ShadowWriteLog()
        log.record("a", 0, guarded=True)
        record_from_helper_thread(log, "a", 0, guarded=True)
        assert log.races() == []

    def test_one_unguarded_write_is_enough(self):
        log = ShadowWriteLog()
        log.record("a", 0, guarded=True)
        record_from_helper_thread(log, "a", 0, guarded=False)
        races = log.races()
        assert len(races) == 1
        assert races[0].unguarded_writes == 1

    def test_distinct_cells_do_not_race(self):
        log = ShadowWriteLog()
        log.record("a", 0, guarded=False)
        record_from_helper_thread(log, "a", 1, guarded=False)
        record_from_helper_thread(log, "b", 0, guarded=False)
        assert log.races() == []

    def test_assert_race_free_raises_with_description(self):
        log = ShadowWriteLog()
        log.record("counts", 7, guarded=False)
        record_from_helper_thread(log, "counts", 7, guarded=False)
        with pytest.raises(AssertionError, match=r"counts\[7\]"):
            log.assert_race_free()

    def test_race_describe(self):
        race = Race(
            array="x", index=3, thread_ids=(1, 2), unguarded_writes=2
        )
        assert "x[3]" in race.describe()
        assert "2 threads" in race.describe()


class TestShadowArray:
    def test_reads_pass_through(self):
        base = np.arange(4.0)
        shadow = ShadowArray(base, ShadowWriteLog(), name="base")
        assert shadow[2] == 2.0
        assert len(shadow) == 4
        assert shadow.shape == (4,)
        assert shadow.dtype == np.float64
        np.testing.assert_array_equal(np.asarray(shadow), base)

    def test_setitem_writes_through_and_records(self):
        base = np.zeros(3)
        log = ShadowWriteLog()
        shadow = ShadowArray(base, log, name="base")
        shadow[1] = 5.0
        assert base[1] == 5.0
        (record,) = log.records
        assert (record.array, record.index, record.guarded) == (
            "base", 1, False
        )

    def test_atomic_helpers_mark_writes_guarded(self):
        log = ShadowWriteLog()
        shadow = ShadowArray(np.zeros(3), log, name="base")
        atomic_add(shadow, 0, 2.0)
        atomic_store(shadow, 1, 7.0)
        with critical():
            shadow[2] = 1.0
        assert [r.guarded for r in log.records] == [True, True, True]
        assert shadow[0] == 2.0 and shadow[1] == 7.0

    def test_numpy_scalar_index_collapses_with_python_int(self):
        log = ShadowWriteLog()
        shadow = ShadowArray(np.zeros(4), log, name="base")
        shadow[np.int64(2)] = 1.0
        shadow[2] = 2.0
        indices = {r.index for r in log.records}
        assert indices == {2}

    def test_slice_and_tuple_indices_are_hashable(self):
        log = ShadowWriteLog()
        shadow = ShadowArray(np.zeros((2, 2)), log, name="base")
        shadow[0, 1] = 1.0
        shadow1d = ShadowArray(np.zeros(4), log, name="flat")
        shadow1d[1:3] = 5.0
        shadow1d[np.array([0, 3])] = 2.0
        assert log.races() == []  # single thread; also proves hashability


class TestThreadBackendIntegration:
    """Drive real ThreadBackend runs; a barrier forces two pool threads."""

    N_ITEMS = 2

    def run_workload(self, worker):
        backend = ThreadBackend(threads=2, chunk_size=1)
        barrier = threading.Barrier(self.N_ITEMS, timeout=10)

        def item(v):
            barrier.wait()
            return worker(v)

        return backend.map(item, list(range(self.N_ITEMS)))

    def test_unguarded_concurrent_writes_are_detected(self):
        log = ShadowWriteLog()
        shadow = ShadowArray(np.zeros(1, dtype=np.int64), log, name="counts")

        def worker(v):
            shadow[0] = shadow[0] + 1  # raw shared write: R1 violation
            return v

        self.run_workload(worker)
        assert len({r.thread_id for r in log.records}) == 2
        races = log.races()
        assert len(races) == 1
        assert races[0].unguarded_writes == 2
        with pytest.raises(AssertionError):
            log.assert_race_free()

    def test_atomic_writes_are_race_free(self):
        log = ShadowWriteLog()
        shadow = ShadowArray(np.zeros(1, dtype=np.int64), log, name="counts")

        def worker(v):
            atomic_add(shadow, 0, 1)
            return v

        self.run_workload(worker)
        # The negative result is meaningful: two threads really wrote.
        assert len({r.thread_id for r in log.records}) == 2
        log.assert_race_free()
        assert shadow[0] == self.N_ITEMS

    def test_critical_section_writes_are_race_free(self):
        log = ShadowWriteLog()
        shadow = ShadowArray(np.zeros(1, dtype=np.int64), log, name="counts")
        lock = threading.Lock()

        def worker(v):
            with critical(lock):
                shadow[0] = shadow[0] + 1
            return v

        self.run_workload(worker)
        assert len({r.thread_id for r in log.records}) == 2
        log.assert_race_free()
        assert shadow[0] == self.N_ITEMS

    def test_guard_state_is_thread_local(self):
        log = ShadowWriteLog()
        shadow = ShadowArray(np.zeros(1, dtype=np.int64), log, name="counts")
        seen = []

        def worker(v):
            atomic_add(shadow, 0, 1)
            seen.append((v, threading.get_ident()))
            shadow[0] = shadow[0]  # unguarded again after helper returns
            return v

        self.run_workload(worker)
        guarded_flags = [r.guarded for r in log.records]
        assert guarded_flags.count(True) == self.N_ITEMS
        assert guarded_flags.count(False) == self.N_ITEMS
