"""Differential battery: local_cluster ≡ the seed's cluster in scan.

Seeded local clustering claims *exact* replay — for any graph, any
(ε, μ), any visit-order seed, and any query vertex,
:func:`repro.local.local_cluster` returns exactly the cluster the
sequential reference :func:`repro.baselines.scan.scan` assigns the
seed (byte-identical member set, matching roles, boundary vertices
classified as the global clustering would), under every σ-resolution
tier.  This battery drives that claim over:

* every vertex of seeded random graphs × an (ε, μ) grid, per tier
  (cluster index / edge index / batched oracle), weighted and
  unweighted, with indexes built on every execution backend;
* ε pinned to *exact* σ ties (the ≥-vs-> off-by-one surface);
* hypothesis-generated arbitrary graphs and parameters;
* a chaos case: a faulted σ tier degrades to the next tier with a
  witnessed DegradationEvent and an answer that is still exact.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import scan
from repro.errors import ConfigError, GraphError
from repro.faults import FaultPlan, FaultRule, armed
from repro.graph.builder import GraphBuilder
from repro.graph.generators.random_graphs import (
    gnm_random_graph,
    planted_partition_graph,
)
from repro.graph.generators.weights import assign_random_weights
from repro.graph.traversal import frontier_expand
from repro.local import build_tiers, local_cluster
from repro.parallel.processes import (
    add_degradation_listener,
    remove_degradation_listener,
)
from repro.result import VertexRole
from repro.similarity.gsindex import ClusteringIndex
from repro.similarity.index import EdgeSimilarityIndex
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle

pytestmark = pytest.mark.timeout(300)

TIERS = ("cluster-index", "edge-index", "oracle")


def _tier_kwargs(tier, graph):
    """local_cluster inputs that force one specific σ tier."""
    if tier == "cluster-index":
        return {"cluster_index": ClusteringIndex.build(graph)}
    if tier == "edge-index":
        return {"edge_index": EdgeSimilarityIndex.build(graph)}
    return {}


def _assert_seed_exact(graph, reference, seed, epsilon, mu, order_seed, kw):
    """One seed's local answer vs the reference global clustering."""
    result = local_cluster(
        graph, seed, epsilon, mu, order_seed=order_seed, **kw
    )
    label = int(reference.labels[seed])
    role = VertexRole(int(reference.roles[seed]))
    assert result.seed_role == role, (seed, result.seed_role, role)
    if label >= 0:
        want = np.flatnonzero(reference.labels == label)
        np.testing.assert_array_equal(result.members, want)
        want_cores = want[
            reference.roles[want] == int(VertexRole.CORE)
        ]
        np.testing.assert_array_equal(result.core_members, want_cores)
        member_set = set(want.tolist())
        fringe = set()
        for m in member_set:
            fringe.update(
                int(r) for r in graph.neighbors(m)
                if int(r) not in member_set
            )
        assert set(result.boundary) == fringe
        for b, got_role in result.boundary.items():
            assert got_role == VertexRole(int(reference.roles[b])), b
    else:
        assert result.members.shape[0] == 0
        assert result.boundary == {}
        assert result.cluster_rank is None
    return result


# ----------------------------------------------------------------------
# the (tier × weighted) grid, every vertex a seed
# ----------------------------------------------------------------------
@pytest.mark.parametrize("tier", TIERS)
@pytest.mark.parametrize("weighted", [False, True])
def test_every_seed_matches_reference(tier, weighted):
    for gseed, (epsilon, mu) in (
        (0, (0.4, 2)),
        (1, (0.5, 3)),
        (2, (0.65, 4)),
    ):
        graph = gnm_random_graph(50, 150, seed=gseed)
        if weighted:
            graph = assign_random_weights(graph, seed=gseed + 11)
        kw = _tier_kwargs(tier, graph)
        for order_seed in (0, 3):
            reference = scan(graph, mu, epsilon, seed=order_seed)
            for seed in range(graph.num_vertices):
                _assert_seed_exact(
                    graph, reference, seed, epsilon, mu, order_seed, kw
                )


def test_community_graph_hub_border_outlier_seeds():
    """Planted communities: assert each role class is actually covered."""
    graph = planted_partition_graph(
        [18, 18, 18], p_in=0.5, p_out=0.08, seed=0
    )
    epsilon, mu = 0.55, 4  # yields all four roles and 3 clusters
    reference = scan(graph, mu, epsilon, seed=0)
    roles_seen = set()
    kw = _tier_kwargs("cluster-index", graph)
    for seed in range(graph.num_vertices):
        result = _assert_seed_exact(
            graph, reference, seed, epsilon, mu, 0, kw
        )
        roles_seen.add(result.seed_role)
    assert roles_seen == {
        VertexRole.CORE,
        VertexRole.BORDER,
        VertexRole.HUB,
        VertexRole.OUTLIER,
    }


@pytest.mark.parametrize("tier", TIERS)
def test_exact_sigma_tie_epsilons(tier):
    """ε pinned to the graph's own σ values: ≥ must behave as the
    reference does at exact ties, in every tier."""
    graph = gnm_random_graph(40, 130, seed=6)
    edge = EdgeSimilarityIndex.build(graph)
    distinct = np.unique(edge.sigmas)
    distinct = distinct[distinct > 0]
    kw = _tier_kwargs(tier, graph)
    for epsilon in distinct[:: max(1, len(distinct) // 8)]:
        for mu in (2, 4):
            reference = scan(graph, mu, float(epsilon), seed=0)
            for seed in range(0, graph.num_vertices, 3):
                _assert_seed_exact(
                    graph, reference, seed, float(epsilon), mu, 0, kw
                )


@pytest.mark.parametrize("backend", [None, "thread", "process"])
def test_index_backend_invariance(backend):
    """Indexes built on any execution backend answer identically."""
    graph = gnm_random_graph(60, 200, seed=9)
    index = ClusteringIndex.build(graph, backend=backend)
    reference = scan(graph, 3, 0.5, seed=0)
    for seed in range(0, graph.num_vertices, 5):
        _assert_seed_exact(
            graph, reference, seed, 0.5, 3, 0, {"cluster_index": index}
        )


# ----------------------------------------------------------------------
# tier agreement + instrumentation contracts
# ----------------------------------------------------------------------
def test_tiers_agree_and_index_tier_is_sigma_free():
    graph = gnm_random_graph(70, 220, seed=12)
    ci = ClusteringIndex.build(graph)
    for seed in (0, 7, 33):
        results = {
            tier: local_cluster(
                graph, seed, 0.5, 3, **(
                    {"cluster_index": ci} if tier == "cluster-index"
                    else {"edge_index": ci.edge} if tier == "edge-index"
                    else {}
                ),
            )
            for tier in TIERS
        }
        baseline = results["oracle"]
        for tier, result in results.items():
            assert result.stats.tier == tier
            np.testing.assert_array_equal(result.members, baseline.members)
            assert result.seed_role == baseline.seed_role
            assert result.boundary == baseline.boundary
        assert results["cluster-index"].stats.sigma_evaluations == 0
        assert results["edge-index"].stats.sigma_evaluations == 0
        assert baseline.stats.sigma_evaluations > 0
        # The index tier reads qualifying prefixes, not whole rows.
        assert (
            results["cluster-index"].stats.touched_edges
            <= results["edge-index"].stats.touched_edges
        )


def test_touched_edges_scale_with_cluster_not_graph():
    """Two far-apart communities: querying one must not touch the σ
    rows of the other (the local-work contract)."""
    builder = GraphBuilder(106)
    for base in (0, 100):  # two disjoint 6-cliques far apart in id space
        for i in range(6):
            for j in range(i + 1, 6):
                builder.add_edge(base + i, base + j)
    graph = builder.build()
    result = local_cluster(graph, 0, 0.5, 3)
    np.testing.assert_array_equal(result.members, np.arange(6))
    assert all(v < 6 for v in result.touched)
    assert result.stats.touched_edges <= 2 * graph.num_edges


def test_touched_read_set_covers_members_and_boundary():
    graph = gnm_random_graph(50, 160, seed=3)
    result = local_cluster(graph, 1, 0.45, 2)
    for v in result.members.tolist():
        assert v in result.touched
    for b in result.boundary:
        assert b in result.touched


def test_validation_errors():
    graph = gnm_random_graph(10, 20, seed=0)
    with pytest.raises(ConfigError):
        local_cluster(graph, 0, 0.0, 2)
    with pytest.raises(ConfigError):
        local_cluster(graph, 0, 0.5, 0)
    with pytest.raises(GraphError):
        local_cluster(graph, 10, 0.5, 2)
    with pytest.raises(GraphError):
        local_cluster(graph, -1, 0.5, 2)


def test_stale_index_is_rejected():
    graph = gnm_random_graph(30, 90, seed=1)
    other = gnm_random_graph(30, 91, seed=2)
    index = ClusteringIndex.build(other)
    with pytest.raises(ConfigError):
        local_cluster(graph, 0, 0.5, 2, cluster_index=index)


def test_oracle_semantic_mismatch_is_rejected():
    graph = gnm_random_graph(30, 90, seed=1)
    edge = EdgeSimilarityIndex.build(graph)  # cosine semantics
    oracle = SimilarityOracle(
        graph, SimilarityConfig(kind="jaccard", pruning=False)
    )
    with pytest.raises(ConfigError):
        local_cluster(graph, 0, 0.5, 2, edge_index=edge, oracle=oracle)


def test_build_tiers_chain_shape():
    graph = gnm_random_graph(20, 50, seed=0)
    ci = ClusteringIndex.build(graph)
    chain = build_tiers(graph, cluster_index=ci)
    assert [t.name for t in chain] == ["cluster-index", "edge-index", "oracle"]
    chain = build_tiers(graph, edge_index=ci.edge)
    assert [t.name for t in chain] == ["edge-index", "oracle"]
    chain = build_tiers(graph)
    assert [t.name for t in chain] == ["oracle"]


def test_frontier_expand_matches_bfs_order():
    from repro.graph.traversal import bfs_order

    graph = gnm_random_graph(40, 100, seed=5)
    order = frontier_expand(
        [0], lambda u: (int(v) for v in graph.neighbors(u))
    )
    np.testing.assert_array_equal(
        np.asarray(order), bfs_order(graph, 0)
    )


# ----------------------------------------------------------------------
# hypothesis: arbitrary graphs, parameters, and seeds
# ----------------------------------------------------------------------
def _build(edges):
    builder = GraphBuilder(12)
    seen = set()
    for u, v in edges:
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        builder.add_edge(u, v)
    return builder.build()


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    edges=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=11),
            st.integers(min_value=0, max_value=11),
        ),
        min_size=1,
        max_size=40,
    ),
    mu=st.integers(min_value=1, max_value=5),
    epsilon=st.floats(
        min_value=0.05, max_value=1.0, allow_nan=False, exclude_min=False
    ),
    order_seed=st.integers(min_value=0, max_value=3),
)
def test_hypothesis_local_equals_scan(edges, mu, epsilon, order_seed):
    graph = _build(edges)
    reference = scan(graph, mu, epsilon, seed=order_seed)
    ci = ClusteringIndex.build(graph, mu_cap=4)
    for kw in ({"cluster_index": ci}, {"edge_index": ci.edge}, {}):
        for seed in range(graph.num_vertices):
            _assert_seed_exact(
                graph, reference, seed, epsilon, mu, order_seed, kw
            )


# ----------------------------------------------------------------------
# chaos: a faulted tier degrades to the next, exactly and witnessed
# ----------------------------------------------------------------------
@pytest.mark.chaos
def test_faulted_index_tier_degrades_with_witnessed_event():
    graph = gnm_random_graph(50, 160, seed=8)
    ci = ClusteringIndex.build(graph)
    reference = scan(graph, 3, 0.5, seed=0)
    events = []
    listener = add_degradation_listener(events.append)
    try:
        plan = FaultPlan(
            [FaultRule(site="local.index_query", exception="RuntimeError")]
        )
        with armed(plan):
            result = _assert_seed_exact(
                graph, reference, 2, 0.5, 3, 0, {"cluster_index": ci}
            )
    finally:
        remove_degradation_listener(listener)
    assert result.stats.tier == "edge-index"
    assert result.stats.degraded_from == ("cluster-index",)
    assert [e.backend for e in events] == ["local-cluster-index"]
    assert events[0].failures == 1


@pytest.mark.chaos
def test_double_fault_degrades_to_oracle():
    graph = gnm_random_graph(50, 160, seed=8)
    ci = ClusteringIndex.build(graph)
    reference = scan(graph, 3, 0.5, seed=0)
    events = []
    listener = add_degradation_listener(events.append)
    try:
        plan = FaultPlan(
            [
                FaultRule(
                    site="local.index_query", exception="RuntimeError"
                ),
                FaultRule(
                    site="local.edge_query", exception="RuntimeError"
                ),
            ]
        )
        with armed(plan):
            result = _assert_seed_exact(
                graph, reference, 2, 0.5, 3, 0, {"cluster_index": ci}
            )
    finally:
        remove_degradation_listener(listener)
    assert result.stats.tier == "oracle"
    assert result.stats.degraded_from == ("cluster-index", "edge-index")
    assert [e.backend for e in events] == [
        "local-cluster-index",
        "local-edge-index",
    ]


@pytest.mark.chaos
def test_fault_on_last_tier_raises():
    graph = gnm_random_graph(30, 90, seed=1)
    plan = FaultPlan(
        [FaultRule(site="sigma.query", exception="RuntimeError")]
    )
    with armed(plan):
        with pytest.raises(Exception):
            local_cluster(graph, 0, 0.5, 2)
