"""Tests for the parallel anySCAN replay (Figures 10-14 machinery)."""

import numpy as np
import pytest

from repro.core import AnyScanConfig
from repro.core.parallel import ParallelAnySCAN, ideal_speedups
from repro.errors import SimulationError
from repro.parallel.simulator import MachineSpec


def make(graph, **overrides):
    base = dict(mu=4, epsilon=0.5, alpha=64, beta=64)
    base.update(overrides)
    return ParallelAnySCAN(graph, AnyScanConfig(**base))


class TestRunAndReport:
    def test_queries_require_run(self, lfr_small):
        par = make(lfr_small)
        with pytest.raises(SimulationError):
            par.report(4)

    def test_run_is_idempotent(self, lfr_small):
        par = make(lfr_small)
        a = par.run()
        b = par.run()
        assert a is b

    def test_result_matches_sequential(self, lfr_small):
        from repro.core import AnySCAN

        par = make(lfr_small)
        result = par.run()
        seq = AnySCAN(
            lfr_small, AnyScanConfig(mu=4, epsilon=0.5, alpha=64, beta=64)
        ).run()
        assert np.array_equal(result.labels, seq.labels)

    def test_report_shape(self, lfr_small):
        par = make(lfr_small)
        par.run()
        report = par.report(4)
        assert report.threads == 4
        assert report.cumulative_times.shape[0] == len(par.cost_log)
        assert report.total_time == pytest.approx(
            report.cumulative_times[-1]
        )
        assert report.steps[0] == "summarize"

    def test_cumulative_times_increase(self, lfr_small):
        par = make(lfr_small)
        par.run()
        times = par.report(2).cumulative_times
        assert np.all(np.diff(times) >= 0)

    def test_record_costs_forced_on(self, lfr_small):
        par = ParallelAnySCAN(
            lfr_small,
            AnyScanConfig(mu=4, epsilon=0.5, record_costs=False),
        )
        par.run()
        assert par.cost_log


class TestSpeedups:
    def test_monotone_and_bounded(self, lfr_medium):
        par = make(lfr_medium, alpha=100, beta=100)
        par.run()
        s = par.speedups([1, 2, 4, 8])
        assert s[1] == pytest.approx(1.0)
        assert s[1] <= s[2] <= s[4] <= s[8]
        for t, speedup in s.items():
            assert speedup <= t + 1e-9

    def test_numa_knee_beyond_socket(self, lfr_medium):
        par = make(lfr_medium, alpha=100, beta=100)
        par.run()
        s = par.speedups([8, 16])
        # Efficiency (speedup / threads) drops past the socket boundary.
        assert s[16] / 16 < s[8] / 8

    def test_per_iteration_speedups(self, lfr_small):
        par = make(lfr_small)
        par.run()
        per_iter = par.speedups_per_iteration([2, 4])
        assert set(per_iter) == {2, 4}
        assert per_iter[2].shape[0] == len(par.cost_log)
        assert np.nanmax(per_iter[4]) <= 4 + 1e-9

    def test_sequential_fraction_small(self, lfr_medium):
        par = make(lfr_medium, alpha=100, beta=100)
        par.run()
        # The paper's claim: sequential parts are negligible.
        assert par.sequential_fraction() < 0.05

    def test_anyscan_below_ideal(self, lfr_medium):
        par = make(lfr_medium, alpha=100, beta=100)
        par.run()
        any_s = par.speedups([8])[8]
        ideal_s = ideal_speedups(lfr_medium, [8])[8]
        assert any_s <= ideal_s + 0.5  # close, but not above by much

    def test_machine_template_respected(self, lfr_small):
        par = ParallelAnySCAN(
            lfr_small,
            AnyScanConfig(mu=4, epsilon=0.5, alpha=64, beta=64),
            machine=MachineSpec(threads=1, numa_penalty=0.5),
        )
        par.run()
        harsh = par.speedups([16])[16]
        par2 = make(lfr_small)
        par2.run()
        mild = par2.speedups([16])[16]
        assert harsh < mild


class TestCostLogStructure:
    def test_block_names_follow_figure4(self, lfr_small):
        par = make(lfr_small)
        par.run()
        names = {b.name for rec in par.cost_log for b in rec.blocks}
        assert "step1/range-queries" in names
        assert "step1/mark-neighbors" in names

    def test_atomics_only_in_step1_marking(self, lfr_small):
        par = make(lfr_small)
        par.run()
        for rec in par.cost_log:
            for block in rec.blocks:
                if block.atomic_ops:
                    assert block.name == "step1/mark-neighbors"

    def test_criticals_only_in_merge_blocks(self, lfr_small):
        par = make(lfr_small)
        par.run()
        for rec in par.cost_log:
            for block in rec.blocks:
                if block.critical_costs:
                    assert block.name in ("step2/merge", "step3/merge")

    def test_total_work_positive(self, lfr_small):
        par = make(lfr_small)
        par.run()
        assert sum(rec.total_work for rec in par.cost_log) > 0
