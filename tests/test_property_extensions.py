"""Property-based tests for the extension modules.

The explorer, dynamic maintenance, hierarchy, and traversal utilities
each promise equivalence to an independent reference; hypothesis drives
those promises over arbitrary small graphs and update sequences.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import scan
from repro.core.explorer import ParameterExplorer
from repro.core.hierarchy import EpsilonHierarchy
from repro.dynamic import AdjacencyGraph, DynamicSCAN
from repro.graph.builder import GraphBuilder
from repro.graph.traversal import bfs_distances, connected_components
from repro.metrics.comparison import explain_difference
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle

edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(
        lambda e: e[0] != e[1]
    ),
    min_size=0,
    max_size=45,
)


def build_graph(edges):
    builder = GraphBuilder(15)
    for u, v in edges:
        builder.add_edge(u, v)
    return builder.build(dedup="ignore")


# ----------------------------------------------------------------------
# explorer ≡ SCAN on arbitrary graphs and parameters
# ----------------------------------------------------------------------
@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    edges=edge_lists,
    mu=st.integers(2, 4),
    epsilon=st.sampled_from([0.3, 0.5, 0.8]),
)
def test_explorer_equals_scan(edges, mu, epsilon):
    graph = build_graph(edges)
    oracle = SimilarityOracle(graph, SimilarityConfig())
    reference = scan(graph, mu, epsilon, seed=1)
    result = ParameterExplorer(graph).clustering_at(mu, epsilon)
    problems = explain_difference(
        graph, oracle, reference, result, mu, epsilon
    )
    assert not problems, problems


# ----------------------------------------------------------------------
# dynamic maintenance ≡ batch SCAN after any update sequence
# ----------------------------------------------------------------------
@settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    initial=edge_lists,
    updates=st.lists(
        st.tuples(
            st.booleans(),  # True: try insert, False: try delete
            st.integers(0, 14),
            st.integers(0, 14),
        ).filter(lambda u: u[1] != u[2]),
        max_size=25,
    ),
)
def test_dynamic_scan_matches_batch_after_any_updates(initial, updates):
    graph = AdjacencyGraph(15)
    for u, v in initial:
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    dyn = DynamicSCAN(graph, 3, 0.5)
    for insert, u, v in updates:
        if insert and not graph.has_edge(u, v):
            dyn.add_edge(u, v)
        elif not insert and graph.has_edge(u, v):
            dyn.remove_edge(u, v)
    assert dyn.verify_cache()
    snapshot = graph.to_csr()
    oracle = SimilarityOracle(snapshot, SimilarityConfig())
    reference = scan(snapshot, 3, 0.5, seed=1)
    result = dyn.clustering()
    problems = explain_difference(
        snapshot, oracle, reference, result, 3, 0.5
    )
    assert not problems, problems


# ----------------------------------------------------------------------
# hierarchy cuts ≡ explorer core partitions at every event level
# ----------------------------------------------------------------------
@settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(edges=edge_lists, mu=st.integers(2, 3))
def test_hierarchy_cuts_match_explorer(edges, mu):
    graph = build_graph(edges)
    hierarchy = EpsilonHierarchy(graph, mu=mu)
    explorer = hierarchy.explorer
    levels = hierarchy.levels()
    probe_levels = list(levels[:3]) + [0.5]
    for eps in probe_levels:
        eps = float(min(max(eps, 1e-6), 1.0))
        from_tree = set(hierarchy.core_partition_at(eps))
        clustering = explorer.clustering_at(mu, eps)
        cores = explorer.cores_at(mu, eps)
        parts = {}
        for v in np.flatnonzero(cores):
            parts.setdefault(
                int(clustering.labels[int(v)]), set()
            ).add(int(v))
        from_table = {frozenset(s) for s in parts.values()}
        assert from_tree == from_table


# ----------------------------------------------------------------------
# traversal invariants
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(edges=edge_lists, source=st.integers(0, 14))
def test_bfs_distance_is_metric(edges, source):
    graph = build_graph(edges)
    dist = bfs_distances(graph, source)
    assert dist[source] == 0
    # Triangle inequality over edges: reachable neighbors differ by <= 1.
    for u, v, _ in graph.edges():
        if dist[u] >= 0 and dist[v] >= 0:
            assert abs(int(dist[u]) - int(dist[v])) <= 1
        else:
            # Adjacent vertices share a component: both unreachable.
            assert dist[u] == -1 and dist[v] == -1


@settings(max_examples=40, deadline=None)
@given(edges=edge_lists)
def test_components_consistent_with_bfs(edges):
    graph = build_graph(edges)
    comp = connected_components(graph)
    for source in range(0, graph.num_vertices, 4):
        dist = bfs_distances(graph, source)
        reachable = set(int(v) for v in np.flatnonzero(dist >= 0))
        same_comp = set(
            int(v) for v in np.flatnonzero(comp == comp[source])
        )
        assert reachable == same_comp
