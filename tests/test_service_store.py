"""Data-plane contracts: cache-key semantics, LRU behaviour, the graph
registry, and update-edges routed through DynamicSCAN.

The load-bearing claims:

* the cache key is the *full* identity of a query (graph fingerprint,
  σ-semantic similarity fields, μ, ε) and nothing else — ``pruning``
  is a scheduling knob and must not fragment the cache;
* ``update_edges`` returns the pre-update fingerprint so exactly the
  affected entries can be invalidated;
* a mid-batch failure leaves the CSR snapshot consistent with the
  partially-applied mirror (never the stale pre-batch graph).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.scan import scan
from repro.errors import ConfigError
from repro.graph.builder import GraphBuilder
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.service.store import (
    CachedResult,
    GraphStore,
    ResultCache,
    make_cache_key,
    similarity_signature,
)
from repro.similarity.index import graph_fingerprint
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.similarity.index import IndexedOracle


def _result(n=5):
    return CachedResult(
        labels=np.zeros(n, dtype=np.int64),
        num_clusters=1,
        sigma_evaluations=10,
        compute_seconds=0.01,
    )


class TestCacheKey:
    def test_pruning_does_not_change_the_key(self):
        lazy = SimilarityConfig(pruning=False)
        eager = SimilarityConfig(pruning=True)
        assert similarity_signature(lazy) == similarity_signature(eager)
        assert make_cache_key("fp", lazy, 3, 0.5) == make_cache_key(
            "fp", eager, 3, 0.5
        )

    def test_semantic_fields_change_the_key(self):
        base = SimilarityConfig()
        jaccard = SimilarityConfig(kind="jaccard", pruning=False)
        assert make_cache_key("fp", base, 3, 0.5) != make_cache_key(
            "fp", jaccard, 3, 0.5
        )

    def test_mu_epsilon_fingerprint_change_the_key(self):
        config = SimilarityConfig()
        base = make_cache_key("fp", config, 3, 0.5)
        assert base != make_cache_key("fp", config, 4, 0.5)
        assert base != make_cache_key("fp", config, 3, 0.6)
        assert base != make_cache_key("other", config, 3, 0.5)

    def test_key_validates_eps_mu(self):
        with pytest.raises(ConfigError):
            make_cache_key("fp", SimilarityConfig(), 0, 0.5)
        with pytest.raises(ConfigError):
            make_cache_key("fp", SimilarityConfig(), 2, 1.5)


class TestResultCache:
    def test_hit_miss_accounting(self):
        cache = ResultCache(capacity=4)
        key = make_cache_key("fp", SimilarityConfig(), 3, 0.5)
        assert cache.get(key) is None
        cache.put(key, _result())
        entry = cache.get(key)
        assert entry is not None and entry.hits == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        config = SimilarityConfig()
        k1 = make_cache_key("fp", config, 2, 0.1)
        k2 = make_cache_key("fp", config, 2, 0.2)
        k3 = make_cache_key("fp", config, 2, 0.3)
        cache.put(k1, _result())
        cache.put(k2, _result())
        cache.get(k1)  # refresh k1; k2 is now least-recent
        cache.put(k3, _result())
        assert cache.get(k2) is None
        assert cache.get(k1) is not None
        assert cache.get(k3) is not None
        assert cache.stats()["evictions"] == 1

    def test_invalidate_fingerprint_is_exact(self):
        cache = ResultCache(capacity=8)
        config = SimilarityConfig()
        stale = [make_cache_key("old", config, 2, e) for e in (0.3, 0.5)]
        kept = [make_cache_key("new", config, 2, e) for e in (0.3, 0.5, 0.7)]
        for key in stale + kept:
            cache.put(key, _result())
        assert cache.invalidate_fingerprint("old") == 2
        assert sorted(k.epsilon for k in cache.keys()) == [0.3, 0.5, 0.7]
        assert all(k.fingerprint == "new" for k in cache.keys())
        # A second pass finds nothing left to drop.
        assert cache.invalidate_fingerprint("old") == 0

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            ResultCache(capacity=0)


class TestGraphStore:
    def test_add_get_remove(self):
        store = GraphStore()
        graph = gnm_random_graph(30, 60, seed=1)
        entry = store.add("g", graph)
        assert store.get("g") is entry
        assert entry.fingerprint == graph_fingerprint(graph)
        assert store.names() == ["g"] and len(store) == 1
        assert store.remove("g") == entry.fingerprint
        with pytest.raises(ConfigError):
            store.get("g")

    def test_duplicate_requires_replace(self):
        store = GraphStore()
        graph = gnm_random_graph(10, 20, seed=2)
        store.add("g", graph)
        with pytest.raises(ConfigError):
            store.add("g", graph)
        other = gnm_random_graph(12, 24, seed=3)
        entry = store.add("g", other, replace=True)
        assert entry.graph is other

    def test_oracle_kind_follows_index(self):
        store = GraphStore()
        graph = gnm_random_graph(25, 50, seed=4)
        plain = store.add("plain", graph)
        indexed = store.add("indexed", graph, build_index=True)
        assert isinstance(store.oracle_for(plain), SimilarityOracle)
        assert isinstance(store.oracle_for(indexed), IndexedOracle)

    def test_ensure_index_builds_once(self):
        store = GraphStore()
        graph = gnm_random_graph(20, 40, seed=5)
        store.add("g", graph)
        entry = store.ensure_index("g")
        assert entry.index is not None
        first = entry.index
        assert store.ensure_index("g").index is first


class TestUpdateEdges:
    def _store_with(self, n=30, m=70, seed=6):
        store = GraphStore()
        store.add("g", gnm_random_graph(n, m, seed=seed), build_index=True)
        return store

    def _free_pair(self, graph):
        existing = {(u, v) for u, v, _ in graph.edges()}
        for u in range(graph.num_vertices):
            for v in range(u + 1, graph.num_vertices):
                if (u, v) not in existing:
                    return u, v
        raise AssertionError("graph is complete")

    def test_insert_changes_fingerprint_and_drops_index(self):
        store = self._store_with()
        entry = store.get("g")
        old = entry.fingerprint
        u, v = self._free_pair(entry.graph)
        stats = store.update_edges("g", insert=[[u, v]])
        assert stats.old_fingerprint == old
        assert stats.new_fingerprint != old
        assert stats.inserted == 1 and stats.deleted == 0
        assert stats.sigma_recomputations > 0
        entry = store.get("g")
        assert entry.fingerprint == stats.new_fingerprint
        assert entry.index is None  # stale index dropped
        assert entry.updates_applied == 1

    def test_updated_snapshot_matches_batch_rebuild(self):
        """Incremental maintenance must equal building from scratch."""
        store = self._store_with(n=40, m=90, seed=7)
        entry = store.get("g")
        u, v = self._free_pair(entry.graph)
        victim = next(iter(entry.graph.edges()))
        store.update_edges(
            "g", insert=[[u, v, 2.0]], delete=[[victim[0], victim[1]]]
        )
        entry = store.get("g")
        builder = GraphBuilder(entry.graph.num_vertices)
        for a, b, w in entry.graph.edges():
            builder.add_edge(a, b, w)
        rebuilt = builder.build(dedup="error")
        expected = scan(rebuilt, 2, 0.5).canonical().labels
        got = scan(entry.graph, 2, 0.5).canonical().labels
        assert np.array_equal(got, expected)
        assert entry.fingerprint == graph_fingerprint(rebuilt)

    def test_mid_batch_failure_keeps_snapshot_consistent(self):
        """A bad spec after a good one: the applied prefix must be
        visible in the CSR snapshot and the fingerprint refreshed."""
        store = self._store_with(n=20, m=30, seed=8)
        entry = store.get("g")
        old_fingerprint = entry.fingerprint
        old_edges = entry.graph.num_edges
        u, v = self._free_pair(entry.graph)
        with pytest.raises(ConfigError):
            store.update_edges("g", insert=[[u, v], [1, 2, 3, 4]])
        entry = store.get("g")
        assert entry.graph.num_edges == old_edges + 1
        assert entry.fingerprint != old_fingerprint
        assert entry.fingerprint == graph_fingerprint(entry.graph)

    def test_add_vertices(self):
        store = self._store_with(n=10, m=15, seed=9)
        before = store.get("g").graph.num_vertices
        stats = store.update_edges("g", add_vertices=3)
        assert stats.vertices_added == 3
        assert store.get("g").graph.num_vertices == before + 3

    def test_validation(self):
        store = self._store_with()
        with pytest.raises(ConfigError):
            store.update_edges("g", add_vertices=-1)
        with pytest.raises(ConfigError):
            store.update_edges("missing", insert=[[0, 1]])
        with pytest.raises(ConfigError):
            store.update_edges("g", delete=[[0]])


class TestGuardedCacheFill:
    """A job finishing late must not plant a cache entry for a graph
    that was unloaded, replaced, or mutated while it ran (§9)."""

    def _setup(self):
        store = GraphStore()
        graph = gnm_random_graph(20, 40, seed=11)
        entry = store.add("g", graph)
        cache = ResultCache(capacity=8)
        key = make_cache_key(entry.fingerprint, entry.similarity, 2, 0.5)
        return store, cache, entry, key

    def test_fill_succeeds_while_graph_is_current(self):
        store, cache, entry, key = self._setup()
        assert store.fill_cache_if_current(
            cache, "g", entry.fingerprint, key, _result()
        )
        assert cache.get(key) is not None

    def test_fill_skipped_after_remove(self):
        store, cache, entry, key = self._setup()
        store.remove("g")
        assert not store.fill_cache_if_current(
            cache, "g", entry.fingerprint, key, _result()
        )
        assert len(cache) == 0

    def test_fill_skipped_after_update_changed_fingerprint(self):
        store, cache, entry, key = self._setup()
        old_fingerprint = entry.fingerprint
        u, v = TestUpdateEdges()._free_pair(entry.graph)
        store.update_edges("g", insert=[[u, v]])
        # The job answered for the pre-update fingerprint; by now the
        # invalidation for that fingerprint has already run, so a fill
        # here would resurrect a purged entry.
        assert not store.fill_cache_if_current(
            cache, "g", old_fingerprint, key, _result()
        )
        assert len(cache) == 0

    def test_fill_skipped_after_replace(self):
        store, cache, entry, key = self._setup()
        store.add("g", gnm_random_graph(22, 44, seed=12), replace=True)
        assert not store.fill_cache_if_current(
            cache, "g", entry.fingerprint, key, _result()
        )
        assert len(cache) == 0
