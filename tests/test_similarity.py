"""Tests for the weighted structural similarity oracle."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph.csr import Graph
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from tests.conftest import brute_force_sigma


class TestSigmaValues:
    def test_triangle_all_pairs_equal_one(self, triangle):
        oracle = SimilarityOracle(triangle)
        for p in range(3):
            for q in range(3):
                if p != q:
                    assert oracle.sigma(p, q) == pytest.approx(1.0)

    def test_sigma_self_is_one(self, karate):
        oracle = SimilarityOracle(karate)
        for v in (0, 5, 33):
            assert oracle.sigma(v, v) == pytest.approx(1.0)

    def test_sigma_symmetric(self, karate):
        oracle = SimilarityOracle(karate)
        for p, q in [(0, 1), (2, 32), (5, 16), (0, 33)]:
            assert oracle.sigma(p, q) == pytest.approx(oracle.sigma(q, p))

    def test_matches_brute_force_unweighted(self, karate):
        oracle = SimilarityOracle(karate)
        rng = np.random.default_rng(1)
        for _ in range(30):
            p, q = rng.integers(0, 34, size=2)
            expected = brute_force_sigma(karate, int(p), int(q))
            assert oracle.sigma(int(p), int(q)) == pytest.approx(expected)

    def test_matches_brute_force_weighted(self, weighted_triangle):
        oracle = SimilarityOracle(weighted_triangle)
        for p in range(3):
            for q in range(3):
                expected = brute_force_sigma(weighted_triangle, p, q)
                assert oracle.sigma(p, q) == pytest.approx(expected)

    def test_unweighted_closed_matches_classic_scan_formula(self, karate):
        # σ(u,v) = |Γ(u) ∩ Γ(v)| / sqrt(|Γ(u)||Γ(v)|)
        oracle = SimilarityOracle(karate)
        for p, q in [(0, 1), (32, 33), (5, 6)]:
            gp = set(int(x) for x in karate.neighbors(p)) | {p}
            gq = set(int(x) for x in karate.neighbors(q)) | {q}
            expected = len(gp & gq) / np.sqrt(len(gp) * len(gq))
            assert oracle.sigma(p, q) == pytest.approx(expected)

    def test_open_mode_literal_definition(self, triangle):
        oracle = SimilarityOracle(
            triangle, SimilarityConfig(closed=False, count_self=False)
        )
        # Open neighborhoods: common neighbors of adjacent triangle
        # vertices = 1 vertex; lengths = 2 each -> 1/2.
        assert oracle.sigma(0, 1) == pytest.approx(0.5)

    def test_disconnected_pair_zero(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        oracle = SimilarityOracle(g)
        assert oracle.sigma(0, 2) == pytest.approx(
            brute_force_sigma(g, 0, 2)
        )

    def test_nonadjacent_with_common_neighbor(self, star_graph):
        oracle = SimilarityOracle(star_graph)
        # Leaves 1 and 2 share the hub 0.
        expected = brute_force_sigma(star_graph, 1, 2)
        assert oracle.sigma(1, 2) == pytest.approx(expected)
        assert expected == pytest.approx(1 / 2)


class TestPrecomputation:
    def test_lengths_include_self_weight(self, weighted_triangle):
        oracle = SimilarityOracle(weighted_triangle)
        # Vertex 0: edges 2.0 and 1.0 plus self weight 1.0.
        assert oracle.lengths[0] == pytest.approx(4.0 + 1.0 + 1.0)

    def test_lengths_open_mode(self, weighted_triangle):
        oracle = SimilarityOracle(
            weighted_triangle, SimilarityConfig(closed=False)
        )
        assert oracle.lengths[0] == pytest.approx(5.0)

    def test_max_weights(self, weighted_triangle):
        oracle = SimilarityOracle(weighted_triangle)
        assert oracle.max_weights[0] == pytest.approx(2.0)
        assert oracle.max_weights[2] == pytest.approx(1.0)

    def test_custom_self_weight(self, triangle):
        oracle = SimilarityOracle(
            triangle, SimilarityConfig(self_weight=2.0)
        )
        assert oracle.lengths[0] == pytest.approx(2.0 + 4.0)

    def test_invalid_self_weight(self, triangle):
        with pytest.raises(ConfigError):
            SimilarityOracle(triangle, SimilarityConfig(self_weight=0.0))


class TestNeighborhoods:
    def test_eps_neighborhood_excludes_self(self, karate):
        oracle = SimilarityOracle(karate)
        hood = oracle.eps_neighborhood(0, 0.3)
        assert 0 not in hood

    def test_eps_neighborhood_subset_of_neighbors(self, karate):
        oracle = SimilarityOracle(karate)
        hood = set(int(x) for x in oracle.eps_neighborhood(0, 0.4))
        neighbors = set(int(x) for x in karate.neighbors(0))
        assert hood <= neighbors

    def test_threshold_monotone(self, karate):
        oracle = SimilarityOracle(karate)
        loose = set(int(x) for x in oracle.eps_neighborhood(2, 0.3))
        tight = set(int(x) for x in oracle.eps_neighborhood(2, 0.7))
        assert tight <= loose

    def test_eps_neighborhood_size_counts_self(self, triangle):
        oracle = SimilarityOracle(triangle)
        assert oracle.eps_neighborhood_size(0, 0.9) == 3

    def test_count_self_off(self, triangle):
        oracle = SimilarityOracle(
            triangle, SimilarityConfig(count_self=False)
        )
        assert oracle.eps_neighborhood_size(0, 0.9) == 2

    def test_max_possible(self, star_graph):
        oracle = SimilarityOracle(star_graph)
        assert oracle.max_possible_eps_neighbors(0) == 7
        assert oracle.max_possible_eps_neighbors(1) == 2

    def test_pruned_neighborhood_agrees_with_full(self, karate):
        full_oracle = SimilarityOracle(
            karate, SimilarityConfig(pruning=False)
        )
        pruned_oracle = SimilarityOracle(
            karate, SimilarityConfig(pruning=True)
        )
        for v in range(34):
            a = set(int(x) for x in full_oracle.eps_neighborhood(v, 0.5))
            b = set(
                int(x) for x in pruned_oracle.eps_neighborhood_pruned(v, 0.5)
            )
            assert a == b


class TestCounters:
    def test_sigma_counts(self, karate):
        oracle = SimilarityOracle(karate)
        oracle.sigma(0, 1)
        oracle.sigma(2, 3)
        assert oracle.counters.sigma_evaluations == 2
        assert oracle.counters.work_units > 0

    def test_unrecorded_does_not_count(self, karate):
        oracle = SimilarityOracle(karate)
        oracle.sigma_unrecorded(0, 1)
        assert oracle.counters.sigma_evaluations == 0

    def test_neighborhood_query_counts_evaluations(self, karate):
        oracle = SimilarityOracle(karate)
        oracle.eps_neighborhood(0, 0.5)
        assert oracle.counters.neighborhood_queries == 1
        assert oracle.counters.sigma_evaluations == karate.degree(0)
