"""Tests for edge-list and METIS graph IO."""

import gzip

import pytest

from repro.errors import GraphFormatError
from repro.graph.io import load_edge_list, load_metis, save_edge_list, save_metis


class TestEdgeList:
    def test_round_trip_unweighted(self, karate, tmp_path):
        path = tmp_path / "karate.txt"
        save_edge_list(karate, path)
        loaded, labels = load_edge_list(path)
        assert loaded.num_vertices == karate.num_vertices
        assert loaded.num_edges == karate.num_edges
        assert len(labels) == karate.num_vertices

    def test_round_trip_weighted(self, weighted_triangle, tmp_path):
        path = tmp_path / "wt.txt"
        save_edge_list(weighted_triangle, path, weighted=True)
        loaded, _ = load_edge_list(path, weighted=True)
        assert loaded.is_weighted
        assert loaded.total_weight == pytest.approx(
            weighted_triangle.total_weight
        )

    def test_gzip_round_trip(self, triangle, tmp_path):
        path = tmp_path / "tri.txt.gz"
        save_edge_list(triangle, path)
        loaded, _ = load_edge_list(path)
        assert loaded.num_edges == 3

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n# comment\n1 2\n")
        g, _ = load_edge_list(path)
        assert g.num_edges == 2

    def test_string_labels_relabeled(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("alice bob\nbob carol\n")
        g, labels = load_edge_list(path)
        assert g.num_vertices == 3
        assert set(labels) == {"alice", "bob", "carol"}
        assert g.has_edge(labels["alice"], labels["bob"])

    def test_duplicate_edges_ignored_by_default(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n")
        g, _ = load_edge_list(path)
        assert g.num_edges == 1

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        g, _ = load_edge_list(path)
        assert g.num_edges == 1

    def test_missing_column_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_weighted_requires_third_column(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path, weighted=True)

    def test_bad_weight_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 heavy\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path, weighted=True)


class TestMetis:
    def test_round_trip(self, karate, tmp_path):
        path = tmp_path / "karate.metis"
        save_metis(karate, path)
        loaded = load_metis(path)
        assert loaded == karate

    def test_round_trip_weighted(self, weighted_triangle, tmp_path):
        path = tmp_path / "wt.metis"
        save_metis(weighted_triangle, path, weighted=True)
        loaded = load_metis(path)
        assert loaded.edge_weight(0, 1) == pytest.approx(2.0)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.metis"
        path.write_text("")
        with pytest.raises(GraphFormatError):
            load_metis(path)

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("5\n")
        with pytest.raises(GraphFormatError):
            load_metis(path)

    def test_row_count_mismatch_raises(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 1\n2\n")  # header says 2 vertices, one row given
        with pytest.raises(GraphFormatError):
            load_metis(path)

    def test_edge_count_mismatch_raises(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(GraphFormatError, match="promises"):
            load_metis(path)

    def test_neighbor_out_of_range_raises(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 1\n3\n1\n")
        with pytest.raises(GraphFormatError):
            load_metis(path)

    def test_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("% comment\n2 1\n2\n1\n")
        g = load_metis(path)
        assert g.num_edges == 1
