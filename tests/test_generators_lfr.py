"""Tests for the LFR benchmark generator and clustering tuning."""

import numpy as np
import pytest

from repro.errors import GeneratorError
from repro.graph.generators.lfr import LFRParams, lfr_graph, tune_clustering
from repro.graph.stats import average_clustering, average_degree
from repro.metrics import nmi


def _params(**overrides):
    base = dict(
        n=400, average_degree=10, max_degree=30, mixing=0.25, seed=7
    )
    base.update(overrides)
    return LFRParams(**base)


class TestLFRGeneration:
    def test_basic_shape(self):
        graph, membership = lfr_graph(_params())
        assert graph.num_vertices == 400
        assert membership.shape[0] == 400
        assert np.all(membership >= 0)

    def test_average_degree_in_regime(self):
        graph, _ = lfr_graph(_params(n=1000, seed=3))
        # Configuration-model losses allow some slack below target.
        assert 6.5 <= average_degree(graph) <= 12.0

    def test_mixing_controls_community_separation(self):
        g_low, m_low = lfr_graph(_params(mixing=0.1, seed=5))
        g_high, m_high = lfr_graph(_params(mixing=0.6, seed=5))

        def intra_fraction(graph, member):
            intra = sum(
                1 for u, v, _ in graph.edges() if member[u] == member[v]
            )
            return intra / max(graph.num_edges, 1)

        assert intra_fraction(g_low, m_low) > intra_fraction(g_high, m_high)

    def test_communities_recoverable_at_low_mixing(self):
        graph, membership = lfr_graph(_params(mixing=0.05, seed=11))
        # Connected components of the intra-community subgraph should align
        # almost perfectly with the planted communities.
        from repro.structures.disjoint_set import DisjointSet

        dsu = DisjointSet(graph.num_vertices)
        for u, v, _ in graph.edges():
            if membership[u] == membership[v]:
                dsu.union(u, v)
        components = dsu.components()
        assert nmi(membership, components) > 0.9

    def test_deterministic(self):
        g1, m1 = lfr_graph(_params())
        g2, m2 = lfr_graph(_params())
        assert g1 == g2
        assert np.array_equal(m1, m2)

    def test_invalid_mixing(self):
        with pytest.raises(GeneratorError):
            lfr_graph(_params(mixing=1.0))

    def test_invalid_max_degree(self):
        with pytest.raises(GeneratorError):
            lfr_graph(_params(max_degree=400))

    def test_invalid_n(self):
        with pytest.raises(GeneratorError):
            LFRParams(
                n=0, average_degree=5, max_degree=10
            ).validate()

    def test_community_sizes_respect_bounds(self):
        params = _params(min_community=20, max_community=80)
        _, membership = lfr_graph(params)
        _, counts = np.unique(membership, return_counts=True)
        assert counts.min() >= 10  # trim may shave, but not collapse
        assert counts.max() <= 120  # feasibility repair may grow the top


class TestTuneClustering:
    def test_raises_clustering(self):
        graph, _ = lfr_graph(_params(mixing=0.5, seed=2))
        before = average_clustering(graph)
        tuned = tune_clustering(
            graph, min(before + 0.1, 1.0), seed=2, max_swaps=4000
        )
        after = average_clustering(tuned)
        assert after > before

    def test_preserves_degrees(self):
        graph, _ = lfr_graph(_params(seed=3))
        tuned = tune_clustering(graph, 0.4, seed=3, max_swaps=2000)
        assert np.array_equal(
            np.sort(graph.degrees), np.sort(tuned.degrees)
        )

    def test_lowers_clustering(self, caveman):
        before = average_clustering(caveman)
        tuned = tune_clustering(caveman, 0.1, seed=1, max_swaps=4000)
        assert average_clustering(tuned) < before

    def test_invalid_target(self, triangle):
        with pytest.raises(GeneratorError):
            tune_clustering(triangle, 1.5)
