"""Tests for the ASCII chart renderers."""

import pytest

from repro.bench.charts import bar_chart, line_chart, sparkline
from repro.errors import ExperimentError


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_single_value(self):
        assert len(sparkline([3.2])) == 1


class TestBarChart:
    def test_labels_and_values_present(self):
        chart = bar_chart([("alpha", 10.0), ("beta", 5.0)], width=10)
        assert "alpha" in chart
        assert "10.00" in chart
        lines = chart.splitlines()
        assert lines[0].count("█") > lines[1].count("█")

    def test_unit_suffix(self):
        chart = bar_chart([("x", 2.0)], unit="s")
        assert "2.00s" in chart

    def test_zero_values(self):
        chart = bar_chart([("x", 0.0), ("y", 0.0)])
        assert "█" not in chart

    def test_empty(self):
        assert bar_chart([]) == "(no data)"

    def test_invalid_width(self):
        with pytest.raises(ExperimentError):
            bar_chart([("x", 1.0)], width=0)


class TestLineChart:
    def test_contains_points_and_axis(self):
        chart = line_chart([0, 1, 2, 3], [0, 1, 4, 9], width=20, height=6)
        assert "•" in chart
        assert "└" in chart
        assert "9" in chart  # y max annotation

    def test_labels_rendered(self):
        chart = line_chart(
            [0, 1], [0, 1], width=10, height=4,
            x_label="time", y_label="NMI",
        )
        assert "time" in chart
        assert "NMI" in chart

    def test_constant_y(self):
        chart = line_chart([0, 1, 2], [5, 5, 5], width=10, height=4)
        assert "•" in chart

    def test_empty(self):
        assert line_chart([], []) == "(no data)"

    def test_length_mismatch(self):
        with pytest.raises(ExperimentError):
            line_chart([1], [1, 2])

    def test_too_small(self):
        with pytest.raises(ExperimentError):
            line_chart([1], [1], width=1, height=1)

    def test_extremes_land_on_edges(self):
        chart = line_chart([0, 10], [0, 10], width=10, height=5)
        rows = [ln for ln in chart.splitlines() if "│" in ln]
        assert "•" in rows[0]    # max y on top row
        assert "•" in rows[-1]   # min y on bottom row
