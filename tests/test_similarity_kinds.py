"""Tests for the alternative structural-similarity kinds."""

import numpy as np
import pytest

from repro.baselines import scan
from repro.core import AnySCAN, AnyScanConfig
from repro.errors import ConfigError
from repro.graph.generators.weights import assign_random_weights
from repro.metrics.comparison import explain_difference
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle


def oracle_for(graph, kind):
    return SimilarityOracle(
        graph, SimilarityConfig(kind=kind, pruning=False)
    )


class TestConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            SimilarityConfig(kind="tanimoto").validate()

    def test_pruning_requires_cosine(self):
        with pytest.raises(ConfigError):
            SimilarityConfig(kind="jaccard", pruning=True).validate()

    def test_cosine_with_pruning_fine(self):
        SimilarityConfig(kind="cosine", pruning=True).validate()


class TestUnweightedClassicForms:
    """With all-ones weights the kinds reduce to their set formulas."""

    def closed_sets(self, graph, p, q):
        gp = set(int(x) for x in graph.neighbors(p)) | {p}
        gq = set(int(x) for x in graph.neighbors(q)) | {q}
        return gp, gq

    @pytest.mark.parametrize("p,q", [(0, 1), (0, 33), (5, 16), (2, 32)])
    def test_jaccard(self, karate, p, q):
        gp, gq = self.closed_sets(karate, p, q)
        expected = len(gp & gq) / len(gp | gq)
        assert oracle_for(karate, "jaccard").sigma_unrecorded(
            p, q
        ) == pytest.approx(expected)

    @pytest.mark.parametrize("p,q", [(0, 1), (0, 33), (5, 16)])
    def test_dice(self, karate, p, q):
        gp, gq = self.closed_sets(karate, p, q)
        expected = 2 * len(gp & gq) / (len(gp) + len(gq))
        assert oracle_for(karate, "dice").sigma_unrecorded(
            p, q
        ) == pytest.approx(expected)

    @pytest.mark.parametrize("p,q", [(0, 1), (0, 33), (5, 16)])
    def test_overlap(self, karate, p, q):
        gp, gq = self.closed_sets(karate, p, q)
        expected = len(gp & gq) / min(len(gp), len(gq))
        assert oracle_for(karate, "overlap").sigma_unrecorded(
            p, q
        ) == pytest.approx(expected)


class TestProperties:
    @pytest.mark.parametrize("kind", ["jaccard", "dice", "overlap"])
    def test_self_similarity_is_one(self, karate, kind):
        oracle = oracle_for(karate, kind)
        for v in (0, 7, 33):
            assert oracle.sigma_unrecorded(v, v) == pytest.approx(1.0)

    @pytest.mark.parametrize("kind", ["jaccard", "dice", "overlap"])
    def test_symmetric_and_bounded(self, karate, kind):
        oracle = oracle_for(karate, kind)
        rng = np.random.default_rng(1)
        for _ in range(25):
            p, q = (int(x) for x in rng.integers(0, 34, size=2))
            s = oracle.sigma_unrecorded(p, q)
            assert s == pytest.approx(oracle.sigma_unrecorded(q, p))
            assert -1e-9 <= s <= 1.0 + 1e-9

    def test_kind_ordering(self, karate):
        # overlap >= dice >= jaccard pointwise (standard inequalities).
        j = oracle_for(karate, "jaccard")
        d = oracle_for(karate, "dice")
        o = oracle_for(karate, "overlap")
        for u, v, _ in karate.edges():
            sj = j.sigma_unrecorded(u, v)
            sd = d.sigma_unrecorded(u, v)
            so = o.sigma_unrecorded(u, v)
            assert so >= sd - 1e-9
            assert sd >= sj - 1e-9

    @pytest.mark.parametrize("kind", ["jaccard", "dice", "overlap"])
    def test_weighted_bounded(self, karate, kind):
        heavy = assign_random_weights(karate, low=0.2, high=4.0, seed=3)
        oracle = oracle_for(heavy, kind)
        for u, v, _ in heavy.edges():
            assert 0.0 <= oracle.sigma_unrecorded(u, v) <= 1.0 + 1e-9


class TestAlgorithmsWithKinds:
    @pytest.mark.parametrize("kind", ["jaccard", "dice"])
    def test_anyscan_exact_under_kind(self, lfr_small, kind):
        config = SimilarityConfig(kind=kind, pruning=False)
        oracle = SimilarityOracle(lfr_small, config)
        reference = scan(
            lfr_small, 4, 0.4,
            oracle=SimilarityOracle(lfr_small, config), seed=1,
        )
        result = AnySCAN(
            lfr_small,
            AnyScanConfig(
                mu=4, epsilon=0.4, alpha=32, beta=32,
                similarity=config, record_costs=False,
            ),
        ).run()
        problems = explain_difference(
            lfr_small, oracle, reference, result, 4, 0.4
        )
        assert not problems, problems

    def test_kinds_give_different_clusterings(self, lfr_small):
        results = {}
        for kind in ("cosine", "jaccard"):
            config = SimilarityConfig(kind=kind, pruning=False)
            results[kind] = scan(
                lfr_small, 4, 0.5,
                oracle=SimilarityOracle(lfr_small, config), seed=1,
            )
        # Jaccard is strictly smaller than cosine on most pairs, so the
        # same ε admits fewer cores.
        assert (
            results["jaccard"].clustered_vertices.shape[0]
            <= results["cosine"].clustered_vertices.shape[0]
        )

    def test_similar_respects_kind(self, karate):
        config = SimilarityConfig(kind="jaccard", pruning=False)
        oracle = SimilarityOracle(karate, config)
        for u, v, _ in list(karate.edges())[:20]:
            want = oracle.sigma_unrecorded(u, v) >= 0.4
            assert oracle.similar(u, v, 0.4) == want
