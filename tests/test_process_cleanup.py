"""Shared-memory hygiene on abnormal shutdown.

PR 2's ProcessBackend publishes CSR arrays through POSIX shared memory;
a SIGTERM mid-job used to leak the segments (they outlive the process
in /dev/shm).  The backend now uses named ``repro_{pid}_…`` segments, a
live-object registry, an atexit hook, and an opt-in signal hook
(:func:`repro.parallel.processes.install_signal_cleanup`); these tests
assert a killed session leaves no stray segments behind."""

from __future__ import annotations

import glob
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.graph.generators.random_graphs import gnm_random_graph
from repro.parallel.processes import (
    SEGMENT_PREFIX,
    ProcessBackend,
    cleanup_live_segments,
    install_signal_cleanup,
)

_SHM_DIR = "/dev/shm"

pytestmark = pytest.mark.skipif(
    not os.path.isdir(_SHM_DIR),
    reason="POSIX shared memory not mounted at /dev/shm",
)


def _segments_of(pid: int) -> list:
    return glob.glob(os.path.join(_SHM_DIR, f"{SEGMENT_PREFIX}_{pid}_*"))


def test_segments_are_named_and_cleaned_in_process():
    graph = gnm_random_graph(120, 480, seed=2)
    backend = ProcessBackend(workers=2)
    try:
        backend.map_range_queries(graph, range(graph.num_vertices), epsilon=0.5)
        if backend.kind != "process":
            pytest.skip("process pool unavailable; thread fallback active")
        assert _segments_of(os.getpid())
    finally:
        backend.close()
    assert not _segments_of(os.getpid())


def test_cleanup_live_segments_sweeps_open_backends():
    graph = gnm_random_graph(100, 400, seed=3)
    backend = ProcessBackend(workers=2)
    try:
        backend.map_range_queries(graph, range(graph.num_vertices), epsilon=0.5)
        if backend.kind != "process":
            pytest.skip("process pool unavailable; thread fallback active")
        assert _segments_of(os.getpid())
        assert cleanup_live_segments() > 0
        assert not _segments_of(os.getpid())
    finally:
        backend.close()


def test_install_signal_cleanup_restores_previous_handler():
    sentinel = []

    def previous(signum, frame):
        sentinel.append(signum)

    old = signal.signal(signal.SIGUSR1, previous)
    try:
        installed = install_signal_cleanup(signals=(signal.SIGUSR1,))
        assert [signum for signum, _ in installed] == [signal.SIGUSR1]
        os.kill(os.getpid(), signal.SIGUSR1)
        # The hook cleans segments, restores `previous`, and re-raises.
        assert sentinel == [signal.SIGUSR1]
    finally:
        signal.signal(signal.SIGUSR1, old)


_CHILD = textwrap.dedent(
    """
    import os, sys, threading, time
    from repro.graph.generators.random_graphs import gnm_random_graph
    from repro.parallel.processes import ProcessBackend, install_signal_cleanup

    install_signal_cleanup()
    graph = gnm_random_graph(400, 1600, seed=1)
    backend = ProcessBackend(workers=2)
    backend.map_range_queries(graph, range(graph.num_vertices), epsilon=0.5)
    if backend.kind != "process":
        print("FALLBACK", flush=True)
        sys.exit(0)

    def spin():
        while True:
            backend.map_range_queries(graph, range(graph.num_vertices), epsilon=0.5)

    threading.Thread(target=spin, daemon=True).start()
    print("READY", flush=True)
    time.sleep(60)
    """
)


def test_sigkill_parent_mid_job_leaves_no_stray_segments():
    """SIGKILL the parent mid-job; /dev/shm must still come back clean.

    SIGKILL runs no handler and no atexit hook, so this path cannot be
    cleaned by the parent: the guarantee comes from the worker-side
    parent watchdog (orphaned workers exit when they are reparented)
    plus the multiprocessing resource tracker, which sweeps every
    registered segment once the last pipe holder is gone."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         env.get("PYTHONPATH", "")]
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _CHILD],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline().strip()
        if line == "FALLBACK":
            proc.wait(timeout=30)
            pytest.skip("process pool unavailable in this environment")
        assert line == "READY"
        deadline = time.monotonic() + 10
        while not _segments_of(proc.pid):
            assert time.monotonic() < deadline, "child published no segments"
            time.sleep(0.05)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL
        # Watchdog poll (0.5s) + tracker sweep; allow generous slack.
        deadline = time.monotonic() + 20
        while _segments_of(proc.pid):
            assert time.monotonic() < deadline, (
                f"stray segments: {_segments_of(proc.pid)}"
            )
            time.sleep(0.1)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        proc.stdout.close()


def test_sigterm_mid_job_leaves_no_stray_segments(tmp_path):
    """Kill a busy session with SIGTERM; /dev/shm must come back clean."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         env.get("PYTHONPATH", "")]
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _CHILD],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline().strip()
        if line == "FALLBACK":
            proc.wait(timeout=30)
            pytest.skip("process pool unavailable in this environment")
        assert line == "READY"
        # The child is mid-job now; its segments are visible.
        deadline = time.monotonic() + 10
        while not _segments_of(proc.pid):
            assert time.monotonic() < deadline, "child published no segments"
            time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
        # Re-delivery preserved the death-by-signal exit status.
        assert proc.returncode == -signal.SIGTERM
        deadline = time.monotonic() + 10
        while _segments_of(proc.pid):
            assert time.monotonic() < deadline, (
                f"stray segments: {_segments_of(proc.pid)}"
            )
            time.sleep(0.05)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        proc.stdout.close()
