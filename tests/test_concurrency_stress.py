"""Concurrency stress: ShadowArray race audit under adversarial chunking.

The dynamic half of rule R1: run the real thread backend's shared
neighbor-update workload against a :class:`ShadowArray`, with chunk
sizes chosen to maximize interleaving (1, primes, n), and assert that
every multi-writer cell was guarded and no update was dropped.  The
process backend gets the complementary check — its workers share
nothing, so the contract is that no chunk geometry drops or duplicates
results.
"""

import time

import numpy as np
import pytest

from repro.analysis.runtime import ShadowArray, ShadowWriteLog
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.parallel.processes import ProcessBackend, shared_memory_available
from repro.parallel.threads import (
    ThreadBackend,
    parallel_neighbor_updates,
    parallel_range_queries,
)

EPS = 0.4
N = 120

CHUNK_SIZES = [1, 7, 13, N, 127]  # 1, primes, whole-batch, prime > n
THREADS = [2, 4]


@pytest.fixture(scope="module")
def graph():
    return gnm_random_graph(N, 480, seed=13)


@pytest.fixture(scope="module")
def expected_counts(graph):
    hoods = parallel_range_queries(
        graph, range(N), EPS, backend=ThreadBackend(threads=1)
    )
    flat = np.concatenate([h for h in hoods if h.size] or [np.zeros(0, int)])
    return np.bincount(flat.astype(np.int64), minlength=N)


class TestThreadBackendUnderShadow:
    @pytest.mark.parametrize("threads", THREADS)
    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_neighbor_updates_race_free_and_lossless(
        self, graph, expected_counts, threads, chunk
    ):
        log = ShadowWriteLog()
        shadow = ShadowArray(
            np.zeros(N, dtype=np.int64), log, name="touch-counts"
        )
        _, out = parallel_neighbor_updates(
            graph,
            range(N),
            EPS,
            backend=ThreadBackend(threads=threads, chunk_size=chunk),
            out=shadow,
        )
        assert out is shadow
        log.assert_race_free()
        np.testing.assert_array_equal(np.asarray(shadow), expected_counts)

    def test_every_write_was_guarded(self, graph):
        log = ShadowWriteLog()
        shadow = ShadowArray(np.zeros(N, dtype=np.int64), log, name="counts")
        parallel_neighbor_updates(
            graph,
            range(N),
            EPS,
            backend=ThreadBackend(threads=4, chunk_size=1),
            out=shadow,
        )
        assert log.records, "workload produced no writes to audit"
        assert all(r.guarded for r in log.records), (
            "atomic_add must mark every touch-count write as guarded"
        )

    def test_shadow_catches_a_seeded_race(self):
        """The checker itself must fire on a deliberately racy workload."""
        log = ShadowWriteLog()
        shadow = ShadowArray(np.zeros(4, dtype=np.int64), log, name="bad")

        def racy(i):
            value = shadow[0]
            time.sleep(0.001)  # force a GIL switch inside the RMW window
            shadow[0] = value + 1  # raw read-modify-write, no guard
            return i

        ThreadBackend(threads=4, chunk_size=1).map(racy, list(range(32)))
        distinct_writers = {r.thread_id for r in log.records}
        if len(distinct_writers) < 2:
            pytest.skip("scheduler never interleaved two threads")
        with pytest.raises(AssertionError, match="unguarded"):
            log.assert_race_free()


@pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)
class TestProcessBackendChunkGeometry:
    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_no_dropped_or_duplicated_results(
        self, graph, expected_counts, chunk
    ):
        with ProcessBackend(workers=2, chunk_size=chunk) as backend:
            hoods, counts = backend.map_neighbor_updates(graph, range(N), EPS)
        assert len(hoods) == N
        np.testing.assert_array_equal(counts, expected_counts)

    def test_order_preserved_under_tiny_chunks(self, graph):
        want = parallel_range_queries(
            graph, range(N), EPS, backend=ThreadBackend(threads=1)
        )
        with ProcessBackend(workers=2, chunk_size=1) as backend:
            got = backend.map_range_queries(graph, range(N), EPS)
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)
