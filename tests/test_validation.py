"""Central eps/mu validation used by every public entry point."""

import pytest

from repro.errors import ConfigError
from repro.validation import check_eps_mu


class TestCheckEpsMu:
    def test_valid_combinations_pass(self):
        check_eps_mu()
        check_eps_mu(mu=1)
        check_eps_mu(mu=2, epsilon=0.5)
        check_eps_mu(epsilon=1.0)
        check_eps_mu(epsilon=1e-9)

    @pytest.mark.parametrize("mu", [0, -1, -100])
    def test_nonpositive_mu_rejected(self, mu):
        with pytest.raises(ConfigError, match="mu"):
            check_eps_mu(mu=mu)

    @pytest.mark.parametrize("epsilon", [0.0, -0.5, 1.0001, 2.0])
    def test_epsilon_out_of_range_rejected(self, epsilon):
        with pytest.raises(ConfigError, match="epsilon"):
            check_eps_mu(epsilon=epsilon)

    def test_none_parameters_are_skipped(self):
        check_eps_mu(mu=None, epsilon=None)

    def test_first_failure_wins(self):
        with pytest.raises(ConfigError, match="mu"):
            check_eps_mu(mu=0, epsilon=5.0)
