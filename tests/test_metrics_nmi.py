"""Tests for NMI, ARI, entropy, and contingency tables."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.metrics.contingency import contingency_table, prepare_labels
from repro.metrics.nmi import ari, entropy, mutual_information, nmi


class TestEntropy:
    def test_uniform_two_clusters(self):
        assert entropy(np.array([5, 5])) == pytest.approx(np.log(2))

    def test_single_cluster_zero(self):
        assert entropy(np.array([10])) == 0.0

    def test_empty(self):
        assert entropy(np.array([])) == 0.0

    def test_zeros_ignored(self):
        assert entropy(np.array([4, 0, 4])) == pytest.approx(np.log(2))


class TestPrepareLabels:
    def test_cluster_mode_pools_noise(self):
        out = prepare_labels(np.array([0, -1, -2, 1]), noise="cluster")
        assert out[1] == out[2] == 2

    def test_singleton_mode(self):
        out = prepare_labels(np.array([0, -1, -2]), noise="singletons")
        assert out[1] != out[2]
        assert out[1] > 0 and out[2] > 0

    def test_drop_mode(self):
        out = prepare_labels(np.array([0, -1]), noise="drop")
        assert out[1] == -1

    def test_unknown_mode(self):
        with pytest.raises(ReproError):
            prepare_labels(np.array([0]), noise="whatever")


class TestContingency:
    def test_identity(self):
        a = np.array([0, 0, 1, 1])
        m, rows, cols = contingency_table(a, a)
        assert m.tolist() == [[2, 0], [0, 2]]
        assert rows.tolist() == [2, 2]
        assert cols.tolist() == [2, 2]

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            contingency_table(np.array([0]), np.array([0, 1]))

    def test_empty(self):
        m, rows, cols = contingency_table(np.array([]), np.array([]))
        assert m.shape == (0, 0)

    def test_drop_excludes(self):
        a = np.array([0, 0, -1])
        b = np.array([0, 1, 0])
        m, _, _ = contingency_table(a, b, noise="drop")
        assert m.sum() == 2


class TestNMI:
    def test_identical_is_one(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert nmi(labels, labels) == pytest.approx(1.0)

    def test_identical_with_noise(self):
        labels = np.array([0, 0, 1, -1, -2])
        assert nmi(labels, labels) == pytest.approx(1.0)

    def test_permuted_labels_is_one(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([5, 5, 2, 2])
        assert nmi(a, b) == pytest.approx(1.0)

    def test_independent_is_low(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, size=3000)
        b = rng.integers(0, 5, size=3000)
        assert nmi(a, b) < 0.05

    def test_partial_between(self):
        a = np.array([0] * 50 + [1] * 50)
        b = a.copy()
        b[:10] = 1  # corrupt 10%
        assert 0.3 < nmi(a, b) < 1.0

    def test_both_trivial_is_one(self):
        a = np.zeros(5, dtype=int)
        assert nmi(a, a) == pytest.approx(1.0)

    def test_one_trivial_is_zero(self):
        a = np.zeros(6, dtype=int)
        b = np.array([0, 0, 0, 1, 1, 1])
        assert nmi(a, b) == 0.0

    @pytest.mark.parametrize(
        "normalization", ["geometric", "arithmetic", "max"]
    )
    def test_normalizations_bounded(self, normalization):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([0, 1, 1, 2, 2, 0])
        value = nmi(a, b, normalization=normalization)
        assert 0.0 <= value <= 1.0

    def test_unknown_normalization(self):
        with pytest.raises(ReproError):
            nmi(np.array([0, 1]), np.array([0, 1]), normalization="wat")

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, size=200)
        b = rng.integers(0, 3, size=200)
        assert nmi(a, b) == pytest.approx(nmi(b, a))


class TestARI:
    def test_identical_is_one(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert ari(labels, labels) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 4, size=4000)
        b = rng.integers(0, 4, size=4000)
        assert abs(ari(a, b)) < 0.05

    def test_known_value(self):
        # sklearn's doc example: ARI([0,0,1,1],[0,0,1,2]) = 0.5714...
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 0, 1, 2])
        assert ari(a, b) == pytest.approx(0.5714, abs=1e-3)

    def test_single_element(self):
        assert ari(np.array([0]), np.array([0])) == 1.0

    def test_symmetry(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([0, 1, 1, 2, 2, 0])
        assert ari(a, b) == pytest.approx(ari(b, a))


class TestMutualInformation:
    def test_nonnegative(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 3, size=100)
        b = rng.integers(0, 3, size=100)
        assert mutual_information(a, b) >= 0.0

    def test_bounded_by_entropy(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        mi = mutual_information(a, a)
        assert mi == pytest.approx(entropy(np.array([2, 2, 2])))
