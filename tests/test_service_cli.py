"""`repro serve` smoke: a real subprocess, a real socket.

Drives the CLI entry exactly as an operator would — including the
``--graph NAME=PATH`` preload — then clusters, snapshots, cancels, and
shuts the server down cleanly over HTTP (exit status 0).
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.scan import scan
from repro.graph.generators.lfr import LFRParams, lfr_graph
from repro.result import Clustering
from repro.service.client import ServiceClient

pytestmark = pytest.mark.timeout(180)

REPO = Path(__file__).resolve().parents[1]


def _spawn(args):
    """Launch ``repro serve`` through the real CLI dispatch."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src"), env.get("PYTHONPATH", "")]
    )
    code = (
        "import sys; from repro.cli import main; "
        "sys.exit(main(['serve'] + sys.argv[1:]))"
    )
    return subprocess.Popen(
        [sys.executable, "-c", code, *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def _read_url(proc):
    line = proc.stdout.readline().strip()
    assert line.startswith("serving on http://"), line
    return line.removeprefix("serving on ")


def _finish(proc):
    try:
        code = proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        proc.stdout.close()
        proc.stderr.close()
    return code


def test_serve_cluster_snapshot_cancel_shutdown(tmp_path):
    graph, _ = lfr_graph(
        LFRParams(n=200, average_degree=8, max_degree=25, seed=31)
    )
    proc = _spawn(["--port", "0", "--workers", "2"])
    try:
        url = _read_url(proc)
        client = ServiceClient(url, timeout=60.0)
        assert client.health()["status"] == "ok"

        client.load_graph("smoke", graph=graph, build_index=True)
        body = client.cluster("smoke", 3, 0.6, wait=60.0)
        assert body["state"] == "done"
        expected = scan(graph, 3, 0.6).canonical().labels
        got = Clustering(
            labels=np.asarray(body["labels"], dtype=np.int64)
        ).canonical().labels
        assert np.array_equal(got, expected)

        # Repeat over the wire: served from the cache, zero σ evals.
        again = client.cluster("smoke", 3, 0.6)
        assert again["cached"] is True
        assert again["sigma_evaluations"] == 0

        job_id = client.cluster("smoke", 2, 0.4, alpha=8, beta=8)["job_id"]
        snap = client.snapshot(job_id, labels=False)
        assert 0.0 <= snap["assigned_fraction"] <= 1.0
        client.cancel(job_id)
        deadline = time.monotonic() + 60
        while not client.status(job_id)["finished"]:
            assert time.monotonic() < deadline

        client.shutdown()
    except BaseException:
        proc.kill()
        raise
    assert _finish(proc) == 0


def test_serve_preloads_edge_list_files(tmp_path):
    graph, _ = lfr_graph(
        LFRParams(n=100, average_degree=6, max_degree=20, seed=32)
    )
    path = tmp_path / "edges.txt"
    with open(path, "w") as handle:
        for u, v, _w in graph.edges():
            handle.write(f"{u} {v}\n")
    proc = _spawn(
        ["--port", "0", "--graph", f"pre={path}", "--build-index"]
    )
    try:
        url = _read_url(proc)
        client = ServiceClient(url, timeout=60.0)
        info = client.graph_info("pre")
        assert info["num_vertices"] == graph.num_vertices
        assert info["num_edges"] == graph.num_edges
        assert info["indexed"] is True
        assert client.cluster("pre", 2, 0.5, wait=60.0)["state"] == "done"
        client.shutdown()
    except BaseException:
        proc.kill()
        raise
    assert _finish(proc) == 0


def test_serve_rejects_malformed_graph_spec():
    proc = _spawn(["--port", "0", "--graph", "missing-equals-sign"])
    assert _finish(proc) == 2
    assert proc.returncode == 2
