"""Tests for GraphBuilder edge accumulation and dedup policies."""

import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder


class TestBasics:
    def test_build_empty(self):
        g = GraphBuilder(3).build()
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_add_edge_normalizes_direction(self):
        b = GraphBuilder(3)
        b.add_edge(2, 0)
        g = b.build()
        assert g.has_edge(0, 2)

    def test_ensure_vertex_grows(self):
        b = GraphBuilder(0)
        b.add_edge(3, 7)
        assert b.num_vertices == 8

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder(2).add_edge(-1, 0)

    def test_negative_size_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder(-1)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder(3).add_edge(1, 1)

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder(3).add_edge(0, 1, -2.0)

    def test_pending_edges_counter(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1)
        b.add_edge(0, 1)
        assert b.num_pending_edges == 2

    def test_has_pending_edge(self):
        b = GraphBuilder(3)
        b.add_edge(1, 2)
        assert b.has_pending_edge(2, 1)
        assert not b.has_pending_edge(0, 1)


class TestDedup:
    def _dup_builder(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1, 1.0)
        b.add_edge(1, 0, 3.0)
        b.add_edge(1, 2, 2.0)
        return b

    def test_error_mode(self):
        with pytest.raises(GraphError, match="duplicate edge"):
            self._dup_builder().build(dedup="error")

    def test_ignore_keeps_first(self):
        g = self._dup_builder().build(dedup="ignore")
        assert g.num_edges == 2
        assert g.edge_weight(0, 1) == 1.0

    def test_sum_combines(self):
        g = self._dup_builder().build(dedup="sum")
        assert g.edge_weight(0, 1) == 4.0
        assert g.edge_weight(1, 2) == 2.0

    def test_max_keeps_largest(self):
        g = self._dup_builder().build(dedup="max")
        assert g.edge_weight(0, 1) == 3.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder(2).build(dedup="average")

    def test_triple_duplicate_sum(self):
        b = GraphBuilder(2)
        for w in (1.0, 2.0, 4.0):
            b.add_edge(0, 1, w)
        assert b.build(dedup="sum").edge_weight(0, 1) == 7.0


class TestRoundTrip:
    def test_csr_layout_consistent(self):
        b = GraphBuilder(4)
        edges = [(0, 3, 1.0), (0, 1, 2.0), (2, 1, 3.0)]
        for u, v, w in edges:
            b.add_edge(u, v, w)
        g = b.build()
        assert g.num_edges == 3
        for u, v, w in edges:
            assert g.edge_weight(u, v) == w
            assert g.edge_weight(v, u) == w
