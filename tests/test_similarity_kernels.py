"""Property tests: the batched σ kernels agree with the scalar oracle.

The batched CSR kernels (:mod:`repro.similarity.kernels`) reformulate
the per-pair sorted-merge intersection as whole-array segment sums; this
battery pins them to the scalar reference to 1e-12 over random weighted
graphs — including isolated vertices, degree-1 rows, every similarity
kind, open and closed neighborhoods, and non-default self-weights — and
checks that the batch entry points charge the counters exactly like the
per-pair paths they replace.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.graph.builder import GraphBuilder
from repro.similarity import kernels
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle

KINDS = ("cosine", "jaccard", "dice", "overlap")

# Random weighted graphs on 12 vertices: some vertices stay isolated,
# some rows have degree 1, weights are non-trivial.
weighted_edges = st.lists(
    st.tuples(
        st.integers(0, 11),
        st.integers(0, 11),
        st.floats(0.25, 4.0, allow_nan=False, allow_infinity=False),
    ).filter(lambda e: e[0] != e[1]),
    min_size=0,
    max_size=30,
)


def build_graph(edges):
    builder = GraphBuilder(12)
    seen = set()
    for u, v, w in edges:
        if (min(u, v), max(u, v)) in seen:
            continue
        seen.add((min(u, v), max(u, v)))
        builder.add_edge(u, v, weight=round(w, 3))
    return builder.build()


def all_pairs(n):
    ps, qs = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return ps.ravel().astype(np.int64), qs.ravel().astype(np.int64)


@settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    edges=weighted_edges,
    kind=st.sampled_from(KINDS),
    closed=st.booleans(),
    self_weight=st.sampled_from([1.0, 0.7]),
)
def test_sigma_batch_equals_scalar(edges, kind, closed, self_weight):
    graph = build_graph(edges)
    config = SimilarityConfig(
        kind=kind, closed=closed, self_weight=self_weight, pruning=False
    )
    oracle = SimilarityOracle(graph, config)
    ps, qs = all_pairs(graph.num_vertices)
    batched = oracle.sigma_pairs_unrecorded(ps, qs)
    for p, q, value in zip(ps, qs, batched):
        expected = oracle.sigma_unrecorded(int(p), int(q))
        assert value == pytest.approx(expected, abs=1e-12), (
            kind, closed, self_weight, int(p), int(q),
        )


@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(edges=weighted_edges, epsilon=st.sampled_from([0.2, 0.5, 0.8]))
def test_batched_neighborhood_equals_scalar_loop(edges, epsilon):
    graph = build_graph(edges)
    config = SimilarityConfig(pruning=False)
    oracle = SimilarityOracle(graph, config)
    for p in range(graph.num_vertices):
        expected = [
            int(q)
            for q in graph.neighbors(p)
            if oracle.sigma_unrecorded(p, int(q)) >= epsilon
        ]
        got = oracle.eps_neighborhood(p, epsilon)
        assert got.tolist() == expected


@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(edges=weighted_edges, epsilon=st.sampled_from([0.3, 0.6]))
def test_pruned_neighborhood_equals_batched(edges, epsilon):
    graph = build_graph(edges)
    oracle = SimilarityOracle(graph, SimilarityConfig())
    for p in range(graph.num_vertices):
        full = oracle.eps_neighborhood(p, epsilon)
        pruned = oracle.eps_neighborhood_pruned(p, epsilon)
        assert pruned.tolist() == full.tolist()


class TestCounterParity:
    """Batched paths charge exactly what the per-pair accounting would."""

    @pytest.fixture()
    def graph(self):
        builder = GraphBuilder(8)
        for u, v in [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5),
        ]:
            builder.add_edge(u, v)
        return builder.build()

    def test_eps_neighborhood_cost_is_merge_work(self, graph):
        oracle = SimilarityOracle(graph, SimilarityConfig(pruning=False))
        p = 0
        oracle.eps_neighborhood(p, 0.5)
        degrees = np.diff(graph.indptr)
        expected_work = float(
            sum(degrees[p] + degrees[q] for q in graph.neighbors(p))
        )
        assert oracle.counters.neighborhood_queries == 1
        assert oracle.counters.sigma_evaluations == graph.degree(p)
        assert oracle.counters.work_units == pytest.approx(expected_work)

    def test_isolated_vertex_query_is_free_but_counted(self, graph):
        oracle = SimilarityOracle(graph, SimilarityConfig(pruning=False))
        hood = oracle.eps_neighborhood(6, 0.5)  # vertex 6 is isolated
        assert hood.shape == (0,)
        assert hood.dtype == np.int64
        assert oracle.counters.neighborhood_queries == 1
        assert oracle.counters.sigma_evaluations == 0
        assert oracle.counters.work_units == 0.0

    def test_pruned_neighborhood_counts_queries(self, graph):
        """Regression: the pruned query used to skip the query counter."""
        oracle = SimilarityOracle(graph, SimilarityConfig())
        oracle.eps_neighborhood_pruned(0, 0.5)
        oracle.eps_neighborhood_pruned(3, 0.5)
        assert oracle.counters.neighborhood_queries == 2

    def test_pruned_neighborhood_charges_no_more_than_full(self, graph):
        pruned = SimilarityOracle(graph, SimilarityConfig())
        full = SimilarityOracle(graph, SimilarityConfig(pruning=False))
        for p in range(graph.num_vertices):
            pruned.eps_neighborhood_pruned(p, 0.7)
            full.eps_neighborhood(p, 0.7)
        assert pruned.counters.work_units <= full.counters.work_units
        assert (
            pruned.counters.neighborhood_queries
            == full.counters.neighborhood_queries
        )

    def test_sigma_batch_records_per_pair_costs(self, graph):
        batched = SimilarityOracle(graph, SimilarityConfig(pruning=False))
        scalar = SimilarityOracle(graph, SimilarityConfig(pruning=False))
        qs = graph.neighbors(0)
        batched.sigma_batch(0, qs)
        for q in qs:
            scalar.sigma(0, int(q))
        assert (
            batched.counters.sigma_evaluations
            == scalar.counters.sigma_evaluations
        )
        assert batched.counters.work_units == pytest.approx(
            scalar.counters.work_units
        )

    def test_sigma_batch_empty_is_free(self, graph):
        oracle = SimilarityOracle(graph, SimilarityConfig(pruning=False))
        out = oracle.sigma_batch(0, np.zeros(0, dtype=np.int64))
        assert out.shape == (0,)
        assert oracle.counters.sigma_evaluations == 0

    def test_similar_batch_matches_scalar_decisions(self, graph):
        batched = SimilarityOracle(graph, SimilarityConfig())
        scalar = SimilarityOracle(graph, SimilarityConfig())
        qs = graph.neighbors(3)
        decisions = batched.similar_batch(3, qs, 0.6)
        expected = [scalar.similar(3, int(q), 0.6) for q in qs]
        assert decisions.tolist() == expected
        assert (
            batched.counters.pruned_lemma5 == scalar.counters.pruned_lemma5
        )


class TestKernelEdgeCases:
    def test_bad_accumulate_raises(self):
        builder = GraphBuilder(3)
        builder.add_edge(0, 1)
        graph = builder.build()
        keys = kernels.directed_edge_keys(graph.indptr, graph.indices)
        with pytest.raises(ConfigError):
            kernels.pair_overlaps(
                graph.indptr,
                graph.indices,
                graph.weights,
                keys,
                np.array([0]),
                np.array([1]),
                accumulate="bogus",
                closed=True,
                self_weight=1.0,
            )

    def test_empty_graph(self):
        graph = GraphBuilder(4).build()
        oracle = SimilarityOracle(graph, SimilarityConfig(pruning=False))
        ps, qs = all_pairs(4)
        values = oracle.sigma_pairs_unrecorded(ps, qs)
        # Closed mode: σ(p, p) is 1 from the self term alone; every
        # distinct pair shares nothing.
        expected = np.where(ps == qs, 1.0, 0.0)
        np.testing.assert_array_equal(values, expected)

    def test_sigma_all_edges_respects_block_budget(self):
        builder = GraphBuilder(20)
        rng = np.random.default_rng(0)
        seen = set()
        for _ in range(60):
            u, v = rng.integers(0, 20, 2)
            if u == v or (min(u, v), max(u, v)) in seen:
                continue
            seen.add((min(u, v), max(u, v)))
            builder.add_edge(int(u), int(v))
        graph = builder.build()
        oracle = SimilarityOracle(graph, SimilarityConfig(pruning=False))
        reference = kernels.sigma_all_edges(
            graph.indptr, graph.indices, graph.weights,
            kind="cosine", closed=True, self_weight=1.0,
            lengths=oracle.lengths, linear_sums=oracle.linear_sums,
        )
        tiny_blocks = kernels.sigma_all_edges(
            graph.indptr, graph.indices, graph.weights,
            kind="cosine", closed=True, self_weight=1.0,
            lengths=oracle.lengths, linear_sums=oracle.linear_sums,
            block_budget=4,
        )
        np.testing.assert_array_equal(reference, tiny_blocks)
