"""Service-level coverage for seeded local clustering (DESIGN.md §12).

Three layers:

* :meth:`ResultCache.migrate_local` in isolation — re-keying entries
  whose read set is disjoint from an update, evicting touched entries,
  evicting everything on renumbering, and leaving global entries to
  ``invalidate_fingerprint``;
* the live HTTP endpoint — responses match the sequential ``scan``
  baseline, the seed-aware cache answers repeats, metrics round-trip
  without double-counting (σ evaluations stay **zero** on the index
  tier), and ``update-edges`` migrates exactly the untouched entries;
* the multi-process fleet — workers answer local queries byte-identical
  to a single-process server, and ``/fleet/metrics`` merges the local
  counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.scan import scan
from repro.graph.builder import GraphBuilder
from repro.graph.generators.lfr import LFRParams, lfr_graph
from repro.parallel.processes import shared_memory_available
from repro.result import VertexRole
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.fleet import ServiceSupervisor
from repro.service.server import ClusteringServer, ClusteringService
from repro.service.store import (
    CachedLocalResult,
    CachedResult,
    ResultCache,
    make_cache_key,
    make_local_cache_key,
)
from repro.similarity.weighted import SimilarityConfig

pytestmark = pytest.mark.timeout(180)

_WAIT = 60.0


# ----------------------------------------------------------------------
# ResultCache.migrate_local
# ----------------------------------------------------------------------
def _local_entry(touched):
    return CachedLocalResult(
        payload={"members": sorted(touched)},
        touched=frozenset(touched),
        sigma_evaluations=0,
        compute_seconds=0.01,
    )


class TestMigrateLocal:
    def _cache(self):
        cache = ResultCache(capacity=16)
        config = SimilarityConfig()
        self.far = make_local_cache_key("fp-old", config, 3, 0.5, 50)
        self.near = make_local_cache_key("fp-old", config, 3, 0.5, 0)
        self.globl = make_cache_key("fp-old", config, 3, 0.5)
        cache.put(self.far, _local_entry({50, 51, 52}))
        cache.put(self.near, _local_entry({0, 1, 2}))
        cache.put(
            self.globl,
            CachedResult(
                labels=np.zeros(4, dtype=np.int64),
                num_clusters=1,
                sigma_evaluations=5,
                compute_seconds=0.01,
            ),
        )
        return cache, config

    def test_disjoint_entry_moves_touched_entry_evicts(self):
        cache, config = self._cache()
        outcome = cache.migrate_local("fp-old", "fp-new", [1, 2, 3])
        assert outcome == {"moved": 1, "evicted": 1}
        # The far entry answers under the new fingerprint, same payload.
        new_key = make_local_cache_key("fp-new", config, 3, 0.5, 50)
        assert cache.get(new_key).payload == {"members": [50, 51, 52]}
        assert cache.get(self.near) is None
        # The global entry is not migrate_local's business.
        assert cache.get(self.globl) is not None
        assert cache.invalidate_fingerprint("fp-old") == 1

    def test_renumbering_evicts_everything_local(self):
        cache, _ = self._cache()
        outcome = cache.migrate_local(
            "fp-old", "fp-new", [], renumbered=True
        )
        assert outcome == {"moved": 0, "evicted": 2}

    def test_other_fingerprints_untouched(self):
        cache, config = self._cache()
        other = make_local_cache_key("fp-other", config, 3, 0.5, 9)
        cache.put(other, _local_entry({9}))
        cache.migrate_local("fp-old", "fp-new", [0])
        assert cache.get(other) is not None

    def test_evictions_count_as_invalidations(self):
        cache, _ = self._cache()
        before = cache.stats()["invalidations"]
        cache.migrate_local("fp-old", "fp-new", [0, 51])
        assert cache.stats()["invalidations"] == before + 2


# ----------------------------------------------------------------------
# the live HTTP endpoint
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    with ClusteringServer(workers=2, slice_iterations=2) as live:
        yield live


@pytest.fixture()
def client(server):
    return ServiceClient(server.url, timeout=_WAIT)


def _lfr(n, seed):
    graph, _ = lfr_graph(
        LFRParams(n=n, average_degree=8, max_degree=30, seed=seed)
    )
    return graph


def _two_components(extra=0):
    """Two near-cliques with no path between them; edge (0, 1) absent
    so an update can later touch only the first component.  ``extra``
    pads isolated vertices so each test's graph gets its own
    fingerprint — the result cache is shared by content, not by name."""
    builder = GraphBuilder(12 + extra)
    for base in (0, 6):
        for i in range(6):
            for j in range(i + 1, 6):
                if (base + i, base + j) == (0, 1):
                    continue
                builder.add_edge(base + i, base + j)
    return builder.build()


def test_endpoint_matches_scan_and_caches(client, server):
    graph = _lfr(120, seed=41)
    client.load_graph("loc", graph=graph, build_cluster_index=True)
    reference = scan(graph, 3, 0.5, seed=0)
    seed = int(np.flatnonzero(reference.labels >= 0)[0])
    body = client.local_cluster("loc", seed, 3, 0.5)
    want = np.flatnonzero(reference.labels == reference.labels[seed])
    assert body["members"] == [int(v) for v in want]
    assert body["seed_role"] == VertexRole(
        int(reference.roles[seed])
    ).name.lower()
    assert body["cached"] is False
    assert body["stats"]["tier"] == "cluster-index"
    assert body["stats"]["sigma_evaluations"] == 0

    again = client.local_cluster("loc", seed, 3, 0.5)
    assert again["cached"] is True
    assert again["members"] == body["members"]

    # boundary=false is served from the same cache line, stripped.
    lean = client.local_cluster("loc", seed, 3, 0.5, boundary=False)
    assert lean["cached"] is True and "boundary" not in lean
    assert body["boundary"]  # the full response carried it

    snapshot = client.metrics()
    counters = snapshot["counters"]
    assert counters["local_queries"] >= 3
    assert counters["local_cache_hits"] >= 2
    assert counters["local_cache_misses"] >= 1
    assert counters["local_tier_cluster_index"] >= 1
    # Satellite-2 contract: the index fast path round-trips /metrics
    # with zero σ evaluations — and no double-count from the shared
    # index counters.
    assert counters.get("local_sigma_evaluations", 0) == 0
    assert counters["local_touched_edges"] >= 1
    assert snapshot["latency"]["local_cluster"]["count"] >= 3


def test_hub_seed_payload(client):
    graph = _two_components(extra=1)
    client.load_graph("roles", graph=graph)
    body = client.local_cluster("roles", 0, 3, 0.5)
    # Vertex 0 misses the (0,1) edge but still qualifies as a member;
    # just assert the payload is structurally coherent.
    assert body["cluster_size"] == len(body["members"])
    assert set(body["core_members"]) <= set(body["members"])
    for vertex in body["boundary"]:
        assert int(vertex) not in body["members"]


def test_update_edges_migrates_disjoint_local_entries(client):
    graph = _two_components()
    client.load_graph("mig", graph=graph)
    near = client.local_cluster("mig", 2, 3, 0.5)
    far = client.local_cluster("mig", 8, 3, 0.5)
    assert near["cached"] is False and far["cached"] is False

    # Insert the missing (0, 1) edge: affected ⊆ the first component.
    outcome = client.update_edges("mig", insert=[[0, 1]])
    assert outcome["inserted"] == 1
    assert set(outcome["affected_vertices"]) <= set(range(6))
    assert outcome["local_results_migrated"] == 1
    assert outcome["local_results_evicted"] == 1

    # The far entry survived re-keyed; the near one recomputes.
    assert client.local_cluster("mig", 8, 3, 0.5)["cached"] is True
    fresh = client.local_cluster("mig", 2, 3, 0.5)
    assert fresh["cached"] is False
    updated = client.graph_info("mig")
    assert updated["updates_applied"] == 1
    # Post-update answers match a fresh scan of the mutated graph.
    mutated = GraphBuilder(12)
    for base in (0, 6):
        for i in range(6):
            for j in range(i + 1, 6):
                mutated.add_edge(base + i, base + j)
    reference = scan(mutated.build(), 3, 0.5, seed=0)
    want = np.flatnonzero(reference.labels == reference.labels[2])
    assert fresh["members"] == [int(v) for v in want]


def test_vertex_growth_renumbers_and_evicts_all_local(client):
    graph = _two_components(extra=2)
    client.load_graph("grow", graph=graph)
    client.local_cluster("grow", 8, 3, 0.5)
    outcome = client.update_edges(
        "grow", insert=[[graph.num_vertices, 0]], add_vertices=1
    )
    assert outcome["local_results_migrated"] == 0
    assert outcome["local_results_evicted"] == 1
    assert client.local_cluster("grow", 8, 3, 0.5)["cached"] is False


def test_endpoint_validation_errors(client):
    graph = _two_components(extra=3)
    client.load_graph("val", graph=graph)
    with pytest.raises(ServiceClientError) as err:
        client.local_cluster("val", 99, 3, 0.5)
    assert err.value.status == 400
    with pytest.raises(ServiceClientError) as err:
        client.local_cluster("nosuch", 0, 3, 0.5)
    assert err.value.status == 400  # unknown graph, like /cluster


# ----------------------------------------------------------------------
# the fleet
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not shared_memory_available(),
    reason="POSIX shared memory unavailable",
)
def test_fleet_local_queries_match_single_process():
    graph = _lfr(100, seed=43)
    reference = scan(graph, 3, 0.5, seed=0)
    seeds = [0, int(np.flatnonzero(reference.labels >= 0)[0]), 7]
    hood = set(int(v) for v in graph.neighbors(0))
    absent = next(
        v for v in range(1, graph.num_vertices) if v not in hood
    )

    def _stream(url):
        bodies = []
        client = ServiceClient(url, timeout=_WAIT)
        client.load_graph("fleet-loc", graph=graph, build_cluster_index=True)
        for seed in seeds:
            body = client.local_cluster("fleet-loc", seed, 3, 0.5)
            bodies.append(
                {
                    "members": body["members"],
                    "seed_role": body["seed_role"],
                    "boundary": body["boundary"],
                    "cluster_rank": body["cluster_rank"],
                }
            )
        update = client.update_edges("fleet-loc", insert=[[0, absent]])
        bodies.append(
            {
                "migrated": update["local_results_migrated"]
                + update["local_results_evicted"],
            }
        )
        after = client.local_cluster("fleet-loc", seeds[1], 3, 0.5)
        bodies.append(
            {"members": after["members"], "seed_role": after["seed_role"]}
        )
        client.close()
        return bodies

    with ClusteringServer(workers=2, slice_iterations=2) as single:
        expected = _stream(single.url)
    service = ClusteringService(workers=2, slice_iterations=2)
    supervisor = ServiceSupervisor(
        service,
        processes=2,
        worker_options={"workers": 2, "slice_iterations": 2},
    )
    supervisor.start().wait_ready()
    try:
        got = _stream(supervisor.url)
        with ServiceClient(supervisor.url, timeout=_WAIT) as probe:
            merged = probe.fleet_metrics()
        assert merged["counters"]["local_queries"] >= 4
    finally:
        supervisor.close()
    assert got == expected
