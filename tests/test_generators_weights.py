"""Tests for the edge-weighting schemes."""

import numpy as np
import pytest

from repro.errors import GeneratorError
from repro.graph.generators.weights import (
    assign_community_weights,
    assign_random_weights,
    assign_triadic_weights,
)


class TestRandomWeights:
    def test_weights_in_range(self, karate):
        g = assign_random_weights(karate, low=0.5, high=1.5, seed=1)
        assert g.is_weighted
        assert g.weights.min() >= 0.5
        assert g.weights.max() <= 1.5

    def test_topology_unchanged(self, karate):
        g = assign_random_weights(karate, seed=1)
        assert np.array_equal(g.indices, karate.indices)
        assert np.array_equal(g.indptr, karate.indptr)

    def test_symmetric_weights(self, karate):
        g = assign_random_weights(karate, seed=2)
        for u, v, w in g.edges():
            assert g.edge_weight(v, u) == pytest.approx(w)

    def test_deterministic(self, karate):
        a = assign_random_weights(karate, seed=3)
        b = assign_random_weights(karate, seed=3)
        assert a == b

    def test_invalid_range(self, karate):
        with pytest.raises(GeneratorError):
            assign_random_weights(karate, low=2.0, high=1.0)


class TestCommunityWeights:
    def test_intra_heavier_than_inter(self, two_triangles_bridge):
        member = [0, 0, 0, 0, 1, 1, 1]
        g = assign_community_weights(
            two_triangles_bridge, member, intra=1.0, inter=0.2, jitter=0.0
        )
        assert g.edge_weight(0, 1) == pytest.approx(1.0)
        assert g.edge_weight(3, 4) == pytest.approx(0.2)

    def test_jitter_stays_positive(self, karate):
        member = [v % 3 for v in range(34)]
        g = assign_community_weights(karate, member, jitter=0.5, seed=4)
        assert g.weights.min() > 0

    def test_membership_length_checked(self, karate):
        with pytest.raises(GeneratorError):
            assign_community_weights(karate, [0, 1])

    def test_invalid_base_weights(self, karate):
        with pytest.raises(GeneratorError):
            assign_community_weights(karate, [0] * 34, intra=0.0)


class TestTriadicWeights:
    def test_triangle_edges_heavier(self, two_triangles_bridge):
        g = assign_triadic_weights(
            two_triangles_bridge, base=0.5, per_triangle=0.25
        )
        # Edge (0,1) closes one triangle; bridge (3,4) closes none.
        assert g.edge_weight(0, 1) == pytest.approx(0.75)
        assert g.edge_weight(3, 4) == pytest.approx(0.5)

    def test_cap_applies(self, karate):
        g = assign_triadic_weights(karate, base=1.0, per_triangle=5.0, cap=2.0)
        assert g.weights.max() <= 2.0

    def test_deterministic(self, karate):
        assert assign_triadic_weights(karate) == assign_triadic_weights(karate)

    def test_invalid_base(self, karate):
        with pytest.raises(GeneratorError):
            assign_triadic_weights(karate, base=0.0)
