"""Tests for super-nodes and the membership index."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.structures.supernode import SuperNodeIndex


class TestConstruction:
    def test_add_includes_representative(self):
        index = SuperNodeIndex(10)
        node = index.add(3, [1, 5, 7])
        assert 3 in node
        assert 1 in node
        assert len(node) == 4

    def test_members_sorted_unique(self):
        index = SuperNodeIndex(10)
        node = index.add(2, [5, 1, 5, 2])
        assert list(node.members) == [1, 2, 5]

    def test_out_of_range_member_rejected(self):
        index = SuperNodeIndex(4)
        with pytest.raises(ReproError):
            index.add(0, [7])

    def test_sequential_ids(self):
        index = SuperNodeIndex(10)
        a = index.add(0, [1])
        b = index.add(2, [3])
        assert (a.sid, b.sid) == (0, 1)
        assert len(index) == 2

    def test_iteration(self):
        index = SuperNodeIndex(5)
        index.add(0, [1])
        index.add(2, [3])
        assert [node.sid for node in index] == [0, 1]


class TestMembership:
    def test_supernodes_of(self):
        index = SuperNodeIndex(10)
        index.add(0, [1, 2])
        index.add(3, [2, 4])
        assert index.supernodes_of(2) == [0, 1]
        assert index.supernodes_of(4) == [1]
        assert index.supernodes_of(9) == []

    def test_membership_count(self):
        index = SuperNodeIndex(10)
        index.add(0, [1, 2])
        index.add(3, [2])
        assert index.membership_count(2) == 2
        assert index.membership_count(0) == 1
        assert index.membership_count(9) == 0

    def test_covered(self):
        index = SuperNodeIndex(5)
        index.add(0, [1])
        assert index.covered(0)
        assert index.covered(1)
        assert not index.covered(4)


class TestClusters:
    def test_initially_separate(self):
        index = SuperNodeIndex(10)
        index.add(0, [1])
        index.add(2, [3])
        assert index.cluster_of_vertex(0) != index.cluster_of_vertex(2)

    def test_merge_unifies(self):
        index = SuperNodeIndex(10)
        index.add(0, [1])
        index.add(2, [3])
        assert index.merge(0, 1)
        assert index.cluster_of_vertex(0) == index.cluster_of_vertex(3)

    def test_cluster_of_uncovered_is_minus_one(self):
        index = SuperNodeIndex(5)
        assert index.cluster_of_vertex(4) == -1

    def test_all_same_cluster(self):
        index = SuperNodeIndex(10)
        index.add(0, [1, 5])
        index.add(2, [5, 3])
        assert not index.all_same_cluster(5)
        index.merge(0, 1)
        assert index.all_same_cluster(5)

    def test_all_same_cluster_single_membership(self):
        index = SuperNodeIndex(10)
        index.add(0, [1])
        assert index.all_same_cluster(1)
        assert index.all_same_cluster(9)  # no memberships at all

    def test_vertex_labels(self):
        index = SuperNodeIndex(6)
        index.add(0, [1])
        index.add(2, [3])
        labels = index.vertex_labels()
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert labels[4] == -1

    def test_vertex_labels_after_merge(self):
        index = SuperNodeIndex(6)
        index.add(0, [1])
        index.add(2, [3])
        index.merge(0, 1)
        labels = index.vertex_labels()
        assert labels[0] == labels[3]

    def test_representative_cluster_roots(self):
        index = SuperNodeIndex(8)
        index.add(0, [1])
        index.add(2, [3])
        index.add(4, [5])
        index.merge(0, 1)
        roots = index.representative_cluster_roots()
        assert len(roots) == 2

    def test_union_counters_visible(self):
        index = SuperNodeIndex(6)
        index.add(0, [1])
        index.add(2, [3])
        index.merge(0, 1)
        assert index.labels.union_calls == 1
        assert index.labels.effective_unions == 1
