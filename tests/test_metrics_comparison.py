"""Tests for the SCAN-equivalence checker."""

import numpy as np
import pytest

from repro.baselines import scan
from repro.metrics.comparison import (
    equivalent_clusterings,
    explain_difference,
    true_core_mask,
)
from repro.result import Clustering, OUTLIER
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle


@pytest.fixture()
def setup(lfr_small):
    oracle = SimilarityOracle(lfr_small, SimilarityConfig())
    reference = scan(lfr_small, 4, 0.5, seed=1)
    return lfr_small, oracle, reference


class TestTrueCoreMask:
    def test_matches_scan_roles(self, setup):
        graph, oracle, reference = setup
        mask = true_core_mask(graph, oracle, 4, 0.5)
        scan_cores = set(int(v) for v in reference.cores())
        assert scan_cores == set(int(v) for v in np.flatnonzero(mask))

    def test_does_not_touch_counters(self, setup):
        graph, oracle, _ = setup
        before = oracle.counters.sigma_evaluations
        true_core_mask(graph, oracle, 4, 0.5)
        assert oracle.counters.sigma_evaluations == before


class TestEquivalence:
    def test_self_equivalent(self, setup):
        graph, oracle, reference = setup
        assert equivalent_clusterings(
            graph, oracle, reference, reference, 4, 0.5
        )

    def test_different_seeds_equivalent(self, setup):
        graph, oracle, reference = setup
        other = scan(graph, 4, 0.5, seed=99)
        assert equivalent_clusterings(graph, oracle, reference, other, 4, 0.5)

    def test_detects_missing_member(self, setup):
        graph, oracle, reference = setup
        labels = reference.labels.copy()
        member = int(reference.clustered_vertices[0])
        labels[member] = OUTLIER
        broken = Clustering(labels=labels)
        problems = explain_difference(
            graph, oracle, reference, broken, 4, 0.5
        )
        assert any("member sets" in p for p in problems)

    def test_detects_split_cluster(self, caveman):
        # The caveman graph guarantees clusters with many cores.
        oracle = SimilarityOracle(caveman, SimilarityConfig())
        reference = scan(caveman, 4, 0.5, seed=1)
        labels = reference.labels.copy()
        cores = reference.cores()
        target = int(labels[cores[0]])
        half = [int(v) for v in cores if int(labels[v]) == target][:2]
        assert len(half) >= 2
        labels[half[0]] = labels.max() + 1
        broken = Clustering(labels=labels)
        problems = explain_difference(
            caveman, oracle, reference, broken, 4, 0.5
        )
        assert problems  # member sets unchanged but core partition differs

    def test_detects_invalid_border(self, setup):
        graph, oracle, reference = setup
        labels = reference.labels.copy()
        clusters = list(np.unique(labels[labels >= 0]))
        if len(clusters) < 2:
            pytest.skip("need two clusters")
        mask = true_core_mask(graph, oracle, 4, 0.5)
        borders = [
            int(v)
            for v in reference.clustered_vertices
            if not mask[int(v)]
        ]
        if not borders:
            pytest.skip("need a border vertex")
        v = borders[0]
        other = [c for c in clusters if c != labels[v]][0]
        labels[v] = other  # reattach border to a cluster it can't belong to
        broken = Clustering(labels=labels)
        problems = explain_difference(
            graph, oracle, reference, broken, 4, 0.5
        )
        assert any("invalid border" in p or "core partitions" in p
                   for p in problems)
