"""Tests for the Clustering result type."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.result import HUB, OUTLIER, Clustering, VertexRole


def make(labels, roles=None):
    return Clustering(labels=np.asarray(labels), roles=roles)


class TestBasics:
    def test_num_clusters(self):
        c = make([0, 0, 1, HUB, OUTLIER])
        assert c.num_clusters == 2
        assert c.num_vertices == 5

    def test_empty(self):
        c = make([])
        assert c.num_clusters == 0

    def test_all_noise(self):
        c = make([OUTLIER, OUTLIER])
        assert c.num_clusters == 0
        assert list(c.outliers) == [0, 1]

    def test_members_and_sets(self):
        c = make([0, 1, 0, HUB])
        assert list(c.members_of(0)) == [0, 2]
        assert c.membership_sets() == [frozenset({0, 2}), frozenset({1})]

    def test_hubs_outliers_unclustered(self):
        c = make([0, HUB, OUTLIER])
        assert list(c.hubs) == [1]
        assert list(c.outliers) == [2]
        assert list(c.unclustered) == [1, 2]

    def test_clusters_mapping(self):
        c = make([5, 5, 9])
        clusters = c.clusters()
        assert set(clusters) == {5, 9}
        assert list(clusters[5]) == [0, 1]


class TestRoles:
    def test_roles_parallel_check(self):
        with pytest.raises(ReproError):
            make([0, 1], roles=np.array([0], dtype=np.int8))

    def test_cores_borders(self):
        roles = np.array(
            [int(VertexRole.CORE), int(VertexRole.BORDER), int(VertexRole.HUB)],
            dtype=np.int8,
        )
        c = make([0, 0, HUB], roles=roles)
        assert list(c.cores()) == [0]
        assert list(c.borders()) == [1]

    def test_roles_required(self):
        c = make([0, 0])
        with pytest.raises(ReproError):
            c.cores()


class TestCanonicalization:
    def test_canonical_relabels_by_first_member(self):
        c = make([7, 7, 3, 3]).canonical()
        assert list(c.labels) == [0, 0, 1, 1]

    def test_canonical_keeps_negatives(self):
        c = make([9, HUB, OUTLIER]).canonical()
        assert list(c.labels) == [0, HUB, OUTLIER]

    def test_same_partition_ignores_label_values(self):
        a = make([7, 7, 3, OUTLIER])
        b = make([1, 1, 0, HUB])  # hub/outlier pooled
        assert a.same_partition(b)

    def test_same_partition_detects_difference(self):
        a = make([0, 0, 1])
        b = make([0, 1, 1])
        assert not a.same_partition(b)

    def test_same_partition_length_mismatch(self):
        assert not make([0]).same_partition(make([0, 1]))


class TestConstruction:
    def test_from_membership(self):
        c = Clustering.from_membership(5, [[0, 1], [3]])
        assert c.labels[0] == 0
        assert c.labels[3] == 1
        assert c.labels[4] == OUTLIER

    def test_summary_text(self):
        text = make([0, 0, HUB, OUTLIER]).summary()
        assert "1 clusters" in text
        assert "1 hubs" in text
