"""Tests for BFS / components / k-hop utilities."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import Graph
from repro.graph.traversal import (
    bfs_distances,
    bfs_order,
    connected_components,
    k_hop_neighbors,
    largest_component,
)


@pytest.fixture(scope="module")
def two_components():
    return Graph.from_edges(7, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)])


class TestBFS:
    def test_order_starts_at_source(self, karate):
        order = bfs_order(karate, 5)
        assert order[0] == 5

    def test_order_visits_component_once(self, two_components):
        order = bfs_order(two_components, 0)
        assert sorted(order.tolist()) == [0, 1, 2]

    def test_distances_on_path(self, path_graph):
        dist = bfs_distances(path_graph, 0)
        assert dist.tolist() == [0, 1, 2, 3, 4]

    def test_unreachable_is_minus_one(self, two_components):
        dist = bfs_distances(two_components, 0)
        assert dist[3] == -1
        assert dist[6] == -1

    def test_source_out_of_range(self, triangle):
        with pytest.raises(GraphError):
            bfs_order(triangle, 9)
        with pytest.raises(GraphError):
            bfs_distances(triangle, -1)


class TestComponents:
    def test_counts(self, two_components):
        comp = connected_components(two_components)
        assert len(set(comp.tolist())) == 3  # {0,1,2}, {3,4,5}, {6}

    def test_members_share_id(self, two_components):
        comp = connected_components(two_components)
        assert comp[0] == comp[1] == comp[2]
        assert comp[3] == comp[4] == comp[5]
        assert comp[0] != comp[3]

    def test_connected_graph(self, karate):
        comp = connected_components(karate)
        assert len(set(comp.tolist())) == 1

    def test_largest_component(self, two_components):
        largest = largest_component(two_components)
        assert sorted(largest.tolist()) == [0, 1, 2]

    def test_largest_component_empty(self):
        assert largest_component(Graph.from_edges(0, [])).shape[0] == 0


class TestKHop:
    def test_zero_hop_is_source(self, karate):
        assert k_hop_neighbors(karate, 7, 0).tolist() == [7]

    def test_one_hop_is_neighbors(self, karate):
        one = set(k_hop_neighbors(karate, 0, 1).tolist())
        assert one == set(int(v) for v in karate.neighbors(0))

    def test_two_hop_excludes_neighbors(self, path_graph):
        assert k_hop_neighbors(path_graph, 0, 2).tolist() == [2]

    def test_negative_k_rejected(self, triangle):
        with pytest.raises(GraphError):
            k_hop_neighbors(triangle, 0, -1)

    def test_hops_partition_component(self, karate):
        seen = set()
        k = 0
        while True:
            layer = k_hop_neighbors(karate, 0, k)
            if layer.shape[0] == 0:
                break
            assert not (seen & set(layer.tolist()))
            seen |= set(layer.tolist())
            k += 1
        assert len(seen) == karate.num_vertices
