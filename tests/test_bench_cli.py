"""Tests for the ``python -m repro.bench`` command line."""

from repro.bench.__main__ import main


class TestListing:
    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "tab1" in out
        assert "ext_dynamic" in out

    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        assert "available experiments" in capsys.readouterr().out


class TestRunning:
    def test_single_experiment_quick(self, capsys):
        assert main(["tab1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "GR01" in out
        assert "finished in" in out

    def test_quick_flag_uses_tiny(self, capsys):
        assert main(["fig12", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Union operations" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_scale_option_accepted(self, capsys):
        assert main(["tab2", "--quick", "--scale", "tiny"]) == 0
        assert "LFR01" in capsys.readouterr().out
