"""Tests for the ``python -m repro.bench`` command line."""

from repro.bench.__main__ import main


class TestListing:
    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "tab1" in out
        assert "ext_dynamic" in out

    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        assert "available experiments" in capsys.readouterr().out


class TestRunning:
    def test_single_experiment_quick(self, capsys):
        assert main(["tab1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "GR01" in out
        assert "finished in" in out

    def test_quick_flag_uses_tiny(self, capsys):
        assert main(["fig12", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Union operations" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_scale_option_accepted(self, capsys):
        assert main(["tab2", "--quick", "--scale", "tiny"]) == 0
        assert "LFR01" in capsys.readouterr().out


class TestChartRows:
    """_chart_for must reject ragged tables instead of misaligning cells."""

    @staticmethod
    def _speedup_table(rows):
        from repro.bench.harness import ExperimentResult

        result = ExperimentResult(
            exp_id="fig13",
            title="speedups",
            headers=["dataset", "t=1", "t=2", "t=4"],
        )
        for row in rows:
            result.rows.append(tuple(row))
        return result

    def test_well_formed_rows_chart(self):
        from repro.bench.__main__ import _chart_for

        chart = _chart_for(self._speedup_table([("GR01", 1.0, 1.9, 3.4)]))
        assert chart is not None
        assert "t=1" in chart and "GR01" in chart

    def test_short_row_raises_bench_error(self):
        import pytest

        from repro.bench.__main__ import _chart_for
        from repro.errors import BenchError

        table = self._speedup_table([("GR01", 1.0, 1.9)])
        with pytest.raises(BenchError, match="row 1 has 3 cell"):
            _chart_for(table)

    def test_long_row_raises_bench_error(self):
        import pytest

        from repro.bench.__main__ import _chart_for
        from repro.errors import BenchError

        table = self._speedup_table(
            [("GR01", 1.0, 1.9, 3.4), ("GR02", 1.0, 1.8, 3.1, 9.9)]
        )
        with pytest.raises(BenchError, match="row 2 has 5 cell"):
            _chart_for(table)

    def test_bench_error_is_experiment_error(self):
        from repro.errors import BenchError, ExperimentError

        assert issubclass(BenchError, ExperimentError)
