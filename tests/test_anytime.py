"""Tests for the anytime runner and traces."""

import numpy as np
import pytest

from repro.anytime import AnytimeRunner, AnytimeTrace, TracePoint
from repro.baselines import scan
from repro.core import AnySCAN, AnyScanConfig
from repro.metrics import nmi


def make_algo(graph, *, mu=4, eps=0.5, alpha=24, beta=24):
    return AnySCAN(
        graph,
        AnyScanConfig(
            mu=mu, epsilon=eps, alpha=alpha, beta=beta, record_costs=False
        ),
    )


class TestStepping:
    def test_step_advances(self, lfr_small):
        runner = AnytimeRunner(make_algo(lfr_small))
        snap = runner.step()
        assert snap is not None
        assert snap.iteration == 0
        assert runner.last_snapshot is snap

    def test_step_after_finish_returns_none(self, triangle):
        runner = AnytimeRunner(make_algo(triangle, mu=2))
        runner.finish()
        assert runner.step() is None

    def test_finish_reaches_final(self, lfr_small):
        runner = AnytimeRunner(make_algo(lfr_small))
        snap = runner.finish()
        assert snap.final
        assert runner.finished


class TestBudgets:
    def test_max_iterations(self, lfr_small):
        runner = AnytimeRunner(make_algo(lfr_small, alpha=8, beta=8))
        snap = runner.run_until(max_iterations=3)
        assert snap is not None
        assert snap.iteration == 2
        assert not runner.finished

    def test_max_work_units(self, lfr_small):
        runner = AnytimeRunner(make_algo(lfr_small, alpha=8, beta=8))
        snap = runner.run_until(max_work_units=500.0)
        assert snap.work_units >= 500.0 or runner.finished

    def test_stop_when_predicate(self, lfr_small):
        runner = AnytimeRunner(make_algo(lfr_small, alpha=8))
        snap = runner.run_until(stop_when=lambda s: s.num_clusters >= 1)
        assert snap.num_clusters >= 1 or runner.finished

    def test_resume_after_budget(self, lfr_small):
        algo = make_algo(lfr_small, alpha=8, beta=8)
        runner = AnytimeRunner(algo)
        runner.run_until(max_iterations=2)
        final = runner.finish()
        assert final.final
        assert algo.finished

    def test_budget_checked_after_iteration(self, triangle):
        # Even a zero budget performs at least one iteration (the paper's
        # suspension granularity is the block).
        runner = AnytimeRunner(make_algo(triangle, mu=2))
        snap = runner.run_until(max_work_units=0.0)
        assert snap is not None


class TestTraces:
    def test_trace_reaches_one(self, lfr_small):
        reference = scan(lfr_small, 4, 0.5, seed=1)
        runner = AnytimeRunner(make_algo(lfr_small))
        trace = runner.trace_against(reference.labels)
        assert len(trace) > 1
        assert trace.final_quality == pytest.approx(1.0)

    def test_trace_quality_trends_upward(self, lfr_medium):
        reference = scan(lfr_medium, 4, 0.5, seed=1)
        runner = AnytimeRunner(make_algo(lfr_medium, alpha=64, beta=64))
        trace = runner.trace_against(reference.labels)
        assert trace.is_monotone(tolerance=0.25)
        assert trace.final_quality == pytest.approx(1.0)

    def test_first_reaching(self, lfr_small):
        reference = scan(lfr_small, 4, 0.5, seed=1)
        trace = AnytimeRunner(make_algo(lfr_small)).trace_against(
            reference.labels
        )
        point = trace.first_reaching(0.5)
        assert point is not None
        assert point.quality >= 0.5
        assert trace.first_reaching(1.1) is None

    def test_quality_at_work_budget(self, lfr_small):
        reference = scan(lfr_small, 4, 0.5, seed=1)
        trace = AnytimeRunner(make_algo(lfr_small)).trace_against(
            reference.labels
        )
        assert trace.quality_at_work(0.0) == 0.0
        assert trace.quality_at_work(np.inf) == pytest.approx(
            max(p.quality for p in trace)
        )

    def test_score_every_skips_points(self, lfr_small):
        reference = scan(lfr_small, 4, 0.5, seed=1)
        dense = AnytimeRunner(
            make_algo(lfr_small, alpha=8, beta=8)
        ).trace_against(reference.labels)
        sparse = AnytimeRunner(
            make_algo(lfr_small, alpha=8, beta=8)
        ).trace_against(reference.labels, score_every=4)
        assert len(sparse) < len(dense)
        assert sparse.points[-1].final

    def test_custom_metric(self, lfr_small):
        reference = scan(lfr_small, 4, 0.5, seed=1)
        trace = AnytimeRunner(make_algo(lfr_small)).trace_against(
            reference.labels,
            metric=lambda ref, lab: nmi(ref, lab, noise="drop"),
        )
        assert len(trace) > 0


class TestTraceContainer:
    def test_container_protocol(self):
        trace = AnytimeTrace()
        point = TracePoint(
            iteration=0, step="summarize", wall_time=0.1,
            work_units=10.0, quality=0.5, num_clusters=2,
            assigned_fraction=0.4,
        )
        trace.append(point)
        assert len(trace) == 1
        assert trace[0] is point
        assert list(trace) == [point]
        assert trace.rows() == [(0, "summarize", 0.1, 10.0, 0.5)]

    def test_empty_trace_properties(self):
        trace = AnytimeTrace()
        assert np.isnan(trace.final_quality)
        assert trace.total_work == 0.0

    def test_monotone_detection(self):
        def point(q):
            return TracePoint(0, "s", 0.0, 0.0, q, 0, 0.0)

        up = AnytimeTrace([point(0.1), point(0.5), point(1.0)])
        down = AnytimeTrace([point(0.9), point(0.2)])
        assert up.is_monotone()
        assert not down.is_monotone(tolerance=0.05)
