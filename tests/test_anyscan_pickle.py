"""AnySCAN suspend/resume state survives pickle (the scheduler-restart
contract): a run suspended at any iteration, serialized, and revived in
a fresh interpreter-state object must finish with the exact result."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.baselines.scan import scan
from repro.core.anyscan import AnySCAN
from repro.core.config import AnyScanConfig
from repro.graph.generators.lfr import LFRParams, lfr_graph
from repro.graph.generators.random_graphs import gnm_random_graph


def _expected(graph, mu, epsilon):
    # Compare canonical forms: AnySCAN labels clusters by supernode DSU
    # roots while scan uses discovery order, so raw ids differ even for
    # identical partitions.  canonical() renumbers both by smallest
    # member vertex, making equal clusterings byte-identical.
    return scan(graph, mu, epsilon).canonical().labels


def test_advance_equals_iterations(karate):
    config = AnyScanConfig(mu=3, epsilon=0.55, alpha=8, beta=8)
    by_advance = AnySCAN(karate, config)
    snaps = []
    while True:
        snap = by_advance.advance()
        if snap is None:
            break
        snaps.append(snap)
    by_iter = AnySCAN(karate, config)
    iter_snaps = list(by_iter.iterations())
    assert len(snaps) == len(iter_snaps)
    for a, b in zip(snaps, iter_snaps):
        assert a.step == b.step
        assert np.array_equal(a.labels, b.labels)
    assert np.array_equal(by_advance.result().labels, by_iter.result().labels)


@pytest.mark.parametrize("suspend_after", [0, 1, 3, 7])
def test_pickle_roundtrip_mid_run(suspend_after):
    graph = gnm_random_graph(220, 900, seed=11)
    config = AnyScanConfig(mu=3, epsilon=0.5, alpha=24, beta=24)
    algo = AnySCAN(graph, config)
    for _ in range(suspend_after):
        if algo.advance() is None:
            break
    revived = pickle.loads(pickle.dumps(algo))
    assert revived.finished == algo.finished
    while revived.advance() is not None:
        pass
    assert np.array_equal(
        revived.result().canonical().labels, _expected(graph, 3, 0.5)
    )


def test_pickle_roundtrip_every_phase():
    """Suspend inside step 1, 2, 3 and after the final step."""
    graph, _ = lfr_graph(
        LFRParams(n=200, average_degree=8, max_degree=25, seed=5)
    )
    config = AnyScanConfig(mu=3, epsilon=0.6, alpha=16, beta=16)
    expected = _expected(graph, 3, 0.6)
    reference = AnySCAN(graph, config)
    steps = [snap.step for snap in reference.iterations()]
    seen = set()
    targets = []
    for idx, step in enumerate(steps):
        if step not in seen:
            seen.add(step)
            targets.append(idx + 1)
    for target in targets:
        algo = AnySCAN(graph, config)
        for _ in range(target):
            algo.advance()
        revived = pickle.loads(pickle.dumps(algo))
        while revived.advance() is not None:
            pass
        assert np.array_equal(revived.result().canonical().labels, expected)


def test_pickle_then_iterations_resumes():
    """The generator facade rebuilds transparently after a load."""
    graph = gnm_random_graph(150, 600, seed=3)
    config = AnyScanConfig(mu=2, epsilon=0.45, alpha=20, beta=20)
    algo = AnySCAN(graph, config)
    iterator = algo.iterations()
    next(iterator)
    next(iterator)
    revived = pickle.loads(pickle.dumps(algo))
    for _ in revived.iterations():
        pass
    assert np.array_equal(
        revived.result().canonical().labels, _expected(graph, 2, 0.45)
    )


def test_pickle_final_state():
    graph = gnm_random_graph(100, 350, seed=9)
    algo = AnySCAN(graph, AnyScanConfig(mu=2, epsilon=0.5, alpha=16, beta=16))
    expected = algo.run().labels
    revived = pickle.loads(pickle.dumps(algo))
    assert revived.finished
    assert revived.advance() is None
    assert np.array_equal(revived.result().labels, expected)
