"""Unit tests for the deterministic fault-injection framework."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.faults import (
    FAULT_PLAN_ENV,
    FaultInjected,
    FaultPlan,
    FaultRule,
    active_plan,
    arm,
    armed,
    disarm,
    fault_point,
)
from repro.faults.corruption import CORRUPTION_MODES, corrupt_file

SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with no process-wide plan armed."""
    disarm()
    yield
    disarm()


class TestFaultRule:
    def test_defaults_are_single_shot_raise(self):
        rule = FaultRule(site="a.b")
        assert rule.kind == "raise"
        assert rule.times == 1
        assert rule.probability == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"site": ""},
            {"site": "a", "kind": "explode"},
            {"site": "a", "exception": "SystemExit"},
            {"site": "a", "after": -1},
            {"site": "a", "times": 0},
            {"site": "a", "probability": 1.5},
            {"site": "a", "delay": -0.1},
        ],
    )
    def test_validation_rejects_bad_rules(self, kwargs):
        with pytest.raises(ConfigError):
            FaultRule(**kwargs)

    def test_site_matching_exact_and_glob(self):
        assert FaultRule(site="index.load").matches("index.load")
        assert not FaultRule(site="index.load").matches("index.loader")
        assert FaultRule(site="process.*").matches("process.worker.chunk")
        assert not FaultRule(site="process.*").matches("index.load")


class TestFaultPlan:
    def test_after_and_times_semantics(self):
        plan = FaultPlan([FaultRule(site="s", after=2, times=2)])
        plan.trigger("s")  # visit 1: below threshold
        plan.trigger("s")  # visit 2: below threshold
        with pytest.raises(FaultInjected):
            plan.trigger("s")
        with pytest.raises(FaultInjected):
            plan.trigger("s")
        plan.trigger("s")  # budget of 2 firings spent
        assert plan.fired_total() == 2

    def test_injected_exception_carries_site(self):
        plan = FaultPlan([FaultRule(site="index.load")])
        with pytest.raises(FaultInjected) as excinfo:
            plan.trigger("index.load")
        assert excinfo.value.site == "index.load"

    def test_registry_exception_kinds(self):
        plan = FaultPlan([FaultRule(site="s", exception="OSError")])
        with pytest.raises(OSError):
            plan.trigger("s")

    def test_delay_kind_sleeps_instead_of_raising(self):
        plan = FaultPlan([FaultRule(site="s", kind="delay", delay=0.01)])
        started = time.monotonic()
        plan.trigger("s")
        assert time.monotonic() - started >= 0.01
        assert plan.fired_total() == 1

    def test_probability_stream_is_deterministic(self):
        def decisions(plan):
            fired = []
            for _ in range(50):
                try:
                    plan.trigger("s")
                    fired.append(False)
                except FaultInjected:
                    fired.append(True)
            return fired

        rule = FaultRule(site="s", probability=0.5, times=None)
        first = decisions(FaultPlan([rule], seed=7))
        second = decisions(FaultPlan([rule], seed=7))
        assert first == second
        assert any(first) and not all(first)

    def test_json_round_trip_preserves_behavior(self):
        plan = FaultPlan(
            [FaultRule(site="s", after=1, times=2, exception="ValueError")],
            seed=3,
            name="round-trip",
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.name == "round-trip"
        assert clone.seed == 3
        clone.trigger("s")
        with pytest.raises(ValueError):
            clone.trigger("s")

    def test_from_dict_rejects_malformed_plans(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict({"no": "rules"})
        with pytest.raises(ConfigError):
            FaultPlan.from_dict({"rules": [{"site": "s", "bogus": 1}]})
        with pytest.raises(ConfigError):
            FaultPlan.from_json("{not json")

    def test_report_counts_visits_and_firings(self):
        plan = FaultPlan([FaultRule(site="s")], name="r")
        plan.trigger("other")
        with pytest.raises(FaultInjected):
            plan.trigger("s")
        report = plan.report()
        assert report["name"] == "r"
        assert report["visits"] == {"other": 1, "s": 1}
        assert report["fired"] == [{"site": "s", "kind": "raise", "count": 1}]

    def test_random_plans_are_seeded_and_exit_restricted(self):
        sites = ["a", "b", "c"]
        one = FaultPlan.random(5, sites=sites, exit_sites=["a"])
        two = FaultPlan.random(5, sites=sites, exit_sites=["a"])
        assert one.to_dict() == two.to_dict()
        for seed in range(30):
            plan = FaultPlan.random(seed, sites=sites, exit_sites=["a"])
            for rule in plan.rules:
                assert rule.site in sites
                if rule.kind == "exit":
                    assert rule.site == "a"


class TestArming:
    def test_fault_point_is_inert_without_a_plan(self):
        assert active_plan() is None
        fault_point("anything")  # no-op

    def test_arm_and_disarm(self):
        plan = arm(FaultPlan([FaultRule(site="s")]))
        assert active_plan() is plan
        with pytest.raises(FaultInjected):
            fault_point("s")
        disarm()
        fault_point("s")

    def test_armed_context_restores_previous_plan(self):
        outer = arm(FaultPlan([], name="outer"))
        with armed(FaultPlan([FaultRule(site="s")], name="inner")) as inner:
            assert active_plan() is inner
            with pytest.raises(FaultInjected):
                fault_point("s")
        assert active_plan() is outer

    def test_env_var_arms_fresh_processes(self):
        plan = FaultPlan([FaultRule(site="env.site")], name="from-env")
        code = (
            "from repro.faults import active_plan\n"
            "plan = active_plan()\n"
            "print(plan.name, len(plan.rules))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env[FAULT_PLAN_ENV] = plan.to_json()
        out = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.split() == ["from-env", "1"]


class TestCorruption:
    @pytest.mark.parametrize("mode", CORRUPTION_MODES)
    def test_each_mode_changes_the_file(self, mode, tmp_path):
        path = tmp_path / "payload.bin"
        original = bytes(range(256)) * 8
        path.write_bytes(original)
        note = corrupt_file(path, mode=mode, seed=1)
        assert str(path) in note
        assert path.read_bytes() != original

    def test_corruption_is_seeded(self, tmp_path):
        for name in ("a.bin", "b.bin"):
            (tmp_path / name).write_bytes(bytes(range(256)) * 4)
        corrupt_file(tmp_path / "a.bin", mode="flip", seed=9)
        corrupt_file(tmp_path / "b.bin", mode="flip", seed=9)
        assert (
            tmp_path / "a.bin"
        ).read_bytes() == (tmp_path / "b.bin").read_bytes()

    def test_rejects_unknown_mode_and_empty_files(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_bytes(b"data")
        with pytest.raises(ConfigError):
            corrupt_file(path, mode="shred")
        empty = tmp_path / "empty.bin"
        empty.write_bytes(b"")
        with pytest.raises(ConfigError):
            corrupt_file(empty)


def test_plan_env_round_trips_through_json(tmp_path):
    """A plan written for CI artifact upload reloads identically."""
    plan = FaultPlan.random(11, sites=["x", "y"], exit_sites=["x"])
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    clone = FaultPlan.from_dict(json.loads(path.read_text()))
    assert clone.to_dict() == plan.to_dict()
