"""The concurrency lint gate covers the new service package.

The issue's bar: ``repro.analysis`` over ``src/repro/service`` reports
zero findings, and the package earns that with **zero** suppression
pragmas outside ``server.py`` (currently zero anywhere)."""

from __future__ import annotations

import io
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

from repro.analysis.__main__ import main

REPO = Path(__file__).resolve().parents[1]
SERVICE = REPO / "src" / "repro" / "service"


def _run(*argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(list(argv))
    return code, out.getvalue() + err.getvalue()


def test_service_package_passes_the_gate():
    code, output = _run(
        str(SERVICE), "--config", str(REPO / "pyproject.toml")
    )
    assert code == 0, output


def test_service_is_configured_as_an_api_module():
    """R4 (eps/mu validation at public entry points) must apply to the
    service package, not just the original library surface."""
    from repro.analysis.config import load_config

    config = load_config(REPO / "pyproject.toml")
    assert any("service" in module for module in config.api_modules)


def test_no_suppression_pragmas_outside_server_py():
    offenders = []
    for path in sorted(SERVICE.rglob("*.py")):
        if path.name == "server.py":
            continue
        text = path.read_text()
        if "repro: allow" in text:
            offenders.append(path.name)
    assert not offenders, f"unexpected pragmas in {offenders}"
