"""Every baseline must produce SCAN's exact clustering.

The paper's comparison is only meaningful because SCAN-B, pSCAN, and
SCAN++ are exact; this module checks them against SCAN on the shared
fixtures and on randomized graphs across the parameter grid.
"""

import numpy as np
import pytest

from repro.baselines import pscan, scan, scan_b, scanpp
from repro.graph.generators.lfr import LFRParams, lfr_graph
from repro.graph.generators.random_graphs import (
    gnm_random_graph,
    relaxed_caveman_graph,
)
from repro.graph.generators.weights import assign_random_weights
from repro.metrics.comparison import explain_difference
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle

ALGORITHMS = {
    "scan_b": lambda g, mu, eps: scan_b(g, mu, eps, seed=7),
    "pscan": lambda g, mu, eps: pscan(g, mu, eps),
    "scanpp": lambda g, mu, eps: scanpp(g, mu, eps, seed=7),
}


def assert_equivalent(graph, mu, eps, name, algorithm):
    oracle = SimilarityOracle(graph, SimilarityConfig())
    reference = scan(graph, mu, eps, seed=3)
    candidate = algorithm(graph, mu, eps)
    problems = explain_difference(
        graph, oracle, reference, candidate, mu, eps
    )
    assert not problems, f"{name} on μ={mu}, ε={eps}: {problems}"


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
class TestFixtureGraphs:
    @pytest.mark.parametrize(
        "fixture", ["karate", "triangle", "two_triangles_bridge",
                    "path_graph", "star_graph", "caveman", "lfr_small"]
    )
    def test_fixture(self, request, fixture, name):
        graph = request.getfixturevalue(fixture)
        assert_equivalent(graph, 3, 0.5, name, ALGORITHMS[name])

    @pytest.mark.parametrize("mu,eps", [(2, 0.3), (5, 0.5), (3, 0.8)])
    def test_parameter_grid_on_karate(self, karate, name, mu, eps):
        assert_equivalent(karate, mu, eps, name, ALGORITHMS[name])


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
@pytest.mark.parametrize("seed", range(4))
class TestRandomized:
    def test_gnm(self, name, seed):
        graph = gnm_random_graph(120, 700, seed=seed)
        assert_equivalent(graph, 4, 0.45, name, ALGORITHMS[name])

    def test_lfr(self, name, seed):
        graph, _ = lfr_graph(
            LFRParams(
                n=250, average_degree=9, max_degree=25,
                mixing=0.3, seed=seed,
            )
        )
        assert_equivalent(graph, 3, 0.5, name, ALGORITHMS[name])

    def test_weighted(self, name, seed):
        graph = relaxed_caveman_graph(8, 7, 0.2, seed=seed)
        graph = assign_random_weights(graph, low=0.3, high=2.5, seed=seed)
        assert_equivalent(graph, 4, 0.55, name, ALGORITHMS[name])


class TestPscanStats:
    def test_stats_populated(self, karate):
        stats = {}
        pscan(karate, 3, 0.5, stats=stats)
        assert stats["edges_evaluated"] <= karate.num_edges
        assert stats["union_calls"] >= stats["effective_unions"]

    def test_each_edge_evaluated_once(self, caveman):
        oracle = SimilarityOracle(caveman, SimilarityConfig(pruning=False))
        stats = {}
        pscan(caveman, 4, 0.5, oracle=oracle, stats=stats)
        assert oracle.counters.sigma_evaluations == stats["edges_evaluated"]
        assert stats["edges_evaluated"] <= caveman.num_edges


class TestScanppStats:
    def test_stats_populated(self, karate):
        stats = {}
        scanpp(karate, 3, 0.5, stats=stats)
        assert stats["num_pivots"] >= 1
        assert stats["true_evaluations"] > 0

    def test_pivots_cover_graph(self, lfr_small):
        # Every vertex is a pivot or adjacent to one — implied by the
        # total evaluation count never exceeding one per edge.
        oracle = SimilarityOracle(lfr_small, SimilarityConfig(pruning=False))
        stats = {}
        scanpp(lfr_small, 4, 0.5, oracle=oracle, stats=stats)
        total = stats["true_evaluations"] + stats["sharing_evaluations"]
        assert total <= lfr_small.num_edges

    def test_fewer_true_than_scan(self, caveman):
        stats = {}
        scanpp(caveman, 4, 0.5, stats=stats)
        scan_evals = 2 * caveman.num_edges  # SCAN evaluates each edge twice
        assert stats["true_evaluations"] < scan_evals
