"""Tests for the anySCAN algorithm: API, anytime contract, internals."""

import numpy as np
import pytest

from repro.core import AnySCAN, AnyScanConfig
from repro.errors import ConfigError, ReproError
from repro.structures.state import VertexState

S = VertexState


def config(**overrides):
    base = dict(mu=3, epsilon=0.5, alpha=16, beta=16, record_costs=True)
    base.update(overrides)
    return AnyScanConfig(**base)


class TestConfig:
    def test_defaults_follow_paper(self):
        c = AnyScanConfig()
        assert (c.mu, c.epsilon, c.alpha, c.beta) == (5, 0.5, 8192, 8192)

    def test_invalid_mu(self):
        with pytest.raises(ConfigError):
            AnyScanConfig(mu=0).validate()

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigError):
            AnyScanConfig(epsilon=0.0).validate()

    def test_invalid_blocks(self):
        with pytest.raises(ConfigError):
            AnyScanConfig(alpha=0).validate()
        with pytest.raises(ConfigError):
            AnyScanConfig(beta=-1).validate()


class TestLifecycle:
    def test_run_returns_clustering(self, karate):
        result = AnySCAN(karate, config()).run()
        assert result.num_vertices == 34
        assert result.num_clusters >= 1

    def test_result_before_finish_raises(self, karate):
        algo = AnySCAN(karate, config())
        with pytest.raises(ReproError):
            algo.result()

    def test_finished_flag(self, karate):
        algo = AnySCAN(karate, config())
        assert not algo.finished
        algo.run()
        assert algo.finished

    def test_iterations_resumable(self, karate):
        algo = AnySCAN(karate, config(alpha=4, beta=4))
        iterator = algo.iterations()
        first = next(iterator)
        assert first.step == "summarize"
        # Suspend (do nothing), then resume through the same handle.
        rest = list(iterator)
        assert rest[-1].final
        assert algo.finished

    def test_iterations_same_handle(self, karate):
        algo = AnySCAN(karate, config())
        assert algo.iterations() is algo.iterations()

    def test_run_after_partial_iteration(self, karate):
        algo = AnySCAN(karate, config(alpha=4, beta=4))
        next(algo.iterations())
        result = algo.run()
        assert algo.finished
        assert result.num_clusters >= 1

    def test_snapshot_without_advancing(self, karate):
        algo = AnySCAN(karate, config(alpha=4))
        next(algo.iterations())
        snap1 = algo.snapshot()
        snap2 = algo.snapshot()
        assert snap1.iteration == snap2.iteration
        assert np.array_equal(snap1.labels, snap2.labels)


class TestSnapshots:
    def test_steps_in_order(self, karate):
        algo = AnySCAN(karate, config(alpha=8, beta=8))
        steps = [snap.step for snap in algo.iterations()]
        order = {"summarize": 0, "merge-strong": 1, "merge-weak": 2,
                 "borders": 3}
        ranks = [order[s] for s in steps]
        assert ranks == sorted(ranks)
        assert steps[-1] == "borders"

    def test_final_snapshot_flagged(self, karate):
        snaps = list(AnySCAN(karate, config()).iterations())
        assert snaps[-1].final
        assert all(not s.final for s in snaps[:-1])

    def test_work_units_monotone(self, lfr_small):
        algo = AnySCAN(lfr_small, config(mu=4, alpha=32, beta=32))
        works = [snap.work_units for snap in algo.iterations()]
        assert works == sorted(works)

    def test_assigned_fraction_monotone_in_step1(self, lfr_small):
        algo = AnySCAN(lfr_small, config(mu=4, alpha=32, beta=32))
        fractions = [
            snap.assigned_fraction
            for snap in algo.iterations()
            if snap.step == "summarize"
        ]
        assert all(b >= a - 1e-12 for a, b in zip(fractions, fractions[1:]))

    def test_block_size_controls_iteration_count(self, lfr_small):
        fine = AnySCAN(lfr_small, config(mu=4, alpha=16, beta=16))
        coarse = AnySCAN(lfr_small, config(mu=4, alpha=256, beta=256))
        n_fine = sum(1 for _ in fine.iterations())
        n_coarse = sum(1 for _ in coarse.iterations())
        assert n_fine > n_coarse

    def test_snapshot_clustering_roundtrip(self, karate):
        algo = AnySCAN(karate, config())
        last = None
        for snap in algo.iterations():
            last = snap
        clustering = last.clustering()
        assert clustering.num_clusters == last.num_clusters


class TestStates:
    def test_all_vertices_terminal_after_run(self, karate):
        algo = AnySCAN(karate, config())
        algo.run()
        for v in range(34):
            state = algo.states.get(v)
            assert state in (
                S.PROCESSED_CORE,
                S.PROCESSED_BORDER,
                S.PROCESSED_NOISE,
                S.UNPROCESSED_CORE,
                S.UNPROCESSED_BORDER,
            )

    def test_low_degree_marked_noise_upfront(self, star_graph):
        algo = AnySCAN(star_graph, AnyScanConfig(mu=4, epsilon=0.5))
        # Leaves have degree 1 < μ-1: unprocessed-noise before any query.
        for leaf in range(1, 7):
            assert algo.states.get(leaf) == S.UNPROCESSED_NOISE

    def test_core_states_match_roles(self, lfr_small):
        algo = AnySCAN(lfr_small, config(mu=4))
        result = algo.run()
        for v in algo.states.vertices_in(S.PROCESSED_CORE, S.UNPROCESSED_CORE):
            assert int(result.labels[int(v)]) >= 0


class TestStatistics:
    def test_statistics_keys(self, karate):
        algo = AnySCAN(karate, config())
        algo.run()
        stats = algo.statistics()
        for key in (
            "sigma_evaluations",
            "num_supernodes",
            "union_calls",
            "union_calls_by_step",
            "state_counts",
        ):
            assert key in stats

    def test_supernodes_fewer_than_vertices(self, lfr_medium):
        algo = AnySCAN(lfr_medium, config(mu=4, alpha=64, beta=64))
        algo.run()
        assert 0 < algo.statistics()["num_supernodes"] < len(lfr_medium)

    def test_cache_prevents_duplicate_evaluations(self, karate):
        algo = AnySCAN(karate, config())
        algo.run()
        # At most one evaluation per edge pair (adjacent or two-hop).
        assert len(algo._sim_cache) >= algo.statistics()["sigma_evaluations"] - \
            algo.oracle.counters.neighborhood_queries * 0
        assert algo.statistics()["sigma_evaluations"] <= karate.num_edges

    def test_cost_log_recorded(self, karate):
        algo = AnySCAN(karate, config(record_costs=True))
        algo.run()
        assert algo.cost_log
        assert any(rec.blocks for rec in algo.cost_log)

    def test_cost_log_disabled(self, karate):
        algo = AnySCAN(karate, config(record_costs=False))
        algo.run()
        assert algo.cost_log == []


class TestDeterminism:
    def test_same_seed_same_result(self, lfr_small):
        a = AnySCAN(lfr_small, config(mu=4, seed=5)).run()
        b = AnySCAN(lfr_small, config(mu=4, seed=5)).run()
        assert np.array_equal(a.labels, b.labels)

    def test_different_seed_same_partition_size(self, lfr_small):
        a = AnySCAN(lfr_small, config(mu=4, seed=1)).run()
        b = AnySCAN(lfr_small, config(mu=4, seed=2)).run()
        assert a.num_clusters == b.num_clusters
