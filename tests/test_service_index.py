"""Service integration of the clustering index (the default query path).

Pins the contracts ISSUE 7 calls out:

* index-served answers register as born-DONE jobs and populate the
  **same** ``(fingerprint, σ-config, μ, ε)`` cache keyspace as
  scheduler-run jobs — a result computed by either path is a cache hit
  for the other;
* ``update-edges`` invalidation covers index-backed entries, including
  after a **mid-batch failure** (the stale-index regression): the
  partially-applied graph must never be answered by the old index or
  the old cache;
* a failed in-place index refresh degrades to drop-and-rebuild, never
  to a stale read.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.scan import scan
from repro.errors import ReproError
from repro.faults import FaultPlan, FaultRule, armed
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.service.jobs import JobScheduler
from repro.service.server import ClusteringService


def _edges(graph):
    owners = np.repeat(
        np.arange(graph.num_vertices), np.diff(graph.indptr)
    )
    mask = owners < graph.indices
    return [
        [int(u), int(v)]
        for u, v in zip(owners[mask].tolist(), graph.indices[mask].tolist())
    ]


@pytest.fixture()
def service():
    svc = ClusteringService(workers=2)
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def graph():
    return gnm_random_graph(90, 320, seed=13)


def _load(service, graph, name="g", **kwargs):
    payload = {
        "name": name,
        "num_vertices": graph.num_vertices,
        "edges": _edges(graph),
    }
    payload.update(kwargs)
    return service.handle_load_graph(payload)


def _cluster(service, name, mu, epsilon, **kwargs):
    payload = {"graph": name, "mu": mu, "epsilon": epsilon, "wait": "30"}
    payload.update(kwargs)
    return service.handle_cluster(payload)


# ----------------------------------------------------------------------
# the shared cache keyspace
# ----------------------------------------------------------------------
def test_index_and_scheduler_paths_share_cache_keys(service, graph):
    """A result computed by the anySCAN job path is a cache hit for the
    index path and vice versa — one keyspace, not two."""
    _load(service, graph)  # no index of any kind yet
    first = _cluster(service, "g", 3, 0.5)
    assert first["state"] == "done" and not first["cached"]

    # Building the index must not fork the keyspace: the job-computed
    # entry still answers.
    service.handle_build_index({}, "g")
    hit = _cluster(service, "g", 3, 0.5)
    assert hit["cached"] is True
    assert hit["labels"] == first["labels"]

    # A *new* (ε, μ) is served by the index and fills the same cache.
    miss = _cluster(service, "g", 4, 0.6)
    assert miss["state"] == "done" and not miss["cached"]
    again = _cluster(service, "g", 4, 0.6)
    assert again["cached"] is True
    assert again["labels"] == miss["labels"]
    counters = service.metrics.snapshot()["counters"]
    assert counters["index_served_queries"] >= 1
    assert counters["cache_hits"] >= 2


def test_index_served_jobs_are_real_jobs(service, graph):
    _load(service, graph, build_cluster_index=True)
    body = _cluster(service, "g", 2, 0.45, wait="0")
    job_id = body["job_id"]
    info = service.scheduler.info(job_id)
    assert info["state"] == "done"
    snap = service.scheduler.snapshot(job_id)
    assert snap.step == "index"
    assert snap.sigma_evaluations == 0
    result = service.scheduler.result(job_id)
    reference = scan(service.store.get("g").graph, 2, 0.45, seed=0)
    np.testing.assert_array_equal(result.labels, reference.labels)


def test_index_served_labels_match_reference_and_seed(service, graph):
    _load(service, graph, build_cluster_index=True)
    for mu, epsilon, seed in ((2, 0.4, 0), (4, 0.55, 9)):
        body = _cluster(service, "g", mu, epsilon, seed=seed)
        reference = scan(
            service.store.get("g").graph, mu, epsilon, seed=seed
        )
        np.testing.assert_array_equal(
            np.asarray(body["labels"]), reference.labels
        )


def test_submit_completed_requires_valid_parameters(graph):
    from repro.result import Clustering

    labels = np.zeros(graph.num_vertices, dtype=np.int64)
    with JobScheduler(workers=1) as scheduler:
        with pytest.raises(ReproError):
            scheduler.submit_completed(
                Clustering(labels=labels), graph_name="g", mu=0, epsilon=0.5
            )
        job = scheduler.submit_completed(
            Clustering(labels=labels), graph_name="g", mu=2, epsilon=0.5
        )
        assert scheduler.info(job)["state"] == "done"
        assert scheduler.wait(job, timeout=5.0)["state"] == "done"


# ----------------------------------------------------------------------
# invalidation, including the mid-batch-failure regression
# ----------------------------------------------------------------------
def test_update_edges_invalidates_index_backed_cache_entries(
    service, graph
):
    _load(service, graph, build_cluster_index=True)
    assert _cluster(service, "g", 3, 0.5)["state"] == "done"
    assert _cluster(service, "g", 3, 0.5)["cached"] is True

    out = service.handle_update_edges(
        {"insert": [[0, graph.num_vertices - 1, 1.0]]}, "g"
    )
    assert out["cache_entries_invalidated"] >= 1
    assert out["index_rows_refreshed"] > 0

    after = _cluster(service, "g", 3, 0.5)
    assert after["cached"] is False
    reference = scan(service.store.get("g").graph, 3, 0.5, seed=0)
    np.testing.assert_array_equal(
        np.asarray(after["labels"]), reference.labels
    )


def test_no_stale_index_reads_after_mid_batch_failure(service, graph):
    """Regression: a batch that fails on its *second* op leaves the
    graph partially updated; the index and cache must follow the
    partial graph, not the pre-batch one."""
    _load(service, graph, build_cluster_index=True)
    assert _cluster(service, "g", 3, 0.5)["state"] == "done"
    assert _cluster(service, "g", 3, 0.5)["cached"] is True
    old_fingerprint = service.store.get("g").fingerprint

    # First insert applies; deleting a non-existent edge then fails.
    with pytest.raises(ReproError):
        service.handle_update_edges(
            {
                "insert": [[1, graph.num_vertices - 2, 1.0]],
                "delete": [[1, 1]],
            },
            "g",
        )
    entry = service.store.get("g")
    assert entry.fingerprint != old_fingerprint, "first op did apply"

    body = _cluster(service, "g", 3, 0.5)
    assert body["cached"] is False, "pre-batch cache entry survived"
    reference = scan(entry.graph, 3, 0.5, seed=0)
    np.testing.assert_array_equal(
        np.asarray(body["labels"]), reference.labels
    )
    # The index was patched in place (or rebuilt) for the partial graph.
    assert entry.cluster_index is not None
    assert entry.cluster_index.fingerprint == entry.fingerprint


def test_refresh_fault_degrades_to_rebuild_not_stale(service, graph):
    """An injected failure inside the refresh path drops the index; the
    next query rebuilds it lazily and still answers for the new graph."""
    _load(service, graph, build_cluster_index=True)
    assert _cluster(service, "g", 2, 0.5)["state"] == "done"

    plan = FaultPlan([FaultRule(site="store.index_refresh")])
    with armed(plan):
        out = service.handle_update_edges(
            {"insert": [[2, graph.num_vertices - 3, 1.0]]}, "g"
        )
    assert out["index_rows_refreshed"] == 0  # the patch was faulted away
    assert service.store.get("g").cluster_index is None
    # The degraded-mode decision lands on the metrics audit trail.
    assert service.metrics.events("index_refresh_failed")

    body = _cluster(service, "g", 2, 0.5)
    assert body["state"] == "done" and body["cached"] is False
    entry = service.store.get("g")
    reference = scan(entry.graph, 2, 0.5, seed=0)
    np.testing.assert_array_equal(
        np.asarray(body["labels"]), reference.labels
    )
    # auto_cluster_index entries rebuild on the next submission.
    assert entry.cluster_index is not None
    counters = service.metrics.snapshot()["counters"]
    assert counters["index_served_queries"] >= 2


def test_graph_info_reports_index_state(service, graph):
    _load(service, graph, build_cluster_index=True, mu_cap=7)
    info = service.handle_graph_info({}, "g")
    assert info["cluster_indexed"] is True
    assert info["auto_cluster_index"] is True
    assert info["mu_cap"] == 7
