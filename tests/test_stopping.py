"""Tests for the anytime stopping criteria."""

import numpy as np
import pytest

from repro.anytime import AnytimeRunner, MarginalGain, StableClusters, StepReached
from repro.anytime.stopping import all_of, any_of
from repro.core import AnySCAN, AnyScanConfig
from repro.core.snapshots import Snapshot
from repro.errors import ConfigError


def snap(step="summarize", clusters=1, work=100.0, fraction=0.5, it=0):
    # assigned_fraction is derived from the labels: fill the right share.
    labels = -np.ones(1000, dtype=np.int64)
    labels[: int(round(fraction * 1000))] = 0
    return Snapshot(
        step=step,
        iteration=it,
        labels=labels,
        num_supernodes=1,
        num_clusters=clusters,
        work_units=work,
        sigma_evaluations=0,
        union_calls=0,
        wall_time=0.0,
    )


class TestStableClusters:
    def test_fires_after_patience(self):
        crit = StableClusters(patience=2)
        assert not crit(snap(clusters=3))
        assert not crit(snap(clusters=3))
        assert crit(snap(clusters=3))

    def test_reset_on_change(self):
        crit = StableClusters(patience=2)
        crit(snap(clusters=3))
        crit(snap(clusters=3))
        assert not crit(snap(clusters=4))
        assert not crit(snap(clusters=4))
        assert crit(snap(clusters=4))

    def test_invalid_patience(self):
        with pytest.raises(ConfigError):
            StableClusters(patience=0)


class TestMarginalGain:
    def test_fires_on_plateau(self):
        crit = MarginalGain(min_gain=1e-4, warmup=1)
        assert not crit(snap(fraction=0.1, work=100))
        assert not crit(snap(fraction=0.5, work=200))   # big gain
        assert crit(snap(fraction=0.5000001, work=300))  # plateau

    def test_respects_warmup(self):
        crit = MarginalGain(min_gain=1.0, warmup=3)
        assert not crit(snap(fraction=0.1, work=100))
        assert not crit(snap(fraction=0.1, work=200))
        assert not crit(snap(fraction=0.1, work=300))
        assert crit(snap(fraction=0.1, work=400))

    def test_invalid_gain(self):
        with pytest.raises(ConfigError):
            MarginalGain(min_gain=-1.0)


class TestStepReached:
    def test_fires_on_step(self):
        crit = StepReached("merge-weak")
        assert not crit(snap(step="summarize"))
        assert not crit(snap(step="merge-strong"))
        assert crit(snap(step="merge-weak"))

    def test_fires_past_step(self):
        crit = StepReached("merge-strong")
        assert crit(snap(step="borders"))

    def test_unknown_step(self):
        with pytest.raises(ConfigError):
            StepReached("step5")


class TestCombinators:
    def test_any_of(self):
        crit = any_of(StepReached("borders"), StableClusters(patience=1))
        assert not crit(snap(step="summarize", clusters=1))
        assert crit(snap(step="summarize", clusters=1))  # stable fired

    def test_all_of(self):
        crit = all_of(StepReached("merge-weak"), StableClusters(patience=1))
        assert not crit(snap(step="merge-weak", clusters=2))
        assert crit(snap(step="merge-weak", clusters=2))

    def test_any_of_evaluates_all(self):
        # Stateful criteria must be updated even when another fires first.
        stable = StableClusters(patience=1)
        crit = any_of(StepReached("summarize"), stable)
        crit(snap(clusters=7))
        assert stable._last == 7


class TestWithRealRuns:
    def test_stop_at_merge_weak(self, lfr_small):
        algo = AnySCAN(
            lfr_small,
            AnyScanConfig(mu=4, epsilon=0.5, alpha=24, beta=24,
                          record_costs=False),
        )
        runner = AnytimeRunner(algo)
        last = runner.run_until(stop_when=StepReached("merge-weak"))
        assert last.step in ("merge-weak", "borders")
        assert not algo.finished or last.final

    def test_stable_clusters_stops_before_finish(self, lfr_medium):
        algo = AnySCAN(
            lfr_medium,
            AnyScanConfig(mu=4, epsilon=0.5, alpha=16, beta=16,
                          record_costs=False),
        )
        runner = AnytimeRunner(algo)
        runner.run_until(stop_when=StableClusters(patience=3))
        # Must be able to resume to the exact result afterwards.
        final = runner.finish()
        assert final.final
