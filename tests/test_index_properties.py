"""Property and metamorphic tests for the clustering index.

Where the differential battery compares against the sequential
reference, these tests pin *relations between the index's own answers*
that must hold regardless of the input graph:

* **parameter monotonicity** — raising ε or μ never grows the core
  set, and never grows any cluster's core set: clusters *refine* (each
  stricter-parameter cluster's cores live inside one looser-parameter
  cluster);
* **tie-order invariance** — permuting equal-σ slots inside the
  σ-sorted rows changes no query answer (the tie-break is pinned for
  determinism of the *structure*, but the *answers* cannot depend on
  it);
* **persistence transparency** — a persisted-then-loaded index answers
  every query identically to the in-memory original, including after a
  corruption → quarantine → rebuild cycle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.similarity.gsindex import ClusteringIndex

pytestmark = [pytest.mark.index_differential, pytest.mark.timeout(300)]

_EPS_LADDER = (0.2, 0.35, 0.5, 0.65, 0.8, 0.95)
_MU_LADDER = (2, 3, 4, 6, 9)


@pytest.fixture(scope="module")
def graph():
    return gnm_random_graph(110, 400, seed=9)


@pytest.fixture(scope="module")
def index(graph):
    return ClusteringIndex.build(graph, mu_cap=6)


def _core_sets_by_cluster(index, epsilon, mu):
    """{cluster id: frozenset of its core vertices} at (ε, μ)."""
    clustering = index.query(epsilon, mu)
    mask = index.core_mask(epsilon, mu)
    cores = np.flatnonzero(mask)
    out = {}
    for v in cores.tolist():
        out.setdefault(int(clustering.labels[v]), set()).add(v)
    return {cid: frozenset(vs) for cid, vs in out.items()}


# ----------------------------------------------------------------------
# monotonicity in ε and μ
# ----------------------------------------------------------------------
def test_core_set_antitone_in_epsilon(index):
    for mu in _MU_LADDER:
        previous = None
        for epsilon in _EPS_LADDER:
            mask = index.core_mask(epsilon, mu)
            if previous is not None:
                # Raising ε can only demote cores, never promote.
                assert not np.any(mask & ~previous)
            previous = mask


def test_core_set_antitone_in_mu(index):
    for epsilon in _EPS_LADDER:
        previous = None
        for mu in _MU_LADDER:
            mask = index.core_mask(epsilon, mu)
            if previous is not None:
                assert not np.any(mask & ~previous)
            previous = mask


def _assert_refines(index, loose, strict):
    """Every strict-parameter cluster's cores lie inside exactly one
    loose-parameter cluster (no cluster's core set ever grows)."""
    loose_sets = _core_sets_by_cluster(index, *loose)
    strict_sets = _core_sets_by_cluster(index, *strict)
    owner_of = {}
    for cid, members in loose_sets.items():
        for v in members:
            owner_of[v] = cid
    for members in strict_sets.values():
        owners = {owner_of[v] for v in members}
        assert len(owners) == 1, (
            f"cluster cores {sorted(members)} split across loose "
            f"clusters {owners} going {loose} -> {strict}"
        )


def test_clusters_refine_when_epsilon_rises(index):
    for mu in (2, 4):
        for lo, hi in zip(_EPS_LADDER, _EPS_LADDER[1:]):
            _assert_refines(index, (lo, mu), (hi, mu))


def test_clusters_refine_when_mu_rises(index):
    for epsilon in (0.35, 0.5):
        for lo, hi in zip(_MU_LADDER, _MU_LADDER[1:]):
            _assert_refines(index, (epsilon, lo), (epsilon, hi))


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 13), st.integers(0, 13)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=40,
    ),
    eps_pair=st.tuples(st.floats(0.05, 1.0), st.floats(0.05, 1.0)),
    mu_pair=st.tuples(st.integers(1, 6), st.integers(1, 6)),
)
def test_hypothesis_monotone_core_counts(edges, eps_pair, mu_pair):
    builder = GraphBuilder(14)
    for u, v in edges:
        builder.add_edge(u, v)
    idx = ClusteringIndex.build(builder.build(dedup="ignore"), mu_cap=4)
    eps_lo, eps_hi = sorted(eps_pair)
    mu_lo, mu_hi = sorted(mu_pair)
    loose = idx.core_mask(eps_lo, mu_lo)
    strict = idx.core_mask(eps_hi, mu_hi)
    assert not np.any(strict & ~loose)


# ----------------------------------------------------------------------
# tie-order invariance
# ----------------------------------------------------------------------
def _reverse_tied_runs(index) -> bool:
    """Reverse every equal-σ run inside every σ-sorted row, in place.

    σ values are untouched; only the (deliberately pinned) neighbor
    tie-break is scrambled.  Returns whether anything changed.
    """
    graph = index.graph
    sigmas = index._sorted_sigmas
    neighbors = index._sorted_neighbors
    changed = False
    for v in range(graph.num_vertices):
        lo, hi = int(graph.indptr[v]), int(graph.indptr[v + 1])
        i = lo
        while i < hi:
            j = i + 1
            while j < hi and sigmas[j] == sigmas[i]:
                j += 1
            if j - i > 1:
                neighbors[i:j] = neighbors[i:j][::-1]
                changed = True
            i = j
    return changed


def test_tie_order_is_observably_irrelevant(graph):
    """Unweighted graphs are full of σ ties; reversing every tied run
    must change no core set, neighborhood, or clustering."""
    pristine = ClusteringIndex.build(graph, mu_cap=6)
    scrambled = ClusteringIndex.build(graph, mu_cap=6)
    assert _reverse_tied_runs(scrambled), "graph produced no σ ties"
    for epsilon, mu in ((0.3, 2), (0.5, 3), (0.65, 4), (0.8, 7)):
        np.testing.assert_array_equal(
            pristine.core_mask(epsilon, mu),
            scrambled.core_mask(epsilon, mu),
        )
        np.testing.assert_array_equal(
            pristine.query(epsilon, mu, seed=5).labels,
            scrambled.query(epsilon, mu, seed=5).labels,
        )
    for v in (0, 17, 80):
        np.testing.assert_array_equal(
            pristine.eps_neighborhood(v, 0.5),
            scrambled.eps_neighborhood(v, 0.5),
        )


# ----------------------------------------------------------------------
# persistence transparency
# ----------------------------------------------------------------------
def test_loaded_index_answers_identically(tmp_path, graph, index):
    path = tmp_path / "g.gsindex.npz"
    index.save(path)
    loaded = ClusteringIndex.load(path, graph)
    for epsilon, mu in ((0.25, 2), (0.5, 4), (0.7, 6), (0.5, 9)):
        np.testing.assert_array_equal(
            index.query(epsilon, mu, seed=2).labels,
            loaded.query(epsilon, mu, seed=2).labels,
        )
        assert loaded.last_query["sigma_evaluations"] == 0


def test_corrupt_quarantine_rebuild_answers_identically(
    tmp_path, graph, index
):
    """Flip bytes in the archive: the load must fail closed, quarantine
    the damage, and the rebuilt index must answer exactly as before."""
    path = tmp_path / "g.gsindex.npz"
    index.save(path)
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    blob[len(blob) // 3] ^= 0xFF
    path.write_bytes(bytes(blob))
    rebuilt, recovered = ClusteringIndex.load_or_rebuild(
        path, graph, mu_cap=6
    )
    assert recovered
    assert (tmp_path / "g.gsindex.npz.quarantined").exists()
    for epsilon, mu in ((0.3, 2), (0.55, 4)):
        np.testing.assert_array_equal(
            index.query(epsilon, mu, seed=1).labels,
            rebuilt.query(epsilon, mu, seed=1).labels,
        )
