"""Unit tests for the durability plane (DESIGN.md §13).

Covers the WAL frame format and its repair/rollback paths, group
commit, compaction, checkpoint round-trips and fallback, recovery
dedupe, the σ-seeded mirror rebuild, and the client-side circuit
breaker — everything below the process-kill chaos battery in
``tests/test_chaos_recovery.py``.
"""

from __future__ import annotations

import os
import socket
import threading

import numpy as np
import pytest

from repro.dynamic.graph import AdjacencyGraph
from repro.dynamic.scan import DynamicSCAN
from repro.errors import ConfigError
from repro.faults import FaultPlan, FaultRule, armed
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.durability import (
    DurabilityError,
    DurabilityManager,
    WriteAheadLog,
    list_checkpoints,
    similarity_from_wire,
    similarity_to_wire,
)
from repro.service.metrics import ServiceMetrics
from repro.service.store import GraphStore
from repro.similarity.index import EdgeSimilarityIndex, graph_fingerprint
from repro.similarity.weighted import SimilarityConfig

pytestmark = pytest.mark.timeout(120)


def _records(wal, after=0):
    return list(wal.records(after=after))


class TestWriteAheadLog:
    def test_round_trip_preserves_order_and_sequence(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        try:
            for i in range(5):
                seq = wal.append({"op": "noop", "i": i})
                assert seq == i + 1
            got = _records(wal)
        finally:
            wal.close()
        assert [seq for seq, _ in got] == [1, 2, 3, 4, 5]
        assert [rec["i"] for _, rec in got] == list(range(5))

    def test_reopen_resumes_the_sequence(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append({"op": "noop", "i": 0})
        wal.close()
        wal = WriteAheadLog(path)
        try:
            assert wal.last_seq == 1
            assert wal.append({"op": "noop", "i": 1}) == 2
        finally:
            wal.close()

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        for i in range(3):
            wal.append({"op": "noop", "i": i})
        wal.close()
        intact = path.read_bytes()
        # A crash mid-append leaves a partial frame at the tail.
        path.write_bytes(intact + b"\x07garbage-that-is-not-a-frame")
        metrics = ServiceMetrics()
        wal = WriteAheadLog(path, metrics=metrics)
        try:
            assert wal.last_seq == 3
            assert len(_records(wal)) == 3
            assert metrics.events("wal_tail_truncated")
        finally:
            wal.close()
        assert path.read_bytes() == intact

    def test_corrupt_interior_frame_drops_the_suffix(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append({"op": "noop", "i": 0})
        wal.close()
        first_end = len(path.read_bytes())
        wal = WriteAheadLog(path)
        wal.append({"op": "noop", "i": 1})
        wal.append({"op": "noop", "i": 2})
        wal.close()
        blob = bytearray(path.read_bytes())
        blob[first_end + 4] ^= 0xFF  # flip a byte inside frame 2
        path.write_bytes(bytes(blob))
        wal = WriteAheadLog(path)
        try:
            # Frames from the corruption on are gone; frame 1 survives.
            assert [seq for seq, _ in _records(wal)] == [1]
            assert wal.last_seq == 1
        finally:
            wal.close()

    def test_not_a_wal_file_is_refused(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"definitely not a wal\n")
        with pytest.raises(DurabilityError):
            WriteAheadLog(path)

    def test_failed_fsync_rolls_back_the_record(self, tmp_path):
        path = tmp_path / "wal.log"
        metrics = ServiceMetrics()
        wal = WriteAheadLog(path, metrics=metrics)
        try:
            wal.append({"op": "noop", "i": 0})
            plan = FaultPlan(
                [FaultRule(site="wal.fsync", exception="OSError")]
            )
            with armed(plan):
                with pytest.raises(OSError):
                    wal.append({"op": "noop", "i": 1})
            # The unsynced record was truncated away, not left behind.
            assert wal.last_seq == 1
            assert [rec["i"] for _, rec in _records(wal)] == [0]
            assert metrics.events("wal_rolled_back")
            # The log is still healthy for the next append.
            assert wal.append({"op": "noop", "i": 2}) == 2
        finally:
            wal.close()

    def test_group_commit_from_concurrent_appenders(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        errors = []

        def run(worker):
            try:
                for i in range(8):
                    wal.append({"op": "noop", "worker": worker, "i": i})
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(w,)) for w in range(4)
        ]
        try:
            for thread in threads:
                thread.start()
        finally:
            for thread in threads:
                thread.join()
        try:
            assert errors == []
            got = _records(wal)
            assert [seq for seq, _ in got] == list(range(1, 33))
            assert wal.synced_seq == 32
        finally:
            wal.close()

    def test_compaction_preserves_sequence_numbers(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        try:
            for i in range(10):
                wal.append({"op": "noop", "i": i})
            assert wal.compact(6) == 6
            assert [seq for seq, _ in _records(wal)] == [7, 8, 9, 10]
            # Appends after compaction continue the original numbering.
            assert wal.append({"op": "noop", "i": 10}) == 11
        finally:
            wal.close()
        wal = WriteAheadLog(path)
        try:
            assert [seq for seq, _ in _records(wal)] == [7, 8, 9, 10, 11]
        finally:
            wal.close()

    def test_oversized_record_is_refused(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        try:
            with pytest.raises(DurabilityError):
                wal.append({"blob": "x" * (65 * 1024 * 1024)})
            assert wal.last_seq == 0
        finally:
            wal.close()


class TestSimilarityWire:
    def test_round_trip_is_exact(self):
        config = SimilarityConfig()
        assert similarity_from_wire(similarity_to_wire(config)) == config

    def test_missing_field_is_refused(self):
        wire = similarity_to_wire(SimilarityConfig())
        wire.pop("kind")
        with pytest.raises(DurabilityError):
            similarity_from_wire(wire)


def _seed_store(manager, *, n=60, m=150, seed=7):
    """Recover an empty store, attach the journal, add one graph."""
    state = manager.recover()
    store = state.store
    store.attach_journal(manager)
    graph = gnm_random_graph(n, m, seed=seed)
    store.add(
        "g",
        graph,
        similarity=SimilarityConfig(),
        build_index=True,
        mu_cap=4,
    )
    return store


def _snapshot(store, manager, update_keys=()):
    entries, wal_seq = store.checkpoint_snapshot()
    return {
        "entries": entries,
        "wal_seq": wal_seq,
        "job_blobs": (),
        "update_keys": list(update_keys),
    }


def _free_pair(store, name, rng):
    """A vertex pair not currently an edge of ``store``'s graph."""
    graph = store.get(name).graph
    n = graph.num_vertices
    while True:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        start, end = graph.indptr[u], graph.indptr[u + 1]
        if v not in graph.indices[start:end]:
            return u, v


class TestDurabilityManager:
    def test_recovery_replays_the_wal_tail(self, tmp_path):
        manager = DurabilityManager(tmp_path, checkpoint_every=1000)
        store = _seed_store(manager)
        rng = np.random.default_rng(3)
        for i in range(5):
            u, v = _free_pair(store, "g", rng)
            store.update_edges("g", insert=[[u, v, 1.0]], idempotency_key=f"k{i}")
        fingerprint = store.get("g").fingerprint
        manager.close()

        again = DurabilityManager(tmp_path)
        try:
            state = again.recover()
            assert state.checkpoint_seq == 0
            assert state.replayed_records == 6  # add_graph + 5 updates
            assert state.failed_records == 0
            assert state.update_keys == [("g", f"k{i}") for i in range(5)]
            assert state.store.get("g").fingerprint == fingerprint
        finally:
            again.close()

    def test_checkpoint_bounds_replay_and_compacts(self, tmp_path):
        metrics = ServiceMetrics()
        manager = DurabilityManager(
            tmp_path, checkpoint_every=1000, metrics=metrics
        )
        store = _seed_store(manager)
        rng = np.random.default_rng(4)
        for _ in range(3):
            u, v = _free_pair(store, "g", rng)
            store.update_edges("g", insert=[[u, v, 1.0]])
        assert manager.checkpoint(_snapshot(store, manager)) is not None
        u, v = _free_pair(store, "g", rng)
        store.update_edges("g", insert=[[u, v, 1.0]])  # after the checkpoint
        fingerprint = store.get("g").fingerprint
        manager.close()

        assert list_checkpoints(tmp_path)
        again = DurabilityManager(tmp_path)
        try:
            state = again.recover()
            assert state.checkpoint_seq == 4
            assert state.replayed_records == 1  # only the tail
            assert state.store.get("g").fingerprint == fingerprint
        finally:
            again.close()

    def test_damaged_checkpoint_falls_back(self, tmp_path):
        metrics = ServiceMetrics()
        manager = DurabilityManager(
            tmp_path, checkpoint_every=1000, metrics=metrics
        )
        store = _seed_store(manager)
        rng = np.random.default_rng(5)
        u, v = _free_pair(store, "g", rng)
        store.update_edges("g", insert=[[u, v, 1.0]])
        assert manager.checkpoint(_snapshot(store, manager)) is not None
        fingerprint = store.get("g").fingerprint
        manager.close()

        # Rot the newest checkpoint's manifest.
        (seq, path), = list_checkpoints(tmp_path)[:1]
        manifest = os.path.join(path, "manifest.json")
        with open(manifest, "r+b") as handle:
            handle.seek(10)
            handle.write(b"\x00\x00\x00")
        recovery_metrics = ServiceMetrics()
        again = DurabilityManager(tmp_path, metrics=recovery_metrics)
        try:
            state = again.recover()
            # Fallback: pure WAL replay still rebuilds the exact store.
            # (Compaction may have trimmed the prefix only if an older
            # checkpoint retains it; with keep=2 and one checkpoint the
            # full log is still there.)
            assert state.store.get("g").fingerprint == fingerprint
            assert recovery_metrics.events("recovery_checkpoint_skipped")
        finally:
            again.close()

    def test_replay_dedupes_checkpointed_idempotency_keys(self, tmp_path):
        manager = DurabilityManager(tmp_path, checkpoint_every=1000)
        store = _seed_store(manager)
        rng = np.random.default_rng(6)
        u, v = _free_pair(store, "g", rng)
        store.update_edges("g", insert=[[u, v, 1.0]], idempotency_key="once")
        fingerprint = store.get("g").fingerprint
        # Checkpoint *includes* the applied key but reflects an *older*
        # WAL position, so the update record is replayed — and must be
        # recognized as already applied.
        entries, _ = store.checkpoint_snapshot()
        snapshot = {
            "entries": entries,
            "wal_seq": 1,  # pretend only add_graph was covered
            "job_blobs": (),
            "update_keys": [("g", "once")],
        }
        manager.checkpoint(snapshot)
        manager.close()

        metrics = ServiceMetrics()
        again = DurabilityManager(tmp_path, metrics=metrics)
        try:
            state = again.recover()
            assert state.deduped_records == 1
            assert state.store.get("g").fingerprint == fingerprint
            assert metrics.events("recovery_replay_deduped")
        finally:
            again.close()

    def test_note_applied_checkpoints_at_cadence(self, tmp_path):
        manager = DurabilityManager(tmp_path, checkpoint_every=3)
        store = _seed_store(manager)
        rng = np.random.default_rng(7)
        wrote = []
        for _ in range(6):
            u, v = _free_pair(store, "g", rng)
            store.update_edges("g", insert=[[u, v, 1.0]])
            wrote.append(
                manager.note_applied(lambda: _snapshot(store, manager))
            )
        manager.close()
        assert wrote.count(True) == 2
        assert len(list_checkpoints(tmp_path)) == 2

    def test_failed_checkpoint_degrades_to_wal_only(self, tmp_path):
        metrics = ServiceMetrics()
        manager = DurabilityManager(
            tmp_path, checkpoint_every=1000, metrics=metrics
        )
        store = _seed_store(manager)
        rng = np.random.default_rng(8)
        u, v = _free_pair(store, "g", rng)
        store.update_edges("g", insert=[[u, v, 1.0]])
        plan = FaultPlan([FaultRule(site="checkpoint.write")])
        with armed(plan):
            assert manager.checkpoint(_snapshot(store, manager)) is None
        assert metrics.events("checkpoint_failed")
        assert list_checkpoints(tmp_path) == []
        fingerprint = store.get("g").fingerprint
        manager.close()
        again = DurabilityManager(tmp_path)
        try:
            assert again.recover().store.get("g").fingerprint == fingerprint
        finally:
            again.close()

    def test_log_mutation_without_recover_is_refused(self, tmp_path):
        manager = DurabilityManager(tmp_path)
        with pytest.raises(DurabilityError):
            manager.log_mutation({"op": "noop"})

    def test_invalid_cadence_is_refused(self, tmp_path):
        with pytest.raises(ConfigError):
            DurabilityManager(tmp_path, checkpoint_every=0)
        with pytest.raises(ConfigError):
            DurabilityManager(tmp_path, keep_checkpoints=0)


class TestSigmaSeededMirror:
    """Satellite: the DynamicSCAN mirror reuses the σ-cache across
    rebuilds instead of recomputing every edge."""

    def test_seeded_mirror_skips_all_recomputation(self):
        graph = gnm_random_graph(80, 240, seed=11)
        config = SimilarityConfig()
        fresh = DynamicSCAN(
            AdjacencyGraph.from_csr(graph), mu=2, epsilon=0.5,
            similarity=config,
        )
        reference = fresh.clustering(seed=0)
        assert fresh.sigma_recomputations > 0

        index = EdgeSimilarityIndex.build(graph, config)
        us, vs, sigmas = index.forward_edges()
        seed = {
            (int(u), int(v)): float(s)
            for u, v, s in zip(us.tolist(), vs.tolist(), sigmas.tolist())
        }
        seeded = DynamicSCAN(
            AdjacencyGraph.from_csr(graph), mu=2, epsilon=0.5,
            similarity=config, seed_sigmas=seed,
        )
        clustering = seeded.clustering(seed=0)
        assert seeded.sigma_recomputations == 0
        np.testing.assert_array_equal(
            clustering.canonical().labels, reference.canonical().labels
        )
        assert seeded.verify_cache()

    def test_partial_seed_is_refused(self):
        graph = gnm_random_graph(30, 60, seed=12)
        config = SimilarityConfig()
        index = EdgeSimilarityIndex.build(graph, config)
        us, vs, sigmas = index.forward_edges()
        seed = {
            (int(u), int(v)): float(s)
            for u, v, s in zip(us.tolist(), vs.tolist(), sigmas.tolist())
        }
        seed.popitem()
        with pytest.raises(ConfigError):
            DynamicSCAN(
                AdjacencyGraph.from_csr(graph), mu=2, epsilon=0.5,
                similarity=config, seed_sigmas=seed,
            )

    def test_store_mirror_is_seeded_from_the_index(self):
        """An indexed entry's first update seeds the mirror from the
        index (witnessed) and stays differentially identical to an
        unindexed store applying the same batch."""
        graph = gnm_random_graph(80, 240, seed=13)
        metrics = ServiceMetrics()
        seeded_store = GraphStore(metrics=metrics)
        seeded_store.add(
            "g", graph, similarity=SimilarityConfig(), build_index=True
        )
        plain_store = GraphStore()
        plain_store.add("g", graph, similarity=SimilarityConfig())

        rng = np.random.default_rng(14)
        u, v = _free_pair(seeded_store, "g", rng)
        seeded_stats = seeded_store.update_edges("g", insert=[[u, v, 1.0]])
        plain_stats = plain_store.update_edges("g", insert=[[u, v, 1.0]])

        events = metrics.events("mirror_sigma_seeded")
        assert events and events[-1]["rows"] == graph.num_edges
        assert seeded_stats.new_fingerprint == plain_stats.new_fingerprint
        # The seeded mirror only ever recomputed the rows the insert
        # touched; the unindexed one paid a full σ pass at construction
        # (UpdateStats counts post-construction work only, so compare
        # the mirrors' lifetime counters).
        seeded_total = seeded_store.get("g").dynamic.sigma_recomputations
        plain_total = plain_store.get("g").dynamic.sigma_recomputations
        assert seeded_total == seeded_stats.sigma_recomputations
        assert seeded_total < plain_total
        assert seeded_store.get("g").dynamic.verify_cache()


class TestClientCircuitBreaker:
    """Satellite: the client fails fast on a dead endpoint."""

    def _dead_port(self):
        probe = socket.socket()
        try:
            probe.bind(("127.0.0.1", 0))
            return probe.getsockname()[1]
        finally:
            probe.close()

    def test_breaker_opens_after_consecutive_transport_failures(self):
        client = ServiceClient(
            f"http://127.0.0.1:{self._dead_port()}",
            timeout=0.5,
            max_retries=0,
            breaker_threshold=2,
            breaker_cooldown=30.0,
        )
        try:
            for _ in range(2):
                with pytest.raises(ServiceClientError) as info:
                    client.health()
                assert info.value.status == 0
            assert client.breaker_open
            # Open breaker: fail-fast, no connect attempt, retry hint.
            with pytest.raises(ServiceClientError) as info:
                client.health()
            assert "circuit breaker open" in str(info.value)
            assert info.value.retry_after is not None
        finally:
            client.close()

    def test_disabled_breaker_never_opens(self):
        client = ServiceClient(
            f"http://127.0.0.1:{self._dead_port()}",
            timeout=0.5,
            max_retries=0,
            breaker_threshold=0,
        )
        try:
            for _ in range(4):
                with pytest.raises(ServiceClientError) as info:
                    client.health()
                assert "circuit breaker" not in str(info.value)
            assert not client.breaker_open
        finally:
            client.close()

    def test_bad_breaker_config_is_refused(self):
        with pytest.raises(ConfigError):
            ServiceClient(
                "http://127.0.0.1:1", breaker_threshold=-1
            )
        with pytest.raises(ConfigError):
            ServiceClient(
                "http://127.0.0.1:1", breaker_cooldown=0.0
            )
