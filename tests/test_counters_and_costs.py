"""Tests for the instrumentation plumbing: counters and cost records."""

import pytest

from repro.parallel.costs import IterationCosts, ParallelBlock
from repro.similarity.counters import SimilarityCounters


class TestSimilarityCounters:
    def test_record_sigma(self):
        c = SimilarityCounters()
        c.record_sigma(10.0)
        c.record_sigma(5.0, early_exit=True)
        assert c.sigma_evaluations == 2
        assert c.early_exits == 1
        assert c.work_units == 15.0

    def test_record_prune_costs_one(self):
        c = SimilarityCounters()
        c.record_prune()
        assert c.pruned_lemma5 == 1
        assert c.work_units == 1.0

    def test_neighborhood_query_counts(self):
        c = SimilarityCounters()
        c.record_neighborhood_query(42.0, evaluations=7)
        assert c.neighborhood_queries == 1
        assert c.sigma_evaluations == 7
        assert c.work_units == 42.0

    def test_reset(self):
        c = SimilarityCounters()
        c.record_sigma(3.0)
        c.mark("x")
        c.reset()
        assert c.sigma_evaluations == 0
        assert c.work_units == 0.0
        # Marks are cleared too: since() falls back to a full snapshot.
        c.record_sigma(2.0)
        assert c.since("x").sigma_evaluations == 1

    def test_mark_and_since(self):
        c = SimilarityCounters()
        c.record_sigma(5.0)
        c.mark("step1")
        c.record_sigma(7.0)
        c.record_prune()
        delta = c.since("step1")
        assert delta.sigma_evaluations == 1
        assert delta.pruned_lemma5 == 1
        assert delta.work_units == pytest.approx(8.0)

    def test_since_unknown_mark(self):
        c = SimilarityCounters()
        c.record_sigma(4.0)
        snap = c.since("never-marked")
        assert snap.sigma_evaluations == 1

    def test_snapshot_is_independent(self):
        c = SimilarityCounters()
        c.record_sigma(1.0)
        snap = c.snapshot()
        c.record_sigma(1.0)
        assert snap.sigma_evaluations == 1
        assert c.sigma_evaluations == 2


class TestParallelBlock:
    def test_add_task_and_total(self):
        block = ParallelBlock(name="b")
        block.add_task(2.0)
        block.add_task(3.0)
        assert block.total_work == pytest.approx(5.0)
        assert block.task_costs == [2.0, 3.0]

    def test_defaults(self):
        block = ParallelBlock(name="b")
        assert block.atomic_ops == 0
        assert block.critical_costs == []
        assert block.total_work == 0.0


class TestIterationCosts:
    def test_new_block_appends(self):
        record = IterationCosts(step="s", index=0)
        a = record.new_block("first")
        b = record.new_block("second")
        assert [blk.name for blk in record.blocks] == ["first", "second"]
        assert a is not b

    def test_totals(self):
        record = IterationCosts(step="s", index=0)
        block = record.new_block("b")
        block.add_task(4.0)
        block.atomic_ops = 3
        block.critical_costs.append(1.0)
        record.sequential_cost = 2.0
        assert record.total_work == pytest.approx(6.0)
        assert record.total_atomic_ops == 3
        assert record.total_critical_sections == 1

    def test_empty_iteration(self):
        record = IterationCosts(step="s", index=1)
        assert record.total_work == 0.0
        assert record.total_atomic_ops == 0
        assert record.total_critical_sections == 0
