"""The chaos battery: randomized fault plans against the hardened stack.

Run with ``pytest -m chaos``.  Each battery arms a seeded random
:class:`~repro.faults.FaultPlan` and asserts the invariant the hardened
layers guarantee by construction: injected faults *raise*, *kill
workers*, or *delay* — they never corrupt data — so

* any run that reports success is **byte-identical** to the sequential
  ``scan`` reference;
* any run that fails does so with a structured exception (never a hang);
* no run leaks a ``repro_*`` shared-memory segment or leaves a corrupt
  index file under its real name.

Seeds come from ``REPRO_CHAOS_SEEDS`` (comma-separated) so CI can shard
the battery across a seed matrix; every plan is dumped as JSON into
``REPRO_CHAOS_DIR`` (when set) so a failing run ships the exact plan
that broke it.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.runtime import LockOrderViolation, LockOrderWatch
from repro.baselines.scan import scan
from repro.core.anyscan import AnySCAN
from repro.core.backend_scan import parallel_scan
from repro.core.config import AnyScanConfig
from repro.errors import ReproError
from repro.faults import FaultPlan, FaultRule, armed
from repro.faults.corruption import CORRUPTION_MODES, corrupt_file
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.parallel.processes import ProcessBackend, shared_memory_available
from repro.parallel.sync import atomic_add, critical, set_lock_order_watch
from repro.service.jobs import JobScheduler
from repro.service.store import GraphStore
from repro.similarity.gsindex import ClusteringIndex
from repro.similarity.index import EdgeSimilarityIndex, IndexIntegrityError
from repro.similarity.weighted import SimilarityConfig

pytestmark = [pytest.mark.chaos, pytest.mark.timeout(180)]


def _seeds():
    raw = os.environ.get("REPRO_CHAOS_SEEDS", "0,1,2,3")
    return [int(part) for part in raw.split(",") if part.strip()]


def _dump_plan(plan, battery):
    """Persist the plan JSON so CI can upload it from a failed run."""
    directory = os.environ.get("REPRO_CHAOS_DIR")
    if directory:
        path = Path(directory) / f"plan_{battery}_{plan.seed}.json"
        path.write_text(plan.to_json())


def _stray_segments():
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return []
    return sorted(p.name for p in shm.glob(f"repro_{os.getpid()}_*"))


#: Structured failures a faulted run may legitimately surface.  Anything
#: else (or a hang) is a hardening bug.
_STRUCTURED = (ReproError, OSError, MemoryError, ValueError, TimeoutError)

_BACKEND_SITES = [
    "process.worker.chunk",
    "process.pool.spawn",
    "process.segment.create",
    "sigma.query",
]
_EXIT_SITES = ["process.worker.chunk"]


@pytest.mark.parametrize("seed", _seeds())
def test_process_backend_differential_under_faults(seed):
    """Battery A: the cross-backend differential holds under faults."""
    if not shared_memory_available():
        pytest.skip("POSIX shared memory unavailable")
    graph = gnm_random_graph(120, 420, seed=31)
    reference = scan(graph, 2, 0.5, seed=0)
    plan = FaultPlan.random(
        seed, sites=_BACKEND_SITES, exit_sites=_EXIT_SITES
    )
    _dump_plan(plan, "backend")
    outcome = "success"
    with ProcessBackend(workers=2, chunk_size=32, retry_backoff=0.01) as backend:
        with armed(plan):
            try:
                got = parallel_scan(graph, 2, 0.5, backend=backend, seed=0)
            except _STRUCTURED:
                outcome = "structured-failure"
    if outcome == "success":
        np.testing.assert_array_equal(reference.labels, got.labels)
        np.testing.assert_array_equal(reference.roles, got.roles)
    assert _stray_segments() == [], plan.to_json()


@pytest.mark.parametrize("seed", _seeds())
def test_index_persistence_under_corruption(seed, tmp_path):
    """Battery B: seeded disk rot → quarantine → rebuild, never a torn
    or corrupt archive under the real name."""
    graph = gnm_random_graph(80, 240, seed=41)
    config = SimilarityConfig()
    fresh = EdgeSimilarityIndex.build(graph, config)
    path = tmp_path / "battery.npz"
    fresh.save(path)
    mode = CORRUPTION_MODES[seed % len(CORRUPTION_MODES)]
    corrupt_file(path, mode=mode, seed=seed)
    with pytest.raises(IndexIntegrityError):
        EdgeSimilarityIndex.load(path, graph, config=config)
    recovered_index, recovered = EdgeSimilarityIndex.load_or_rebuild(
        path, graph, config=config
    )
    assert recovered
    quarantined = [p.name for p in tmp_path.iterdir() if "quarantined" in p.name]
    assert quarantined, "damaged archive must be preserved for post-mortems"
    np.testing.assert_array_equal(fresh.sigmas, recovered_index.sigmas)
    reloaded = EdgeSimilarityIndex.load(path, graph, config=config)
    np.testing.assert_array_equal(fresh.sigmas, reloaded.sigmas)


@pytest.mark.parametrize("seed", _seeds())
def test_scheduler_jobs_under_slice_faults(seed):
    """Battery C: faulted slices either retry to the exact result or
    fail with the exception chain preserved — the scheduler survives."""
    graph = gnm_random_graph(100, 350, seed=51)
    reference = scan(graph, 2, 0.5, seed=0)
    plan = FaultPlan.random(seed, sites=["jobs.slice"])
    _dump_plan(plan, "jobs")
    config = AnyScanConfig(
        mu=2, epsilon=0.5, alpha=32, beta=32, record_costs=False
    )
    with armed(plan):
        with JobScheduler(workers=1, slice_iterations=2, max_slice_retries=8) as scheduler:
            job = scheduler.submit(AnySCAN(graph, config), graph_name="chaos")
            info = scheduler.wait(job, timeout=120.0)
            if info["state"] == "done":
                got = scheduler.result(job)
                np.testing.assert_array_equal(
                    reference.canonical().labels, got.canonical().labels
                )
            else:
                assert info["state"] == "failed", plan.to_json()
                assert info["error"], "failed jobs must carry an error"
                assert info["error_chain"], plan.to_json()


def test_worker_death_is_absorbed_within_budget():
    """A deterministic pool-death plan: one worker is killed mid-chunk;
    the run must still succeed exactly (chunk reassignment + respawn)."""
    if not shared_memory_available():
        pytest.skip("POSIX shared memory unavailable")
    graph = gnm_random_graph(120, 420, seed=31)
    reference = scan(graph, 2, 0.5, seed=0)
    plan = FaultPlan(
        [FaultRule(site="process.worker.chunk", kind="exit", after=2)],
        name="one-worker-death",
    )
    with ProcessBackend(workers=2, chunk_size=16, retry_backoff=0.01) as backend:
        with armed(plan):
            got = parallel_scan(graph, 2, 0.5, backend=backend, seed=0)
    np.testing.assert_array_equal(reference.labels, got.labels)
    np.testing.assert_array_equal(reference.roles, got.roles)
    assert _stray_segments() == []


def test_exhausted_failure_budget_degrades_with_event():
    """Unlimited chunk faults blow the budget: the backend must degrade
    to threads, emit a structured DegradationEvent, and still be exact."""
    if not shared_memory_available():
        pytest.skip("POSIX shared memory unavailable")
    graph = gnm_random_graph(120, 420, seed=31)
    reference = scan(graph, 2, 0.5, seed=0)
    events = []
    plan = FaultPlan(
        [
            FaultRule(
                site="process.worker.chunk",
                kind="raise",
                exception="MemoryError",
                times=None,
            )
        ],
        name="budget-exhaustion",
    )
    backend = ProcessBackend(
        workers=2,
        chunk_size=16,
        max_chunk_retries=1,
        failure_budget=1,
        retry_backoff=0.01,
        on_degrade=events.append,
    )
    with backend:
        with armed(plan):
            got = parallel_scan(graph, 2, 0.5, backend=backend, seed=0)
        assert backend.kind == "thread"
    assert len(events) == 1
    assert events[0].backend == "process"
    assert events[0].reason
    assert events[0].workers == 2
    np.testing.assert_array_equal(reference.labels, got.labels)
    np.testing.assert_array_equal(reference.roles, got.roles)
    assert _stray_segments() == []


def test_faulted_index_save_never_tears_the_archive(tmp_path):
    """An injected ``index.save`` fault must leave the previous archive
    intact (atomic replace), not a torn file."""
    graph = gnm_random_graph(60, 150, seed=61)
    config = SimilarityConfig()
    index = EdgeSimilarityIndex.build(graph, config)
    path = tmp_path / "atomic.npz"
    index.save(path)
    plan = FaultPlan([FaultRule(site="index.save", exception="OSError")])
    with armed(plan):
        with pytest.raises(OSError):
            index.save(path)
    reloaded = EdgeSimilarityIndex.load(path, graph, config=config)
    np.testing.assert_array_equal(index.sigmas, reloaded.sigmas)
    assert [p.name for p in tmp_path.iterdir()] == ["atomic.npz"]


@pytest.mark.parametrize("seed", _seeds())
def test_clustering_index_persistence_under_corruption(seed, tmp_path):
    """Battery B': the clustering-index archive survives the same rot
    modes — quarantine, rebuild, and *identical query answers* after."""
    graph = gnm_random_graph(80, 240, seed=41)
    fresh = ClusteringIndex.build(graph, mu_cap=5)
    path = tmp_path / "battery.gsindex.npz"
    fresh.save(path)
    mode = CORRUPTION_MODES[seed % len(CORRUPTION_MODES)]
    corrupt_file(path, mode=mode, seed=seed)
    with pytest.raises(IndexIntegrityError):
        ClusteringIndex.load(path, graph)
    recovered_index, recovered = ClusteringIndex.load_or_rebuild(
        path, graph, mu_cap=5
    )
    assert recovered
    quarantined = [
        p.name for p in tmp_path.iterdir() if "quarantined" in p.name
    ]
    assert quarantined, "damaged archive must be preserved for post-mortems"
    np.testing.assert_array_equal(
        fresh.edge.sigmas, recovered_index.edge.sigmas
    )
    for epsilon, mu in ((0.3, 2), (0.55, 4), (0.5, 9)):
        np.testing.assert_array_equal(
            fresh.query(epsilon, mu, seed=seed).labels,
            recovered_index.query(epsilon, mu, seed=seed).labels,
        )
        assert recovered_index.last_query["sigma_evaluations"] == 0


@pytest.mark.parametrize("seed", _seeds())
def test_store_index_refresh_faults_never_leave_stale_reads(seed):
    """Battery F: faults inside the store's index-refresh path must
    degrade (drop the index) — a query after a faulted update-edges
    must match the sequential reference on the *updated* graph."""
    graph = gnm_random_graph(70, 220, seed=71)
    plan = FaultPlan.random(seed, sites=["store.index_refresh"])
    _dump_plan(plan, "index_refresh")
    store = GraphStore()
    store.add("chaos", graph, build_cluster_index=True, mu_cap=4)
    with armed(plan):
        for step in range(4):
            u = (3 * step) % graph.num_vertices
            v = (11 * step + 17) % graph.num_vertices
            if u == v:
                continue
            try:
                store.update_edges("chaos", insert=[[u, v, 1.0]])
            except _STRUCTURED:
                pass
            entry = store.get("chaos")
            reference = scan(entry.graph, 2, 0.5, seed=0)
            if entry.cluster_index is not None:
                got = entry.cluster_index.query(0.5, 2, seed=0)
                np.testing.assert_array_equal(
                    got.labels, reference.labels, err_msg=plan.to_json()
                )
            else:
                # Degraded mode: the index was dropped, never stale.
                got = parallel_scan(entry.graph, 2, 0.5, seed=0)
                np.testing.assert_array_equal(
                    got.labels, reference.labels
                )


@pytest.mark.parametrize("seed", _seeds())
def test_lock_order_watch_armed_during_faulted_scan(seed):
    """Battery E: the lock-order sanitizer rides a faulted parallel scan.

    Every declared atomic/critical acquisition reports to the watch
    while the backend absorbs injected faults; the acquisition-order
    graph observed across the whole run must stay acyclic.
    """
    graph = gnm_random_graph(120, 420, seed=31)
    plan = FaultPlan.random(seed, sites=["sigma.query"])
    _dump_plan(plan, "lockorder")
    watch = LockOrderWatch()
    previous = set_lock_order_watch(watch)
    try:
        with armed(plan):
            try:
                parallel_scan(graph, 2, 0.5, seed=0)
            except _STRUCTURED:
                pass
    finally:
        set_lock_order_watch(previous)
    watch.assert_acyclic()


def test_lock_order_watch_flags_injected_abba_cycle():
    """Negative control: a seeded ABBA cycle through the declared
    helpers must trip the sanitizer even though this run never
    deadlocks (the two legs execute sequentially)."""
    watch = LockOrderWatch()
    previous = set_lock_order_watch(watch)
    table = watch.wrap(threading.Lock(), "table-lock")
    arr = np.zeros(4)

    def first_leg():
        with table:  # table-lock then the global lock
            atomic_add(arr, 0, 1.0)

    def second_leg():
        with critical():  # the global lock then table-lock: inverted
            with table:
                arr[1] = 1.0

    try:
        for leg in (first_leg, second_leg):
            thread = threading.Thread(target=leg)
            thread.start()
            thread.join(timeout=30)
            assert not thread.is_alive()
    finally:
        set_lock_order_watch(previous)
    with pytest.raises(LockOrderViolation, match="table-lock"):
        watch.assert_acyclic()


@pytest.mark.parametrize("seed", _seeds())
def test_fleet_survives_sigkilled_shard(seed):
    """Battery F: SIGKILL one worker of a live fleet mid-service.

    The invariants the sharded fleet guarantees by construction:

    * the supervisor respawns the shard and ``/fleet/metrics`` witnesses
      it (``worker_exits``/``worker_respawns`` counters, both shards
      scraped again);
    * the killed pid leaves **no** ``repro_*`` segment behind — workers
      only ever attach, and attachments are untracked from their local
      resource tracker precisely so a dying reader cannot reap the
      writer's live segments;
    * no stale reads: answers after the kill are byte-identical to the
      answers before it, a mutation routed through any surviving (or
      respawned) shard lands in a fresh epoch, and every new connection
      observes that epoch.
    """
    if not shared_memory_available():
        pytest.skip("POSIX shared memory unavailable")
    from repro.result import Clustering
    from repro.service.client import ServiceClient
    from repro.service.fleet import ServiceSupervisor
    from repro.service.server import ClusteringService

    graph = gnm_random_graph(120, 420, seed=31)
    mu, epsilon = 2, 0.5
    reference = scan(graph, mu, epsilon, seed=0).canonical()

    service = ClusteringService(workers=2, slice_iterations=2)
    supervisor = ServiceSupervisor(
        service,
        processes=2,
        worker_options={"workers": 2, "slice_iterations": 2},
    )
    try:
        supervisor.start().wait_ready()
        with ServiceClient(supervisor.url, timeout=60.0) as client:
            client.load_graph("chaos", graph=graph, build_index=True)
            before = client.cluster("chaos", mu, epsilon, wait=60.0)
        got = Clustering(
            labels=np.asarray(before["labels"], dtype=np.int64)
        ).canonical()
        np.testing.assert_array_equal(got.labels, reference.labels)

        with supervisor._lock:
            registrations = dict(supervisor._registrations)
        victim = registrations[seed % len(registrations)]
        os.kill(int(victim["pid"]), signal.SIGKILL)

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            with supervisor._lock:
                if (
                    supervisor._respawns >= 1
                    and len(supervisor._registrations) == 2
                ):
                    break
            time.sleep(0.05)
        else:
            pytest.fail("killed shard never respawned")

        # The killed worker owned no segments (readers only attach).
        shm_dir = Path("/dev/shm")
        strays = (
            sorted(
                p.name
                for p in shm_dir.glob(f"repro_{victim['pid']}_*")
            )
            if shm_dir.is_dir()
            else []
        )
        assert strays == []

        # Every fresh connection — whichever shard the kernel picks —
        # answers the exact bytes served before the kill.
        for _ in range(4):
            with ServiceClient(supervisor.url, timeout=60.0) as probe:
                after = probe.cluster("chaos", mu, epsilon, wait=60.0)
                assert after["labels"] == before["labels"]

        # A post-kill mutation commits a fresh epoch visible everywhere.
        inserts = []
        for u in range(graph.num_vertices):
            row = set(
                graph.indices[graph.indptr[u] : graph.indptr[u + 1]]
            )
            for v in range(u + 1, graph.num_vertices):
                if v not in row:
                    inserts.append([u, v, 1.0])
                    break
            if len(inserts) == 2:
                break
        with ServiceClient(supervisor.url, timeout=60.0) as writer:
            update = writer.update_edges("chaos", insert=inserts)
        for _ in range(3):
            with ServiceClient(supervisor.url, timeout=60.0) as probe:
                info = probe.graph_info("chaos")
                assert info["fingerprint"] == update["fingerprint"]

        merged = None
        with ServiceClient(supervisor.url, timeout=60.0) as probe:
            merged = probe.fleet_metrics()
        assert merged["counters"]["worker_exits"] >= 1
        assert merged["counters"]["worker_respawns"] >= 1
        assert sorted(merged["fleet"]["scraped_shards"]) == [0, 1]
    finally:
        supervisor.close()
    assert _stray_segments() == []
