"""Tests for the SCAN reference implementation."""

import numpy as np
import pytest

from repro.baselines import scan
from repro.errors import ConfigError
from repro.graph.csr import Graph
from repro.result import VertexRole
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle


class TestSmallGraphs:
    def test_triangle_is_one_cluster(self, triangle):
        result = scan(triangle, 2, 0.5)
        assert result.num_clusters == 1
        assert list(result.members_of(0)) == [0, 1, 2]
        assert all(result.roles == int(VertexRole.CORE))

    def test_triangle_high_mu_all_noise(self, triangle):
        result = scan(triangle, 10, 0.5)
        assert result.num_clusters == 0
        assert result.outliers.shape[0] == 3

    def test_path_is_noise_at_high_eps(self, path_graph):
        result = scan(path_graph, 2, 0.9)
        assert result.num_clusters == 0

    def test_two_triangles_separate_clusters(self, two_triangles_bridge):
        result = scan(two_triangles_bridge, 2, 0.75)
        assert result.num_clusters == 2
        sets = set(result.membership_sets())
        assert frozenset({4, 5, 6}) in sets

    def test_bridge_vertex_becomes_hub_or_outlier(self, two_triangles_bridge):
        result = scan(two_triangles_bridge, 3, 0.8)
        # With μ=3 and ε=0.8 the triangles cluster; the bridge endpoints
        # (2, 3, 4) connect across — vertex 3 is unclustered.
        labels = result.labels
        if labels[3] < 0:
            # it touches both clusters -> hub
            assert int(labels[3]) == -1

    def test_epsilon_one_requires_identical_neighborhoods(self):
        # Two K4s sharing nothing: all σ inside a K4 equal 1.
        edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        g = Graph.from_edges(4, edges)
        result = scan(g, 3, 1.0)
        assert result.num_clusters == 1


class TestKarate:
    def test_default_parameters_find_communities(self, karate):
        result = scan(karate, 3, 0.5)
        assert result.num_clusters >= 2
        # The two famous leaders end up in different communities.
        assert result.labels[0] != result.labels[33]

    def test_order_independent_partition(self, karate):
        a = scan(karate, 3, 0.5, seed=1)
        b = scan(karate, 3, 0.5, seed=42)
        assert np.array_equal(np.sort(a.cores()), np.sort(b.cores()))
        assert a.num_clusters == b.num_clusters

    def test_roles_are_consistent(self, karate):
        result = scan(karate, 3, 0.5)
        for v in range(34):
            role = VertexRole(int(result.roles[v]))
            label = int(result.labels[v])
            if role in (VertexRole.CORE, VertexRole.BORDER):
                assert label >= 0
            else:
                assert label < 0

    def test_cores_satisfy_definition(self, karate):
        oracle = SimilarityOracle(karate, SimilarityConfig())
        result = scan(karate, 3, 0.5)
        for v in result.cores():
            size = oracle.eps_neighborhood(int(v), 0.5).shape[0] + 1
            assert size >= 3
        for v in range(34):
            if int(result.roles[v]) != int(VertexRole.CORE):
                size = oracle.eps_neighborhood(v, 0.5).shape[0] + 1
                assert size < 3

    def test_borders_have_core_neighbor(self, karate):
        oracle = SimilarityOracle(karate, SimilarityConfig())
        result = scan(karate, 3, 0.5)
        cores = set(int(v) for v in result.cores())
        for v in result.borders():
            v = int(v)
            attached = any(
                int(q) in cores
                and int(result.labels[q]) == int(result.labels[v])
                and oracle.sigma_unrecorded(v, int(q)) >= 0.5
                for q in karate.neighbors(v)
            )
            assert attached


class TestParameters:
    def test_mu_monotone_cores(self, lfr_small):
        low = scan(lfr_small, 2, 0.5)
        high = scan(lfr_small, 6, 0.5)
        assert set(map(int, high.cores())) <= set(map(int, low.cores()))

    def test_eps_monotone_cores(self, lfr_small):
        loose = scan(lfr_small, 4, 0.3)
        tight = scan(lfr_small, 4, 0.7)
        assert set(map(int, tight.cores())) <= set(map(int, loose.cores()))

    def test_invalid_mu(self, triangle):
        with pytest.raises(ConfigError):
            scan(triangle, 0, 0.5)

    def test_invalid_epsilon(self, triangle):
        with pytest.raises(ConfigError):
            scan(triangle, 2, 0.0)
        with pytest.raises(ConfigError):
            scan(triangle, 2, 1.5)

    def test_empty_graph(self):
        result = scan(Graph.from_edges(0, []), 2, 0.5)
        assert result.num_clusters == 0

    def test_isolated_vertices_are_outliers(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (0, 2)])
        result = scan(g, 2, 0.5)
        assert int(result.labels[3]) == -2
        assert int(result.labels[4]) == -2


class TestWeighted:
    def test_weights_change_similarity(self, karate):
        from repro.graph.generators.weights import assign_community_weights

        member = [0 if v < 17 else 1 for v in range(34)]
        weighted = assign_community_weights(
            karate, member, intra=1.0, inter=0.05, jitter=0.0
        )
        unweighted_result = scan(karate, 3, 0.5)
        weighted_result = scan(weighted, 3, 0.5)
        # Down-weighting cross-community ties must not produce the exact
        # same member set (it sharpens the communities).
        assert not np.array_equal(
            unweighted_result.labels >= 0, weighted_result.labels >= 0
        ) or unweighted_result.num_clusters != weighted_result.num_clusters
