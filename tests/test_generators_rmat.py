"""Tests for the R-MAT / Kronecker generator."""

import numpy as np
import pytest

from repro.errors import GeneratorError
from repro.graph.generators.rmat import rmat_graph


class TestRmat:
    def test_basic_generation(self):
        g = rmat_graph(8, 8, seed=1)
        assert g.num_vertices <= 256
        assert g.num_edges > 100

    def test_compact_removes_isolated(self):
        g = rmat_graph(8, 4, seed=2, compact=True)
        assert int(g.degrees.min()) >= 1

    def test_non_compact_keeps_slots(self):
        g = rmat_graph(8, 4, seed=2, compact=False)
        assert g.num_vertices == 256

    def test_heavy_tailed_degrees(self):
        g = rmat_graph(10, 16, seed=3)
        degrees = np.sort(g.degrees)[::-1]
        # Top 1% of vertices should hold a disproportionate share of edges.
        top = degrees[: max(len(degrees) // 100, 1)].sum()
        assert top > 0.05 * degrees.sum()
        assert degrees[0] > 4 * np.median(degrees)

    def test_deterministic(self):
        assert rmat_graph(7, 6, seed=9) == rmat_graph(7, 6, seed=9)

    def test_seed_changes_output(self):
        assert rmat_graph(7, 6, seed=1) != rmat_graph(7, 6, seed=2)

    def test_invalid_scale(self):
        with pytest.raises(GeneratorError):
            rmat_graph(0, 8)
        with pytest.raises(GeneratorError):
            rmat_graph(30, 8)

    def test_invalid_edge_factor(self):
        with pytest.raises(GeneratorError):
            rmat_graph(8, 0)

    def test_invalid_probabilities(self):
        with pytest.raises(GeneratorError):
            rmat_graph(8, 8, a=0.6, b=0.3, c=0.2)  # d <= 0

    def test_zero_noise_works(self):
        g = rmat_graph(8, 8, seed=4, noise=0.0)
        assert g.num_edges > 0
