"""Differential battery: ClusteringIndex.query ≡ sequential scan.

The clustering index claims *exact* replay — for any graph, any
(ε, μ), and any seed, :meth:`ClusteringIndex.query` returns labels
byte-identical to :func:`repro.baselines.scan.scan` (same cluster ids,
same borders, same hubs and outliers), while evaluating zero σ.  This
battery drives that claim three ways:

* a seeded random-graph × (ε, μ) grid, including the boundary values
  μ=2 and ε pinned to *exact* σ ties (the ≥-vs-> off-by-one surface);
* hypothesis-generated arbitrary small graphs and parameters;
* the same checks through ``parallel_scan`` across every execution
  backend (the index short-circuits them all identically).

Seeds come from ``REPRO_INDEX_SEEDS`` (comma-separated) so CI shards
the grid across a seed matrix; locally the default covers all shards.
Run just this battery with ``-m index_differential``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import scan
from repro.core import parallel_scan
from repro.graph.builder import GraphBuilder
from repro.graph.csr import Graph
from repro.graph.generators.random_graphs import (
    gnm_random_graph,
    planted_partition_graph,
)
from repro.similarity.gsindex import ClusteringIndex
from repro.similarity.weighted import SimilarityConfig

pytestmark = [pytest.mark.index_differential, pytest.mark.timeout(300)]

# The (ε, μ) grid every generated graph is queried at.  μ=2 is the
# boundary where every edge endpoint pair is a candidate core; large μ
# exercises the above-cap gather path on indexes built with small caps.
_GRID = [
    (0.01, 2),
    (0.30, 2),
    (0.50, 3),
    (0.65, 4),
    (0.80, 5),
    (0.95, 2),
    (0.50, 11),
    (1.00, 2),
]


def _seeds():
    raw = os.environ.get("REPRO_INDEX_SEEDS", "0,1,2,3")
    return [int(part) for part in raw.split(",") if part.strip()]


def _weighted_variant(graph: Graph, seed: int) -> Graph:
    """Same topology, random positive weights (σ loses its ties)."""
    owners = np.repeat(
        np.arange(graph.num_vertices), np.diff(graph.indptr)
    )
    mask = owners < graph.indices
    pairs = list(zip(owners[mask].tolist(), graph.indices[mask].tolist()))
    rng = np.random.default_rng(seed + 10_000)
    return Graph.from_edges(
        graph.num_vertices,
        pairs,
        weights=rng.uniform(0.2, 3.0, size=len(pairs)),
    )


def _assert_exact(index: ClusteringIndex, graph: Graph, epsilon, mu, seed):
    result = index.query(epsilon, mu, seed=seed)
    reference = scan(graph, mu, epsilon, seed=seed)
    np.testing.assert_array_equal(
        result.labels,
        reference.labels,
        err_msg=f"(ε={epsilon}, μ={mu}, seed={seed}) diverged",
    )
    assert index.last_query["sigma_evaluations"] == 0


# ----------------------------------------------------------------------
# seeded grid (shardable via REPRO_INDEX_SEEDS)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", _seeds())
def test_random_graph_grid_exact(seed):
    graph = gnm_random_graph(90 + 7 * seed, 300 + 23 * seed, seed=seed)
    index = ClusteringIndex.build(graph, mu_cap=8)
    for epsilon, mu in _GRID:
        _assert_exact(index, graph, epsilon, mu, seed)


@pytest.mark.parametrize("seed", _seeds())
def test_weighted_graph_grid_exact(seed):
    graph = _weighted_variant(
        gnm_random_graph(80, 260, seed=seed), seed
    )
    index = ClusteringIndex.build(graph, mu_cap=8)
    for epsilon, mu in _GRID:
        _assert_exact(index, graph, epsilon, mu, seed)


@pytest.mark.parametrize("seed", _seeds())
def test_community_graph_covers_hubs_and_outliers(seed):
    """Planted partitions produce all four roles; the replay must agree
    on every one of them, not only on member labels."""
    graph = planted_partition_graph(
        [16, 16, 16, 16], 0.6, 0.04, seed=seed
    )
    index = ClusteringIndex.build(graph)
    saw_hub = saw_outlier = False
    for epsilon, mu in ((0.4, 3), (0.55, 4), (0.7, 5)):
        result = index.query(epsilon, mu, seed=seed)
        reference = scan(graph, mu, epsilon, seed=seed)
        np.testing.assert_array_equal(result.labels, reference.labels)
        saw_hub = saw_hub or result.hubs.shape[0] > 0
        saw_outlier = saw_outlier or result.outliers.shape[0] > 0
    assert saw_hub and saw_outlier, "grid never produced hubs/outliers"


@pytest.mark.parametrize("seed", _seeds())
def test_exact_sigma_tie_boundaries(seed):
    """ε set to *exact* σ values (where ≥ vs > changes the answer) —
    every distinct σ in the graph is used as a query threshold."""
    graph = gnm_random_graph(60, 200, seed=seed)
    index = ClusteringIndex.build(graph)
    distinct = np.unique(index.edge.sigmas)
    distinct = distinct[distinct > 0]
    # Every distinct σ plus midpoints between adjacent ones.
    thresholds = list(distinct[:: max(1, len(distinct) // 12)])
    thresholds += [
        (a + b) / 2 for a, b in zip(distinct[:-1:7], distinct[1::7])
    ]
    for epsilon in thresholds:
        for mu in (2, 3, 5):
            _assert_exact(index, graph, float(epsilon), mu, seed)


@pytest.mark.parametrize("backend", ["thread", "process", "auto"])
def test_index_built_on_any_backend_is_exact(backend):
    """Build σ on each backend; the index (and its answers) must be
    identical — and parallel_scan must short-circuit through it."""
    graph = gnm_random_graph(70, 240, seed=2)
    index = ClusteringIndex.build(graph, backend=backend, workers=2)
    reference_index = ClusteringIndex.build(graph)
    np.testing.assert_array_equal(
        index.edge.sigmas, reference_index.edge.sigmas
    )
    for epsilon, mu in ((0.45, 2), (0.6, 4)):
        via_parallel = parallel_scan(
            graph,
            mu,
            epsilon,
            index=index,
            seed=3,
            config=SimilarityConfig(),
        )
        reference = scan(graph, mu, epsilon, seed=3)
        np.testing.assert_array_equal(
            via_parallel.labels, reference.labels
        )
        assert index.last_query["sigma_evaluations"] == 0


# ----------------------------------------------------------------------
# hypothesis: arbitrary small graphs and parameters
# ----------------------------------------------------------------------
def _build(edges, weights=None):
    builder = GraphBuilder(16)
    for i, (u, v) in enumerate(edges):
        w = 1.0 if weights is None else weights[i % len(weights)]
        builder.add_edge(u, v, w)
    return builder.build(dedup="ignore")


edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(
        lambda e: e[0] != e[1]
    ),
    min_size=0,
    max_size=48,
)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    edges=edge_lists,
    epsilon=st.floats(0.05, 1.0, allow_nan=False),
    mu=st.integers(1, 7),
    seed=st.integers(0, 4),
)
def test_hypothesis_unweighted_exact(edges, epsilon, mu, seed):
    graph = _build(edges)
    index = ClusteringIndex.build(graph, mu_cap=4)
    _assert_exact(index, graph, epsilon, mu, seed)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    edges=edge_lists,
    weights=st.lists(
        st.floats(0.1, 5.0, allow_nan=False), min_size=1, max_size=8
    ),
    epsilon=st.floats(0.05, 1.0, allow_nan=False),
    mu=st.integers(2, 6),
)
def test_hypothesis_weighted_exact(edges, weights, epsilon, mu):
    graph = _build(edges, weights)
    index = ClusteringIndex.build(graph, mu_cap=4)
    _assert_exact(index, graph, epsilon, mu, 0)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(edges=edge_lists, mu=st.integers(2, 5), seed=st.integers(0, 3))
def test_hypothesis_tie_epsilon_exact(edges, mu, seed):
    """ε drawn from the graph's own σ values (guaranteed exact ties)."""
    graph = _build(edges)
    index = ClusteringIndex.build(graph, mu_cap=4)
    distinct = np.unique(index.edge.sigmas)
    distinct = distinct[distinct > 0]
    if distinct.shape[0] == 0:
        return
    for epsilon in (distinct[0], distinct[-1], distinct[len(distinct) // 2]):
        _assert_exact(index, graph, float(epsilon), mu, seed)
