"""Each analysis rule fires on its seeded fixture and only there."""

from pathlib import Path

from repro.analysis import (
    AnalysisConfig,
    Analyzer,
    Finding,
    ModuleSource,
    RULE_INDEX,
    default_rules,
)

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"

#: Config mirroring tests/fixtures/analysis/pyproject.toml.
FIXTURE_CONFIG = AnalysisConfig(
    kernel_modules=["fixtures/analysis"],
    api_modules=["fixtures/analysis"],
    guarded_exception_modules=["fixtures/analysis"],
)


def findings_for(name, config=FIXTURE_CONFIG):
    analyzer = Analyzer(config=config)
    return analyzer.analyze_paths([FIXTURES / name])


def rule_ids(findings):
    return sorted({f.rule for f in findings})


class TestSeededViolations:
    def test_r1_fires_on_unguarded_shared_writes(self):
        findings = [f for f in findings_for("viol_r1.py") if f.rule == "R1"]
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert "'counts'" in messages
        assert "'processed'" in messages
        assert "dsu.union()" in messages

    def test_r1_accepts_guarded_worker(self):
        findings = findings_for("viol_r1.py")
        guarded_lines = [
            f for f in findings if "tally_guarded" in f.message
        ]
        assert guarded_lines == []

    def test_r1_fires_on_pool_initializer(self):
        findings = [
            f
            for f in findings_for("viol_r1_initializer.py")
            if f.rule == "R1"
        ]
        assert len(findings) == 1
        assert "'_CACHE'" in findings[0].message
        assert "'bad_init'" in findings[0].message

    def test_r1_accepts_local_only_initializer(self):
        messages = " ".join(
            f.message for f in findings_for("viol_r1_initializer.py")
        )
        assert "good_init" not in messages

    def test_r2_fires_on_banned_imports(self):
        findings = [f for f in findings_for("viol_r2.py") if f.rule == "R2"]
        assert len(findings) == 2
        assert any("networkx" in f.message for f in findings)
        assert any("pytest" in f.message for f in findings)

    def test_r3_fires_on_csr_loops(self):
        findings = [f for f in findings_for("viol_r3.py") if f.rule == "R3"]
        assert len(findings) == 3

    def test_r3_respects_pragma(self):
        findings = findings_for("viol_r3.py")
        # the allowed_scan loop is suppressed by its pragma comment
        assert all(f.line < 22 for f in findings)

    def test_r3_silent_outside_kernel_modules(self):
        findings = findings_for("viol_r3.py", config=AnalysisConfig())
        assert [f for f in findings if f.rule == "R3"] == []

    def test_r4_fires_on_unvalidated_entry_point(self):
        findings = [f for f in findings_for("viol_r4.py") if f.rule == "R4"]
        assert len(findings) == 1
        assert "'cluster'" in findings[0].message

    def test_r4_accepts_validator_and_inline_checks(self):
        messages = " ".join(f.message for f in findings_for("viol_r4.py"))
        assert "cluster_checked" not in messages
        assert "cluster_inline" not in messages
        assert "_private" not in messages

    def test_r5_fires_on_silent_handlers(self):
        findings = [f for f in findings_for("viol_r5.py") if f.rule == "R5"]
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "ValueError" in messages
        assert "OSError" in messages

    def test_r5_accepts_reraise_return_and_witness(self):
        messages = " ".join(f.message for f in findings_for("viol_r5.py"))
        findings = findings_for("viol_r5.py")
        flagged_lines = {f.line for f in findings if f.rule == "R5"}
        # only the two seeded handlers fire; the compliant ones (raise,
        # return, metrics witness, pragma) stay silent
        assert flagged_lines == {8, 17}, messages

    def test_r5_respects_swallow_pragma(self, tmp_path):
        source = (
            "def f(work):\n"
            "    try:\n"
            "        work()\n"
            "    except ValueError:  # repro: allow[swallow]\n"
            "        pass\n"
        )
        path = tmp_path / "fixtures" / "analysis" / "module.py"
        path.parent.mkdir(parents=True)
        path.write_text(source)
        analyzer = Analyzer(config=FIXTURE_CONFIG)
        assert analyzer.analyze_paths([path]) == []

    def test_r5_silent_outside_guarded_modules(self):
        findings = findings_for("viol_r5.py", config=AnalysisConfig())
        assert [f for f in findings if f.rule == "R5"] == []

    def test_generic_rules_fire(self):
        findings = findings_for("viol_generic.py")
        assert rule_ids(findings) == ["G1", "G2", "G3"]

    def test_clean_fixture_is_clean(self):
        assert findings_for("clean.py") == []


class TestFramework:
    def test_every_rule_has_unique_id(self):
        ids = [rule.id for rule in default_rules()]
        assert len(ids) == len(set(ids))
        assert set(ids) == set(RULE_INDEX)

    def test_disable_filters_rules(self):
        config = AnalysisConfig(disable=["G1", "G2", "G3"])
        findings = Analyzer(config=config).analyze_paths(
            [FIXTURES / "viol_generic.py"]
        )
        assert findings == []

    def test_findings_sorted_and_formatted(self):
        findings = findings_for("viol_r1.py")
        assert findings == sorted(findings)
        formatted = findings[0].format()
        assert formatted.endswith(findings[0].message)
        assert f":{findings[0].line}:" in formatted

    def test_wildcard_pragma_suppresses_everything(self, tmp_path):
        source = "def f(x=[]):  # repro: allow[*]\n    return x\n"
        path = tmp_path / "module.py"
        path.write_text(source)
        assert Analyzer().analyze_paths([path]) == []

    def test_pragma_on_comment_line_covers_next_line(self, tmp_path):
        source = (
            "# justified below  # repro: allow[G1]\n"
            "def f(x=[]):\n"
            "    return x\n"
        )
        path = tmp_path / "module.py"
        path.write_text(source)
        assert Analyzer().analyze_paths([path]) == []

    def test_pragma_is_rule_specific(self, tmp_path):
        source = "def f(x=[]):  # repro: allow[R1]\n    return x\n"
        path = tmp_path / "module.py"
        path.write_text(source)
        findings = Analyzer().analyze_paths([path])
        assert rule_ids(findings) == ["G1"]

    def test_pragma_survives_decorators(self, tmp_path):
        # The G1 finding anchors at the decorator line; the pragma sits
        # on the def line two lines below.  Both are one logical
        # signature, so the pragma must still apply.
        source = (
            "import functools\n"
            "\n"
            "@functools.lru_cache\n"
            "@functools.wraps(len)\n"
            "def f(x=[]):  # repro: allow[G1]\n"
            "    return x\n"
        )
        path = tmp_path / "module.py"
        path.write_text(source)
        assert Analyzer().analyze_paths([path]) == []

    def test_pragma_on_multiline_signature_last_line(self, tmp_path):
        source = (
            "def f(\n"
            "    x=[],\n"
            "    y=0,\n"
            "):  # repro: allow[G1]\n"
            "    return x, y\n"
        )
        path = tmp_path / "module.py"
        path.write_text(source)
        assert Analyzer().analyze_paths([path]) == []

    def test_def_line_pragma_covers_the_body(self, tmp_path):
        source = (
            "def f():  # repro: allow[G2]\n"
            "    try:\n"
            "        return 1\n"
            "    except:\n"
            "        return 0\n"
        )
        path = tmp_path / "module.py"
        path.write_text(source)
        assert Analyzer().analyze_paths([path]) == []

    def test_def_span_pragma_is_still_rule_specific(self, tmp_path):
        source = (
            "@property\n"
            "def f(x=[]):  # repro: allow[G2]\n"
            "    return x\n"
        )
        path = tmp_path / "module.py"
        path.write_text(source)
        findings = Analyzer().analyze_paths([path])
        assert rule_ids(findings) == ["G1"]

    def test_class_line_pragma_does_not_cover_methods(self, tmp_path):
        source = (
            "class C:  # repro: allow[G1]\n"
            "    def f(self, x=[]):\n"
            "        return x\n"
        )
        path = tmp_path / "module.py"
        path.write_text(source)
        findings = Analyzer().analyze_paths([path])
        assert rule_ids(findings) == ["G1"]

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        findings = Analyzer().analyze_paths([path])
        assert [f.rule for f in findings] == ["PARSE"]

    def test_exclude_skips_paths(self, tmp_path):
        path = tmp_path / "skipme" / "module.py"
        path.parent.mkdir()
        path.write_text("def f(x=[]):\n    return x\n")
        config = AnalysisConfig(exclude=["skipme"])
        assert Analyzer(config=config).analyze_paths([tmp_path]) == []

    def test_module_source_parse(self):
        module = ModuleSource.parse(FIXTURES / "clean.py")
        assert module.lines[0].startswith('"""')
        assert isinstance(module.suppressions, dict)

    def test_finding_to_dict_round_trip(self):
        finding = Finding(path="a.py", line=3, col=1, rule="R1", message="m")
        data = finding.to_dict()
        assert data == {
            "path": "a.py",
            "line": 3,
            "col": 1,
            "rule": "R1",
            "message": "m",
        }


class TestShippedTree:
    def test_src_repro_is_clean(self):
        repo = Path(__file__).resolve().parents[1]
        analyzer = Analyzer(config=AnalysisConfig())
        findings = analyzer.analyze_paths([repo / "src" / "repro"])
        assert findings == [], "\n".join(f.format() for f in findings)
