"""Failure-hardening acceptance at the service boundary (DESIGN.md §9).

Covers the HTTP-layer robustness contract end to end:

* a saturated scheduler answers 503 with a ``Retry-After`` hint and a
  ``backpressure_rejections`` counter, instead of queueing unboundedly;
* resubmitting a ``cluster`` POST with the same idempotency key replays
  the already-scheduled job — no duplicate work;
* the client retries transient failures on idempotent GETs (connection
  refused, 503) with backoff, and honors the server's ``Retry-After``;
* malformed request bodies surface as 400 + a ``bad_request_bodies``
  counter, and injected request-read faults never kill the server;
* a backend :class:`DegradationEvent` lands in the service metrics as a
  counter and a structured event record.
"""

from __future__ import annotations

import http.server
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.faults import FaultPlan, FaultRule, armed
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.parallel.processes import DegradationEvent, _emit_degradation
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.server import ClusteringServer

pytestmark = pytest.mark.timeout(120)


@pytest.fixture()
def server():
    with ClusteringServer(
        workers=1, slice_iterations=1, max_pending_jobs=1
    ) as live:
        yield live


@pytest.fixture()
def client(server):
    return ServiceClient(server.url, timeout=30.0, max_retries=0)


def _load(client, name="g", seed=7):
    client.load_graph(name, graph=gnm_random_graph(80, 240, seed=seed))


def _counter(client, name):
    return client.metrics()["counters"].get(name, 0)


class TestBackpressure:
    def test_saturation_yields_503_with_retry_after(self, server, client):
        _load(client)
        # Slow slices keep the first job active while the second arrives.
        plan = FaultPlan(
            [FaultRule(site="jobs.slice", kind="delay", delay=0.2, times=None)]
        )
        with armed(plan):
            first = client.cluster("g", 2, 0.5)
            with pytest.raises(ServiceClientError) as excinfo:
                client.cluster("g", 2, 0.6)
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after is not None
        assert excinfo.value.retry_after > 0
        assert _counter(client, "backpressure_rejections") >= 1
        deadline = time.monotonic() + 60.0
        while client.snapshot(first["job_id"], labels=False)["state"] != "done":
            assert time.monotonic() < deadline, "first job never finished"
            time.sleep(0.01)

    def test_capacity_frees_after_completion(self, server, client):
        _load(client)
        first = client.cluster("g", 2, 0.5, wait=60.0)
        assert first["state"] == "done"
        second = client.cluster("g", 2, 0.6, wait=60.0)
        assert second["state"] == "done"


class TestIdempotency:
    def test_same_key_replays_the_same_job(self, server, client):
        _load(client)
        # Slow slices so the job is still live when the retry arrives
        # (a finished job would be answered from the result cache).
        plan = FaultPlan(
            [FaultRule(site="jobs.slice", kind="delay", delay=0.1, times=None)]
        )
        with armed(plan):
            first = client.cluster("g", 2, 0.5, idempotency_key="req-1")
            # Replays bypass backpressure too: the job already exists.
            replay = client.cluster("g", 2, 0.5, idempotency_key="req-1")
        assert replay["job_id"] == first["job_id"]
        assert _counter(client, "idempotent_replays") >= 1
        done = client.result(first["job_id"], wait=60.0, labels=False)
        assert done["state"] == "done"

    def test_different_keys_schedule_fresh_jobs(self, server, client):
        _load(client)
        first = client.cluster("g", 2, 0.5, wait=60.0, idempotency_key="a")
        second = client.cluster("g", 2, 0.5, wait=60.0, idempotency_key="b")
        assert first["job_id"] != second["job_id"]

    def test_non_string_key_is_rejected(self, server, client):
        _load(client)
        with pytest.raises(ServiceClientError) as excinfo:
            client._request(
                "POST",
                "/cluster",
                {"graph": "g", "mu": 2, "epsilon": 0.5, "idempotency_key": 7},
            )
        assert excinfo.value.status == 400


class _FlakyHandler(http.server.BaseHTTPRequestHandler):
    """Answers 503 (with Retry-After) until ``failures`` runs out."""

    failures = 2
    hits = 0

    def do_GET(self):  # noqa: N802 - http.server naming
        cls = type(self)
        cls.hits += 1
        if cls.failures > 0:
            cls.failures -= 1
            body = json.dumps({"error": "warming up"}).encode()
            self.send_response(503)
            self.send_header("Retry-After", "0.01")
        else:
            body = json.dumps({"status": "ok"}).encode()
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # noqa: D102 - silence test noise
        pass


class TestClientRetries:
    def test_get_retries_through_transient_503(self):
        _FlakyHandler.failures = 2
        _FlakyHandler.hits = 0
        httpd = http.server.HTTPServer(("127.0.0.1", 0), _FlakyHandler)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{httpd.server_port}",
                timeout=5.0,
                max_retries=3,
                retry_backoff=0.01,
            )
            assert client.health()["status"] == "ok"
            assert _FlakyHandler.hits == 3
        finally:
            httpd.shutdown()
            thread.join(timeout=5.0)
            httpd.server_close()

    def test_retries_exhausted_surfaces_the_503(self):
        _FlakyHandler.failures = 10
        _FlakyHandler.hits = 0
        httpd = http.server.HTTPServer(("127.0.0.1", 0), _FlakyHandler)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{httpd.server_port}",
                timeout=5.0,
                max_retries=1,
                retry_backoff=0.01,
            )
            with pytest.raises(ServiceClientError) as excinfo:
                client.health()
            assert excinfo.value.status == 503
            assert _FlakyHandler.hits == 2  # initial try + one retry
        finally:
            httpd.shutdown()
            thread.join(timeout=5.0)
            httpd.server_close()

    def test_connection_refused_is_transient_then_raises(self):
        client = ServiceClient(
            "http://127.0.0.1:9",  # discard port: nothing listens
            timeout=0.5,
            max_retries=1,
            retry_backoff=0.01,
        )
        started = time.monotonic()
        with pytest.raises(ServiceClientError) as excinfo:
            client.health()
        assert excinfo.value.status == 0
        assert time.monotonic() - started < 10.0

    def test_posts_are_never_retried(self, server, client):
        """Non-idempotent verbs go through exactly once even with the
        retry budget available (duplicate submission protection)."""
        _load(client)
        retrying = ServiceClient(server.url, timeout=30.0, max_retries=3)
        before = _counter(client, "jobs_submitted")
        retrying.cluster("g", 2, 0.5, wait=60.0)
        assert _counter(client, "jobs_submitted") == before + 1


class TestMalformedRequests:
    def test_invalid_json_is_a_counted_400(self, server, client):
        request = urllib.request.Request(
            server.url + "/cluster",
            data=b"{nope",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == 400
        assert _counter(client, "bad_request_bodies") >= 1

    def test_injected_request_fault_does_not_kill_the_server(
        self, server, client
    ):
        plan = FaultPlan([FaultRule(site="http.request")])
        with armed(plan):
            with pytest.raises(ServiceClientError):
                client.health()
        # The connection died; the server must still answer new ones.
        assert client.health()["status"] == "ok"
        assert _counter(client, "request_read_failures") >= 1


class TestDegradationBridge:
    def test_backend_degradation_lands_in_service_metrics(self, server, client):
        event = DegradationEvent(
            backend="process",
            reason="unit-test bridge",
            failures=2,
            workers=4,
        )
        _emit_degradation(event)
        metrics = client.metrics()
        assert metrics["counters"].get("backend_degradations", 0) >= 1
        recorded = metrics["events"]["degradation"]
        assert event.to_dict() in recorded
